PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-fast bench bench-full validate validate-fast profile faults pipeline-smoke trace-smoke service-smoke planner-smoke

test:            ## full tier-1 suite + quick conformance gate
	$(PYTHON) -m pytest -x -q
	$(PYTHON) scripts/validate.py --quick --quiet

test-fast:       ## tier-1 without the slow markers
	$(PYTHON) -m pytest -x -q -m "not slow"

validate:        ## plan-conformance gate: 50 seeded instances x 4 protocols
	$(PYTHON) scripts/validate.py

validate-fast:   ## quick gate (the `make test` configuration)
	$(PYTHON) scripts/validate.py --quick

bench:           ## quick perf harness; appends to BENCH_sweep.json, gates on parallel slowdown
	$(PYTHON) scripts/bench.py --quick

bench-full:      ## full-size perf harness (minutes)
	$(PYTHON) scripts/bench.py

profile:         ## phase breakdown of the greedy engine at 6000 switches
	$(PYTHON) scripts/profile.py

faults:          ## fault-severity ablation: chronus/or/tp under an imperfect control plane
	$(PYTHON) scripts/faults.py

pipeline-smoke:  ## kill-and-resume a tiny scenario; gate on byte-identical records
	$(PYTHON) scripts/pipeline_smoke.py

trace-smoke:     ## pool run with a SQLite sink; gate on worker spans reaching it
	$(PYTHON) scripts/trace_smoke.py

service-smoke:   ## burst through the update service; gate on terminal+conformant+lockstep
	$(PYTHON) scripts/service_smoke.py

planner-smoke:   ## planner registry gate: all five schemes register, dispatch and verify
	$(PYTHON) scripts/planner_smoke.py
