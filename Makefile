PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-fast bench bench-full

test:            ## full tier-1 suite
	$(PYTHON) -m pytest -x -q

test-fast:       ## tier-1 without the slow markers
	$(PYTHON) -m pytest -x -q -m "not slow"

bench:           ## quick perf harness; appends to BENCH_sweep.json, gates on parallel slowdown
	$(PYTHON) scripts/bench.py --quick

bench-full:      ## full-size perf harness (minutes)
	$(PYTHON) scripts/bench.py
