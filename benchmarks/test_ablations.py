"""Ablation benchmarks for the design choices DESIGN.md calls out.

* greedy decision mode: the paper's Algorithm 3/4 machinery vs. the exact
  interval-tracker previews;
* Algorithm 4's backward walk vs. the exact forward revisit check;
* OR round minimisation: greedy maximal rounds vs. exact branch and bound;
* clock synchronisation accuracy vs. timed-update consistency (the Time4
  motivation: how much skew can Chronus' schedules tolerate?).
"""

import random

import pytest

from repro.analysis.timeseries import render_table
from repro.core.greedy import EXACT, PAPER, greedy_schedule
from repro.core.instance import motivating_example, random_instance
from repro.core.loops import creates_forwarding_loop, new_route_revisits
from repro.core.trace import trace_schedule
from repro.updates.order_replacement import greedy_loop_free_rounds, minimize_rounds

SEEDS = range(40)


class TestGreedyModeAblation:
    def test_paper_mode_vs_exact_mode(self, benchmark, once):
        def run():
            rows = []
            for seed in SEEDS:
                instance = random_instance(4 + seed % 9, seed=seed)
                exact = greedy_schedule(instance, mode=EXACT)
                paper = greedy_schedule(instance, mode=PAPER)
                rows.append(
                    (
                        exact.feasible,
                        paper.feasible,
                        exact.schedule.makespan,
                        paper.schedule.makespan,
                        trace_schedule(instance, paper.schedule).ok,
                    )
                )
            return rows

        rows = once(benchmark, run)
        exact_feasible = sum(r[0] for r in rows)
        paper_feasible = sum(r[1] for r in rows)
        paper_truthful = sum(r[1] == r[4] for r in rows)
        print()
        print(
            render_table(
                ["metric", "exact", "paper"],
                [
                    ["feasible instances", exact_feasible, paper_feasible],
                    ["avg makespan", _avg(r[2] for r in rows), _avg(r[3] for r in rows)],
                ],
                title="Ablation: greedy decision mode (40 random instances)",
            )
        )
        # Paper-mode claims must be truthful on at least the vast majority.
        assert paper_truthful >= len(rows) - 2
        # Exact mode never schedules fewer instances than the heuristics.
        assert exact_feasible >= paper_feasible


class TestLoopCheckAblation:
    def test_backward_walk_vs_exact_forward(self, benchmark, once):
        def run():
            checked = disagreements = missed = 0
            for seed in SEEDS:
                instance = random_instance(4 + seed % 9, seed=1000 + seed)
                for node in instance.switches_to_update:
                    checked += 1
                    backward = creates_forwarding_loop(instance, {}, node, 0)
                    forward = new_route_revisits(instance, {}, node, 0) is not None
                    if backward != forward:
                        disagreements += 1
                        if forward and not backward:
                            missed += 1
            return checked, disagreements, missed

        checked, disagreements, missed = once(benchmark, run)
        print()
        print(
            f"Ablation: Algorithm 4 backward walk vs exact forward check -- "
            f"{checked} decisions, {disagreements} disagreements, "
            f"{missed} loops only the forward check caught"
        )
        # The backward walk checks only the immediate next hop, so it may
        # miss multi-hop revisits, but it must agree most of the time.
        assert disagreements <= checked * 0.2


class TestOrRoundsAblation:
    def test_greedy_vs_exact_rounds(self, benchmark, once):
        def run():
            greedy_total = exact_total = proven = 0
            for seed in range(20):
                instance = random_instance(8, seed=seed)
                greedy_rounds = len(greedy_loop_free_rounds(instance))
                result = minimize_rounds(instance, time_budget=2.0)
                greedy_total += greedy_rounds
                exact_total += result.round_count
                proven += result.proven
            return greedy_total, exact_total, proven

        greedy_total, exact_total, proven = once(benchmark, run)
        print()
        print(
            f"Ablation: OR rounds -- greedy {greedy_total} vs exact "
            f"{exact_total} total rounds over 20 instances ({proven} proven)"
        )
        assert exact_total <= greedy_total


class TestClockSkewAblation:
    def test_consistency_degrades_with_clock_skew(self, benchmark, once):
        """How much Time4 synchronisation error can the schedules take?

        A Chronus schedule separates conflicting updates by at least one
        time unit, so skew well below half a unit must stay consistent,
        while skew approaching a full unit may reorder updates.
        """
        from repro.controller import (
            ConstantDelayModel,
            ControlChannel,
            Controller,
            perform_timed_update,
            synchronized_clocks,
        )
        from repro.simulator import Simulator, build_dataplane
        from repro.simulator.dataplane import install_config

        def run_with_skew(max_offset: float, seed: int) -> bool:
            instance = motivating_example()
            sim = Simulator()
            plane = build_dataplane(sim, instance.network, delay_scale=1.0)
            install_config(plane, instance)
            rng = random.Random(seed)
            channel = ControlChannel(
                sim, ConstantDelayModel(0.001), ConstantDelayModel(0.01), rng=rng
            )
            clocks = synchronized_clocks(
                instance.network.switches, max_offset=max_offset, rng=rng
            )
            controller = Controller(sim, channel, clocks)
            for switch in plane.switches.values():
                controller.manage(switch)
            plane.inject_flow(instance.source, "h1", "v6", rate=1.0)
            sim.run(until=3.0)
            schedule = greedy_schedule(instance).schedule
            perform_timed_update(
                controller, plane, instance, schedule, time_unit=1.0, start_at=4.0
            )
            sim.run(until=25.0)
            peak = max(plane.links[l].peak_utilization() for l in plane.links)
            return peak <= 1.0 + 1e-9

        def run():
            rows = []
            for max_offset in (1e-6, 1e-3, 0.1, 0.45, 0.9):
                clean = sum(run_with_skew(max_offset, seed) for seed in range(5))
                rows.append([f"{max_offset:g}", f"{clean}/5"])
            return rows

        rows = once(benchmark, run)
        print()
        print(
            render_table(
                ["max clock offset (s)", "consistent runs"],
                rows,
                title="Ablation: Time4 synchronisation accuracy (1 s time unit)",
            )
        )
        # Microsecond synchronisation (Time4's regime) is always safe.
        assert rows[0][1] == "5/5"
        assert rows[1][1] == "5/5"


class TestSlackCapacityAblation:
    def test_swan_slack_condition(self, benchmark, once):
        """SWAN's observation, cited in Section VI: with enough slack
        capacity on every link, a congestion-free sequence always exists.

        Sweeping the capacity factor on the adversarial permutation
        workload: at factor >= 2 every link can hold old and new flow
        simultaneously, so feasibility must reach 100%; at factor 1 (the
        tight regime Chronus targets) a large share of instances has no
        congestion-free schedule at all.
        """

        def run():
            rows = []
            for factor in (1.0, 1.5, 2.0, 3.0):
                feasible = 0
                total = 20
                for seed in range(total):
                    instance = random_instance(
                        10, seed=3_000 + seed, capacity=factor, demand=1.0
                    )
                    result = greedy_schedule(instance)
                    ok = result.feasible and trace_schedule(
                        instance, result.schedule
                    ).ok
                    feasible += ok
                rows.append([f"{factor:g}x", f"{100 * feasible / total:.0f}%"])
            return rows

        rows = once(benchmark, run)
        print()
        print(
            render_table(
                ["capacity factor", "feasible instances"],
                rows,
                title="Ablation: slack capacity (SWAN condition) vs feasibility",
            )
        )
        by_factor = dict((row[0], row[1]) for row in rows)
        assert by_factor["2x"] == "100%"
        assert by_factor["3x"] == "100%"
        assert by_factor["1x"] != "100%"


class TestMultiFlowExtension:
    def test_sequential_composition_stays_consistent(self, benchmark, once):
        """Extension bench: several flows on one fabric, scheduled jointly."""
        from repro.core.instance import instance_from_paths
        from repro.core.multiflow import MultiFlowUpdate, greedy_multiflow
        from repro.network.graph import Network

        def run():
            net = Network()
            # Three flows share a 2-capacity spine; each detours via its own
            # side path with slack delays.
            for src, dst, cap, delay in [
                ("s1", "m", 3.0, 1), ("s2", "m", 3.0, 1), ("s3", "m", 3.0, 1),
                ("m", "t", 3.0, 1),
                ("s1", "d1", 3.0, 2), ("d1", "m", 3.0, 2),
                ("s2", "d2", 3.0, 2), ("d2", "m", 3.0, 2),
                ("s3", "d3", 3.0, 2), ("d3", "m", 3.0, 2),
            ]:
                net.add_link(src, dst, capacity=cap, delay=delay)
            instances = [
                instance_from_paths(
                    net,
                    [f"s{i}", "m", "t"],
                    [f"s{i}", f"d{i}", "m", "t"],
                    demand=1.0,
                    flow_name=f"f{i}",
                )
                for i in (1, 2, 3)
            ]
            update = MultiFlowUpdate(network=net, instances=instances)
            return greedy_multiflow(update)

        result = once(benchmark, run)
        print()
        print(
            f"Multi-flow extension: {len(result.results)} flows, joint "
            f"makespan {result.makespan}, consistent: {result.feasible}"
        )
        assert result.feasible


class TestApproximationAblation:
    def test_tree_walk_makespan_vs_greedy_and_opt(self, benchmark, once):
        """The paper's future-work direction: approximation quality.

        The tree algorithm's witness schedule updates one branch crossing at
        a time and lets each settle -- a simple, provably safe strategy whose
        makespan we compare against the greedy and the exact optimum.
        """
        from repro.core.optimal import optimal_schedule
        from repro.core.tree import check_update_feasibility

        def run():
            rows = []
            for seed in range(15):
                instance = random_instance(7, seed=2_000 + seed)
                tree = check_update_feasibility(instance)
                if not tree.feasible:
                    continue
                greedy = greedy_schedule(instance)
                opt = optimal_schedule(instance, time_budget=5)
                if opt.schedule is None:
                    continue
                rows.append(
                    (tree.schedule.makespan, greedy.schedule.makespan, opt.makespan)
                )
            return rows

        rows = once(benchmark, run)
        tree_avg = _avg(r[0] for r in rows)
        greedy_avg = _avg(r[1] for r in rows)
        opt_avg = _avg(r[2] for r in rows)
        print()
        print(
            render_table(
                ["scheduler", "avg makespan"],
                [["tree walk", tree_avg], ["greedy", greedy_avg], ["OPT", opt_avg]],
                title=f"Ablation: approximation gap ({len(rows)} feasible instances)",
            )
        )
        for tree_span, greedy_span, opt_span in rows:
            assert opt_span <= greedy_span  # OPT is optimal
            assert tree_span >= opt_span    # and a valid upper bound
        # The settle-everything walk pays at most a small constant factor.
        assert tree_avg <= 4 * max(opt_avg, 1)


class TestStragglerAblation:
    def test_single_straggler_switch(self, benchmark, once):
        """A switch whose clock lags applies its scheduled update late.

        With a lag well under the schedule's one-time-unit separation the
        update stays consistent; large lags reorder updates and break the
        guarantee -- quantifying how production deployments must bound
        switch-side scheduling error.
        """
        from repro.controller import (
            ConstantDelayModel,
            ControlChannel,
            Controller,
            perform_timed_update,
        )
        from repro.controller.clock import SwitchClock
        from repro.core.instance import motivating_example
        from repro.simulator import Simulator, build_dataplane
        from repro.simulator.dataplane import install_config

        def run_with_straggler(lag: float) -> bool:
            instance = motivating_example()
            sim = Simulator()
            plane = build_dataplane(sim, instance.network, delay_scale=1.0)
            install_config(plane, instance)
            channel = ControlChannel(
                sim, ConstantDelayModel(0.001), ConstantDelayModel(0.01),
                rng=random.Random(1),
            )
            # v2 (the first update) lags behind true time by `lag` seconds.
            clocks = {
                name: SwitchClock(-lag if name == "v2" else 0.0)
                for name in instance.network.switches
            }
            controller = Controller(sim, channel, clocks)
            for switch in plane.switches.values():
                controller.manage(switch)
            plane.inject_flow(instance.source, "h1", "v6", rate=1.0)
            sim.run(until=3.0)
            schedule = greedy_schedule(instance).schedule
            perform_timed_update(
                controller, plane, instance, schedule, time_unit=1.0, start_at=4.0
            )
            sim.run(until=25.0)
            peak = max(plane.links[l].peak_utilization() for l in plane.links)
            return peak <= 1.0 + 1e-9

        def run():
            return [(lag, run_with_straggler(lag)) for lag in (0.0, 0.2, 0.5, 1.5, 3.0)]

        rows = once(benchmark, run)
        print()
        print(
            render_table(
                ["straggler lag (s)", "within capacity"],
                [[f"{lag:g}", str(ok)] for lag, ok in rows],
                title="Ablation: one straggler switch (1 s time unit)",
            )
        )
        assert rows[0][1] and rows[1][1]  # small lags are safe


def _avg(values) -> float:
    values = list(values)
    return round(sum(values) / len(values), 2) if values else 0.0
