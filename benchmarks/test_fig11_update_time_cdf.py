"""Benchmark: regenerate Fig. 11 (CDF of the update time at 400 switches).

Paper result: most Chronus updates finish within ~15 time units and OPT
within ~13 -- Chronus is near-optimal.
"""

from repro.experiments.fig11 import run_fig11


def test_fig11_update_time_cdf(benchmark, once):
    result = once(
        benchmark,
        run_fig11,
        switch_count=400,
        instances=15,
        opt_budget=1.0,
    )
    print()
    print(result.render())
    assert len(result.chronus_times) == 15
    # OPT never loses, Chronus stays within a couple of steps of it.
    for chronus, opt in zip(result.chronus_times, result.opt_times):
        assert opt <= chronus
        assert chronus - opt <= 4
    # The paper's scale: updates complete within ~15 time units.
    assert max(result.chronus_times) <= 20
