"""Benchmark: regenerate Fig. 7 (percentage of congestion-free instances).

Paper result: at 60 switches, >65% of instances are congestion-free under
Chronus and OPT against ~15% for OR; Chronus tracks OPT closely.
"""

from repro.experiments.fig7 import run_fig7


def test_fig7_congestion_cases(benchmark, once):
    result = once(
        benchmark,
        run_fig7,
        switch_counts=(10, 20, 30, 40, 50, 60),
        instances_per_size=10,
        opt_budget=0.5,
    )
    print()
    print(result.render())
    for index in range(len(result.switch_counts)):
        chronus = result.percentages["chronus"][index]
        opt = result.percentages["opt"][index]
        order = result.percentages["or"][index]
        assert chronus >= order
        assert abs(opt - chronus) <= 35.0  # Chronus stays close to OPT
    # The gap widens with scale: at the largest size Chronus clearly wins.
    assert result.percentages["chronus"][-1] >= result.percentages["or"][-1] + 20.0
