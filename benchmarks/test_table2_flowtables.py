"""Benchmark: regenerate Table II (flow tables at source and destination)."""

from repro.experiments.table2 import run_table2


def test_table2_flow_tables(benchmark, once):
    result = once(benchmark, run_table2, switch_count=12, seed=12)
    print()
    print(result.render())
    # Sanity: the transition tables carry the extra versioned rules.
    assert len(result.source_rows_two_phase) > len(result.source_rows)
    assert len(result.destination_rows_two_phase) > len(result.destination_rows)
