"""Standalone perf harness: time the hot paths, append to BENCH_sweep.json.

This is the perf *trajectory* of the repo: every run appends one JSON
record (machine facts + per-benchmark timings) to ``BENCH_sweep.json`` at
the repo root, so regressions and wins stay visible across commits.  Run
it via ``scripts/bench.py`` (or ``make bench``); ``--quick`` shrinks the
sizes for CI-style smoke runs.

What it measures:

* **greedy** -- the Chronus scheduler from 400 up to 100K switches (best
  of ``repeats`` runs at the small sizes, single runs at 20K+; the box
  this repo grew on has noisy wall clocks).  The 20K/50K/100K sizes are
  the struct-of-arrays tracker's territory -- the dict tracker needs
  minutes there.
* **memory** -- peak RSS per greedy stage (instance build + schedule),
  measured in a forked child per size so one stage's high-water mark
  cannot mask another's.
* **opt** -- the budgeted branch-and-bound at 30 switches over a fixed
  seed batch: wall time, nodes explored, node throughput.
* **clone** -- ``IntervalTracker.clone()`` micro-cost on a 1K-switch
  end state, against an eager entry-by-entry copy of the same state (the
  pre-copy-on-write behaviour), giving the structural-sharing speedup.
* **sweep** -- a Fig. 7-style sweep, serial vs. ``ParallelRunner``,
  asserting the records are identical and reporting the speedup.
* **service** -- the full update-service loop (admission, merging,
  planning, verification, resilient execution on the shared DES plane):
  wall-clock updates/sec plus the virtual p50/p95 latency, with
  conformance and lockstep-determinism flags.
* **aug** -- strict greedy vs. the epsilon-augmented planner over one
  seeded batch: planning wall clock and completed-plan counts (what the
  transient capacity headroom buys; DESIGN.md §15).

Timings reuse :func:`conftest.timed` / :func:`conftest.run_once` so the
plain ``[bench]`` lines appear in any environment.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

_REPO_ROOT = Path(__file__).resolve().parent.parent
if str(_REPO_ROOT / "src") not in sys.path:  # allow direct execution
    sys.path.insert(0, str(_REPO_ROOT / "src"))
if str(_REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT))

from benchmarks.conftest import run_once, timed
from repro.core.cow import CowIndex
from repro.core.greedy import greedy_schedule
from repro.core.instance import segmented_instance
from repro.core.intervals import IntervalTracker, replay_schedule
from repro.core.optimal import optimal_schedule
from repro.experiments.sweep import mixed_instance, run_sweep
from repro.perf import measure_peak_rss
from repro.runtime import ParallelRunner, available_cpus

BENCH_FILE = _REPO_ROOT / "BENCH_sweep.json"


def _best_of(repeats, fn, *args, label=None, **kwargs):
    """Best wall clock over ``repeats`` runs (noise-resistant) + result."""
    best = None
    result = None
    for _ in range(max(1, repeats)):
        result = run_once(None, fn, *args, label=label, **kwargs)
        elapsed = run_once.last_elapsed
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def bench_greedy(
    sizes: Sequence[int] = (400, 1000, 4000, 6000, 20000, 50000, 100000),
    repeats: int = 3,
) -> Dict[str, float]:
    """Greedy scheduler wall clock per network size (seconds, best-of).

    6000 switches is the paper's largest Fig. 10 size; 20K-100K probe the
    struct-of-arrays tracker's datacenter-scale headroom and run once
    each (at that scale a run is seconds long and best-of-N only adds
    minutes of wall clock for noise the gate's 1.3x margin absorbs).
    """
    out: Dict[str, float] = {}
    for size in sizes:
        instance = segmented_instance(size, seed=size)
        result, best = _best_of(
            repeats if size < 20000 else 1,
            greedy_schedule,
            instance,
            label=f"greedy[{size}] run",
        )
        out[str(size)] = round(best, 4)
        print(f"[bench] greedy n={size}: best {best:.3f}s (feasible={result.feasible})")
    return out


def _greedy_stage(size: int) -> None:
    """One self-contained greedy bench stage (runs in the measurement fork)."""
    greedy_schedule(segmented_instance(size, seed=size))


def bench_greedy_memory(
    sizes: Sequence[int] = (4000, 20000, 50000, 100000),
) -> Dict[str, Dict[str, float]]:
    """Peak RSS of each greedy stage in MiB (the record's memory column).

    Each stage builds its own instance and schedules it inside a forked
    child: ``ru_maxrss`` is a per-process high-water mark, so sharing one
    process would let the largest stage mask all others.  ``delta_mb`` is
    the stage's growth over the inherited process image and is the
    comparable number across machines; reproduce locally with
    ``scripts/profile.py --memory``.
    """
    out: Dict[str, Dict[str, float]] = {}
    for size in sizes:
        stats = measure_peak_rss(_greedy_stage, size)
        out[str(size)] = stats
        print(
            f"[bench] memory greedy n={size}: peak={stats['peak_rss_mb']}MB "
            f"delta={stats['delta_mb']}MB"
        )
    return out


def bench_opt(
    switch_count: int = 30,
    seeds: Sequence[int] = tuple(range(8)),
    budget: float = 2.0,
    engine: str = "array",
) -> Dict[str, object]:
    """Budgeted OPT search over a fixed seed batch at one size.

    ``engine`` selects the search engine; the record carries it so the
    regression gate only compares like with like (the engines count
    explored nodes at different granularities -- see DESIGN.md §13).
    """
    explored = 0
    elapsed = 0.0
    proven = 0
    for seed in seeds:
        instance = mixed_instance(switch_count, seed * 7919 + switch_count)
        result = optimal_schedule(instance, time_budget=budget, engine=engine)
        explored += result.explored
        elapsed += result.elapsed
        proven += 1 if result.proven else 0
    throughput = explored / elapsed if elapsed else 0.0
    print(
        f"[bench] opt n={switch_count} ({engine}): {elapsed:.3f}s, "
        f"{explored} nodes, {throughput:.0f} nodes/s, "
        f"{proven}/{len(seeds)} proven"
    )
    return {
        "switches": switch_count,
        "instances": len(seeds),
        "engine": engine,
        "elapsed": round(elapsed, 4),
        "explored": explored,
        "nodes_per_sec": round(throughput, 1),
        "proven": proven,
    }


def _eager_clone(tracker: IntervalTracker) -> IntervalTracker:
    """Clone with the pre-copy-on-write cost model: every per-key list of
    both indexes is copied entry by entry (what ``clone()`` used to do)."""
    dup = tracker.clone()
    dup._link_index = CowIndex(
        {key: list(tracker._link_index[key]) for key in tracker._link_index},
        set(tracker._link_index.keys()),
    )
    dup._node_index = CowIndex(
        {key: list(tracker._node_index[key]) for key in tracker._node_index},
        set(tracker._node_index.keys()),
    )
    return dup


def bench_clone(
    switch_count: int = 1000, clones: int = 2000, repeats: int = 3
) -> Dict[str, object]:
    """COW vs. eager clone micro-cost on a rich end-of-schedule state."""
    instance = segmented_instance(switch_count, seed=7)
    schedule = greedy_schedule(instance).schedule
    tracker = replay_schedule(instance, schedule)

    def clone_many(clone_fn):
        for _ in range(clones):
            clone_fn(tracker)

    _, cow = _best_of(repeats, clone_many, IntervalTracker.clone, label="clone[cow] run")
    _, eager = _best_of(repeats, clone_many, _eager_clone, label="clone[eager] run")
    speedup = eager / cow if cow else 0.0
    print(
        f"[bench] clone x{clones} (n={switch_count}): cow={cow:.3f}s "
        f"eager={eager:.3f}s speedup={speedup:.1f}x"
    )
    return {
        "switches": switch_count,
        "clones": clones,
        "cow_seconds": round(cow, 4),
        "eager_seconds": round(eager, 4),
        "speedup": round(speedup, 2),
    }


def bench_sweep(
    switch_count: int = 20,
    instances: int = 100,
    workers: int = 4,
    base_seed: int = 42,
    node_budget: int = 5000,
    or_node_budget: int = 1000,
) -> Dict[str, object]:
    """Fig. 7-style sweep, serial vs. parallel, with an identity check.

    OPT and OR are bounded by the deterministic ``node_budget`` /
    ``or_node_budget`` (and given slack wall-clock budgets that never bind
    at this size): record identity must not hinge on how loaded the
    machine happens to be, or the comparison measures solver luck rather
    than harness overhead.  A wall-clock budget that binds also deflates
    the serial/parallel comparison itself -- budget-bound searches simply
    do less work per instance when workers contend for cores.
    """
    kwargs = dict(
        instances_per_size=instances,
        base_seed=base_seed,
        opt_budget=60.0,
        or_budget=10.0,
        opt_node_budget=node_budget,
        or_node_budget=or_node_budget,
    )
    serial, serial_s = timed(run_sweep, [switch_count], **kwargs)
    parallel, parallel_s = timed(
        run_sweep, [switch_count], max_workers=workers, **kwargs
    )
    identical = serial == parallel
    cpus = available_cpus()
    record: Dict[str, object] = {
        "switches": switch_count,
        "instances": instances,
        "workers": workers,
        "serial_seconds": round(serial_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "identical_records": identical,
    }
    if cpus < 2:
        # On a single-CPU host the workers time-slice one core, so the
        # serial/parallel ratio measures scheduler overhead, not speedup.
        # The identity check above is the part that still means something.
        record["speedup"] = None
        record["speedup_note"] = f"single CPU ({cpus}); ratio not meaningful"
        print(
            f"[bench] sweep {instances}x{switch_count}sw: serial={serial_s:.3f}s "
            f"parallel({workers}w)={parallel_s:.3f}s speedup=n/a (1 cpu) "
            f"identical={identical}"
        )
    else:
        speedup = serial_s / parallel_s if parallel_s else 0.0
        record["speedup"] = round(speedup, 2)
        print(
            f"[bench] sweep {instances}x{switch_count}sw: serial={serial_s:.3f}s "
            f"parallel({workers}w)={parallel_s:.3f}s speedup={speedup:.2f}x "
            f"identical={identical}"
        )
    return record


def bench_service(
    cells: int = 2,
    pods: int = 6,
    pod_size: int = 7,
    requests: int = 40,
    mean_interarrival: float = 2.0,
    base_seed: int = 0,
) -> Dict[str, object]:
    """Sustained wall-clock throughput of the update-service loop.

    Runs the full :mod:`repro.service` cells of the ``service`` scenario
    (admission, merging, greedy planning, verification, resilient timed
    execution on the shared DES plane) and reports *wall-clock*
    updates/sec -- the one number the virtual-time pipeline records can
    never contain -- plus the virtual p50/p95 latency, a conformance
    flag, and a lockstep check (the first cell re-run must be
    byte-identical).
    """
    from repro.experiments.sweep import sweep_seed
    from repro.pipeline.store import canonical_json
    from repro.service.service import ServiceConfig, run_cell

    configs = [
        ServiceConfig(
            pods=pods,
            pod_size=pod_size,
            requests=requests,
            mean_interarrival=mean_interarrival,
            seed=sweep_seed(base_seed, pods, index),
        )
        for index in range(max(1, cells))
    ]

    def run_all():
        return [run_cell(config) for config in configs]

    reports, elapsed = timed(run_all)
    rerun = run_cell(configs[0])
    deterministic = canonical_json(reports[0].to_record()) == canonical_json(
        rerun.to_record()
    )

    total = sum(r.summary["requests"] for r in reports)
    served = sum(
        r.summary["completed"] + r.summary["superseded"] + r.summary["noop"]
        for r in reports
    )
    conformant = all(r.summary["conformant_all"] for r in reports)
    latencies = [
        request["latency"]
        for report in reports
        for request in report.requests
        if request["latency"] is not None
        and request["status"] in ("completed", "superseded", "noop")
    ]
    from repro.service.metrics import percentile

    updates_per_sec = served / elapsed if elapsed > 0 else 0.0
    print(
        f"[bench] service {cells}x{requests}req ({pods} pods): "
        f"{elapsed:.3f}s, {updates_per_sec:.1f} upd/s (wall), "
        f"p50={percentile(latencies, 50)} p95={percentile(latencies, 95)} "
        f"(virtual s), conformant={conformant} deterministic={deterministic}"
    )
    return {
        "cells": cells,
        "pods": pods,
        "pod_size": pod_size,
        "requests": total,
        "served": served,
        "elapsed": round(elapsed, 4),
        "updates_per_sec": round(updates_per_sec, 2),
        "latency_p50": percentile(latencies, 50),
        "latency_p95": percentile(latencies, 95),
        "conformant": conformant,
        "deterministic": deterministic,
    }


def bench_aug(
    switch_count: int = 30,
    instances: int = 40,
    epsilon: float = 1.0,
    base_seed: int = 4,
) -> Dict[str, object]:
    """Strict greedy vs. epsilon-augmented greedy over one seeded batch.

    AUG (DESIGN.md §15) plans on a copy of the network with
    ``capacity * (1 + epsilon)`` transient headroom; the row records what
    that buys on the mixed workload: total planning wall clock for both
    planners and how many instances each completes end to end
    (``feasible`` plans -- the strict greedy stalls into best-effort on
    the hard ones, the augmented greedy trades bounded transient overload
    for completion).
    """
    from repro.experiments.sweep import sweep_seed
    from repro.updates.registry import get_planner

    chronus = get_planner("chronus")
    aug = get_planner("aug")
    batch = [
        mixed_instance(switch_count, sweep_seed(base_seed, switch_count, index))
        for index in range(instances)
    ]

    def plan_all(planner, **options):
        return [planner.plan(instance, **options) for instance in batch]

    strict, strict_s = timed(plan_all, chronus)
    relaxed, relaxed_s = timed(plan_all, aug, epsilon=epsilon)
    strict_done = sum(1 for r in strict if r.feasible)
    relaxed_done = sum(1 for r in relaxed if r.feasible)
    print(
        f"[bench] aug eps={epsilon:g} ({instances}x{switch_count}sw): "
        f"strict={strict_s:.3f}s ({strict_done}/{instances} complete) "
        f"augmented={relaxed_s:.3f}s ({relaxed_done}/{instances} complete)"
    )
    return {
        "switches": switch_count,
        "instances": instances,
        "epsilon": epsilon,
        "strict_seconds": round(strict_s, 4),
        "augmented_seconds": round(relaxed_s, 4),
        "strict_complete": strict_done,
        "augmented_complete": relaxed_done,
    }


def collect(quick: bool = False, workers: int = 4) -> Dict[str, object]:
    """Run every benchmark; return one BENCH_sweep.json record."""
    if quick:
        record = {
            "quick": True,
            "cpus": available_cpus(),
            "greedy": bench_greedy(sizes=(200, 400), repeats=2),
            "opt": bench_opt(switch_count=20, seeds=tuple(range(4)), budget=1.0),
            "clone": bench_clone(switch_count=300, clones=500, repeats=2),
            "sweep": bench_sweep(
                switch_count=14,
                instances=24,
                workers=workers,
                node_budget=500,
                or_node_budget=300,
            ),
            "memory": {"greedy": bench_greedy_memory(sizes=(400,))},
            "service": bench_service(
                cells=1, pods=4, pod_size=6, requests=16
            ),
            "aug": bench_aug(switch_count=14, instances=20),
        }
    else:
        record = {
            "quick": False,
            "cpus": available_cpus(),
            "greedy": bench_greedy(),
            "opt": bench_opt(),
            "clone": bench_clone(),
            "sweep": bench_sweep(workers=workers),
            "memory": {"greedy": bench_greedy_memory()},
            "service": bench_service(),
            "aug": bench_aug(),
        }
    return record


def load_history(path: Path = BENCH_FILE) -> List[Dict]:
    """All prior records from the JSON trajectory file (empty on any miss)."""
    if not path.exists():
        return []
    try:
        history = json.loads(path.read_text())
    except (json.JSONDecodeError, OSError):
        return []
    return history if isinstance(history, list) else [history]


def append_record(record: Dict[str, object], path: Path = BENCH_FILE) -> List[Dict]:
    """Append ``record`` to the JSON trajectory file (a list of records)."""
    history = load_history(path)
    history.append(record)
    path.write_text(json.dumps(history, indent=2) + "\n")
    return history
