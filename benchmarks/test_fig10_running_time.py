"""Benchmark: regenerate Fig. 10 (scheduler running time vs. network size).

Paper result (at 600 s cutoff, 1K-6K switches): OR and OPT complete only at
the small end and blow past the cutoff beyond it, while Chronus stays under
the cutoff even at 6K.  Sizes and cutoff scale down proportionally here.
"""

from repro.experiments.fig10 import run_fig10


def test_fig10_running_time(benchmark, once):
    result = once(
        benchmark,
        run_fig10,
        switch_counts=(100, 250, 500, 1000, 2000, 4000),
        cutoff=3.0,
    )
    print()
    print(result.render())
    # Chronus completes everywhere.
    assert all(value is not None for value in result.seconds["chronus"])
    # The exact solvers complete at the small end...
    assert result.seconds["or"][0] is not None
    assert result.seconds["opt"][0] is not None
    # ...and hit the cutoff at the large end.
    assert result.seconds["or"][-1] is None
    assert result.seconds["opt"][-1] is None
