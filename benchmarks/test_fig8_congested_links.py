"""Benchmark: regenerate Fig. 8 (congested time-extended links).

Paper result: Chronus reduces the number of congested links of the
time-extended network by ~70% relative to OR, more at larger sizes.
"""

from repro.experiments.fig8 import run_fig8


def test_fig8_congested_links(benchmark, once):
    result = once(
        benchmark,
        run_fig8,
        switch_counts=(10, 20, 30, 40, 50, 60),
        instances_per_size=10,
    )
    print()
    print(result.render())
    total_chronus = sum(result.congested["chronus"])
    total_or = sum(result.congested["or"])
    assert total_or > 0
    assert total_chronus <= 0.4 * total_or  # at least a 60% reduction overall
