"""Benchmark: regenerate Fig. 6 (bandwidth consumption during an update).

Paper result: OR's asynchronous rounds push the hottest 5 Mbps link to
~6 Mbps (beyond capacity), while Chronus and TP stay in the normal range.
"""

from repro.experiments.fig6 import run_fig6


def test_fig6_bandwidth_consumption(benchmark, once):
    result = once(benchmark, run_fig6, duration=30.0)
    print()
    print(result.render())
    assert result.peaks["chronus"] <= result.capacity + 1e-6
    assert result.peaks["tp"] <= result.capacity + 1e-6
    assert result.peaks["or"] > result.capacity + 1e-6
