"""Micro-benchmarks of the core building blocks.

These use pytest-benchmark's statistical timing (many iterations): the
scheduler's per-step machinery must stay fast for the Fig. 10 scaling story
to hold.
"""

import pytest

from repro.core.dependency import dependency_relations
from repro.core.greedy import greedy_schedule
from repro.core.instance import motivating_example, random_instance, segmented_instance
from repro.core.intervals import IntervalTracker, replay_schedule
from repro.core.loops import creates_forwarding_loop
from repro.core.trace import trace_schedule


@pytest.fixture(scope="module")
def medium_instance():
    return segmented_instance(400, seed=400)


class TestTrackerOps:
    def test_preview_round(self, benchmark):
        instance = motivating_example()
        tracker = IntervalTracker(instance)
        benchmark(lambda: tracker.preview_round(["v2"], 0))

    def test_apply_full_schedule(self, benchmark):
        instance = motivating_example()
        schedule = greedy_schedule(instance).schedule
        benchmark(lambda: replay_schedule(instance, schedule))

    def test_preview_on_long_chain(self, benchmark, medium_instance):
        tracker = IntervalTracker(medium_instance)
        node = medium_instance.switches_to_update[0]
        benchmark(lambda: tracker.preview_round([node], 0))


class TestAlgorithmSteps:
    def test_dependency_relations_fig1(self, benchmark):
        instance = motivating_example()
        pending = list(instance.switches_to_update)
        benchmark(lambda: dependency_relations(instance, pending, {}, 0))

    def test_loop_check_fig1(self, benchmark):
        instance = motivating_example()
        benchmark(lambda: creates_forwarding_loop(instance, {}, "v3", 0))

    def test_dependency_relations_medium(self, benchmark, medium_instance):
        pending = list(medium_instance.switches_to_update)
        benchmark(lambda: dependency_relations(medium_instance, pending, {}, 0))


class TestSchedulers:
    def test_greedy_small(self, benchmark):
        instance = random_instance(20, seed=1)
        benchmark(lambda: greedy_schedule(instance))

    def test_greedy_medium(self, benchmark, once, medium_instance):
        result = once(benchmark, greedy_schedule, medium_instance)
        assert result.feasible

    def test_greedy_large(self, benchmark, once):
        instance = segmented_instance(2000, seed=2000)
        result = once(benchmark, greedy_schedule, instance)
        assert result.feasible


class TestValidators:
    def test_unit_tracer_fig1(self, benchmark):
        instance = motivating_example()
        schedule = greedy_schedule(instance).schedule
        benchmark(lambda: trace_schedule(instance, schedule))

    def test_interval_validator_medium(self, benchmark, once, medium_instance):
        schedule = greedy_schedule(medium_instance).schedule
        tracker = once(benchmark, replay_schedule, medium_instance, schedule)
        assert tracker.ok
