"""Benchmark: regenerate Fig. 9 (forwarding-rule operations, Chronus vs TP).

Paper result: ~596 (TP) vs ~190 (Chronus) rule operations at 300 switches;
Chronus saves over 60% on average, and TP grows far faster with size.
"""

from repro.experiments.fig9 import run_fig9


def test_fig9_rule_overhead(benchmark, once):
    result = once(
        benchmark,
        run_fig9,
        switch_counts=(100, 200, 300, 400, 500, 600),
        instances_per_size=15,
    )
    print()
    print(result.render())
    box = result.chronus_boxes[300]
    assert 150 <= box.mean <= 230      # paper: ~190
    assert 540 <= result.tp_means[300] <= 660  # paper: ~596
    for count in result.switch_counts:
        saving = 1 - result.chronus_boxes[count].mean / result.tp_means[count]
        assert saving > 0.6
