"""Benchmark-suite configuration.

Every benchmark regenerates one table or figure of the paper and prints the
reproduced rows/series (captured output is shown with ``pytest -s``).  The
experiment functions are executed once per benchmark (``pedantic`` with one
round): they are macro-benchmarks whose interesting output is the result,
with the wall-clock time recorded on the side.

:func:`run_once` always emits the wall clock as a plain ``[bench] name:
X.XXXs`` print line, so timings survive environments where the
``pytest-benchmark`` plugin (or its reporting) is unavailable -- pass
``benchmark=None`` there.  ``benchmarks/perf_harness.py`` reuses
:func:`timed` / :func:`run_once` for the standalone perf trajectory.
"""

import time

import pytest


def timed(fn, *args, **kwargs):
    """Call ``fn`` once; return ``(result, elapsed_seconds)``."""
    started = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - started


def run_once(benchmark, fn, *args, label=None, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer.

    Works with or without the ``pytest-benchmark`` fixture (``benchmark``
    may be ``None``); either way the wall clock is printed as a plain
    line so the timing is visible in any environment.
    """
    name = label or getattr(fn, "__name__", repr(fn))
    if benchmark is None:
        result, elapsed = timed(fn, *args, **kwargs)
    else:
        started = time.perf_counter()
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
        elapsed = time.perf_counter() - started
    print(f"[bench] {name}: {elapsed:.3f}s")
    # Callers that need the number (perf_harness) read it back here.
    run_once.last_elapsed = elapsed
    return result


@pytest.fixture
def once():
    return run_once
