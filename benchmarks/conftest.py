"""Benchmark-suite configuration.

Every benchmark regenerates one table or figure of the paper and prints the
reproduced rows/series (captured output is shown with ``pytest -s``).  The
experiment functions are executed once per benchmark (``pedantic`` with one
round): they are macro-benchmarks whose interesting output is the result,
with the wall-clock time recorded on the side.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
