"""Link-failure reaction: consistent reroutes under time pressure.

The paper's fourth motivating scenario (Section I): "fast network update
mechanisms are required to react quickly to link failures and determine a
failover path".  This example simulates a sequence of link failures on a
WAN-like topology: for each failure the planner computes a backup route,
Algorithm 1 decides whether a congestion- and loop-free transition exists,
and Algorithm 2 emits the timed schedule -- all in one call, fast enough
for a reactive control loop.

Run:  python examples/link_failover.py
"""

import random
import time

from repro.network.topology import waxman_topology
from repro.planning import plan_link_failover, shortest_delay_path

SEED = 31


def main() -> None:
    rng = random.Random(SEED)
    network = waxman_topology(40, rng=rng, alpha=0.7, beta=0.7, max_delay=3)
    source, destination = "v1", "v40"
    path = shortest_delay_path(network, source, destination)
    if path is None:
        raise SystemExit("seeded topology is disconnected; change SEED")
    print(f"Primary route {source} -> {destination}: {' -> '.join(path)}\n")

    consistent = 0
    reacted = 0
    for trial in range(6):
        links = list(zip(path, path[1:]))
        failed = rng.choice(links)
        started = time.perf_counter()
        plan = plan_link_failover(network, path, failed, demand=1.0)
        elapsed_ms = (time.perf_counter() - started) * 1000
        print(f"failure #{trial + 1}: link {failed[0]} -> {failed[1]} down")
        if plan is None:
            print("  no backup route exists; flow is partitioned\n")
            continue
        reacted += 1
        consistent += plan.consistent
        verdict = (
            "congestion- and loop-free"
            if plan.consistent
            else "best effort (no consistent transition exists)"
        )
        print(f"  backup: {' -> '.join(plan.backup_path)}")
        print(f"  schedule: {plan.result.schedule}")
        print(f"  transition: {verdict}; planned in {elapsed_ms:.1f} ms\n")
        path = list(plan.backup_path)  # next failure hits the new route

    print(f"{consistent}/{reacted} failovers had a provably consistent transition")


if __name__ == "__main__":
    main()
