"""Quickstart: schedule the paper's Fig. 1 update with Chronus.

Walks the motivating example end to end:

1. build the six-switch instance (old path ``v1..v6``, new routing through
   ``v1 -> v4 -> v3 -> v2 -> v6``);
2. show why naive strategies fail (transient loops / congestion);
3. run Algorithm 1 (feasibility), Algorithm 2 (the greedy timed schedule)
   with its Algorithm 3 dependency sets, and OPT;
4. validate everything against the exact dynamic-flow tracer.

Run:  python examples/quickstart.py
"""

from repro import (
    check_update_feasibility,
    greedy_schedule,
    motivating_example,
    optimal_schedule,
    trace_schedule,
)
from repro.core.schedule import UpdateSchedule


def main() -> None:
    instance = motivating_example()
    print("Old path:", " -> ".join(instance.old_path))
    print("New path:", " -> ".join(instance.new_path))
    print("Switches to update:", ", ".join(instance.switches_to_update))
    print()

    # Naive strategy 1: update everything at once -> transient loops.
    all_at_once = UpdateSchedule(
        {node: 0 for node in instance.switches_to_update}, start_time=0
    )
    result = trace_schedule(instance, all_at_once)
    loop_nodes = sorted({event.node for event in result.loops})
    print(f"All-at-once update: {len(result.loops)} forwarding-loop events "
          f"(switches revisited: {', '.join(loop_nodes)})")

    # Naive strategy 2: the Fig. 2(b) order -> congestion on (v4, v3).
    fig2b = UpdateSchedule(
        {"v1": 0, "v2": 0, "v3": 1, "v4": 1, "v5": 1}, start_time=0
    )
    result = trace_schedule(instance, fig2b)
    for event in result.congestion:
        print(f"Fig. 2(b) order: link {event.link[0]}->{event.link[1]} carries "
              f"{event.load:g} units at t{event.time} (capacity {event.capacity:g})")
    print()

    # Algorithm 1: does a consistent timed sequence exist at all?
    feasibility = check_update_feasibility(instance)
    print(f"Algorithm 1 (tree feasibility check): feasible = {feasibility.feasible}")

    # Algorithm 2: the Chronus greedy schedule, with its dependency sets.
    greedy = greedy_schedule(instance, keep_dependency_log=True)
    print(f"Algorithm 2 (greedy): {greedy.schedule}")
    for t, deps in greedy.dependency_log:
        chains = ", ".join("(" + " -> ".join(chain) + ")" for chain in deps.chains)
        print(f"  t{t}: dependency relation set {{{chains}}}")
    validation = trace_schedule(instance, greedy.schedule)
    print(f"  congestion-free: {validation.congestion_free}, "
          f"loop-free: {validation.loop_free}, makespan: {greedy.makespan} steps")

    # OPT: the exact minimum.
    opt = optimal_schedule(instance)
    print(f"OPT: {opt.schedule} (makespan {opt.makespan}, proven: {opt.proven})")


if __name__ == "__main__":
    main()
