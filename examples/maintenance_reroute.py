"""Network maintenance: drain a router without transient congestion.

One of the paper's motivating scenarios (Section I): "in order to replace a
faulty router, it may be necessary to temporarily reroute traffic".  This
example builds a WAN-like Waxman topology, routes a flow along its shortest
path, takes a transit router down for maintenance by rerouting the flow
around it, and compares how the protocols handle the transition:

* Chronus finds a timed schedule that is provably congestion- and loop-free
  (or reports that none exists);
* OR's round-based execution is loop-free but congests;
* TP avoids both but doubles the rule footprint.

Run:  python examples/maintenance_reroute.py
"""

import random

import networkx as nx

from repro import greedy_schedule, instance_from_paths, validate_schedule
from repro.analysis.metrics import evaluate_schedule
from repro.core.tree import check_update_feasibility
from repro.network.topology import waxman_topology
from repro.updates import OrderReplacementProtocol, TwoPhaseProtocol
from repro.updates.order_replacement import realize_round_times

SEED = 23


def to_networkx(network) -> nx.DiGraph:
    """Bridge to networkx for shortest-path computations."""
    graph = nx.DiGraph()
    for link in network.links:
        graph.add_edge(link.src, link.dst, weight=link.delay)
    return graph


def main() -> None:
    rng = random.Random(SEED)
    network = waxman_topology(30, rng=rng, alpha=0.6, beta=0.7, max_delay=3)
    graph = to_networkx(network)

    # Pick a well-connected source/destination pair and its shortest path.
    source, destination = "v1", "v30"
    old_path = nx.shortest_path(graph, source, destination, weight="weight")
    while len(old_path) < 4:  # need a transit router to maintain
        source = f"v{rng.randint(1, 15)}"
        destination = f"v{rng.randint(16, 30)}"
        if not nx.has_path(graph, source, destination):
            continue
        old_path = nx.shortest_path(graph, source, destination, weight="weight")
    victim = old_path[len(old_path) // 2]
    print(f"Flow {source} -> {destination} via {' -> '.join(old_path)}")
    print(f"Maintenance target: {victim}")

    # Reroute around the victim router.
    pruned = graph.copy()
    pruned.remove_node(victim)
    if not nx.has_path(pruned, source, destination):
        print("No alternative path exists; maintenance must wait.")
        return
    new_path = nx.shortest_path(pruned, source, destination, weight="weight")
    print(f"Detour: {' -> '.join(new_path)}")

    instance = instance_from_paths(network, old_path, new_path, demand=1.0)

    feasibility = check_update_feasibility(instance)
    print(f"\nAlgorithm 1: congestion-free transition feasible = {feasibility.feasible}")

    greedy = greedy_schedule(instance)
    validation = validate_schedule(instance, greedy.schedule)
    print(f"Chronus schedule: {greedy.schedule}")
    print(f"  consistent: {validation.ok} (claimed feasible: {greedy.feasible})")

    or_protocol = OrderReplacementProtocol(rng=random.Random(SEED + 1))
    plan = or_protocol.plan(instance)
    realized = realize_round_times(
        [list(nodes) for _, nodes in plan.rounds], rng=random.Random(SEED + 2)
    )
    metrics = evaluate_schedule(instance, realized)
    print(f"OR: {plan.round_count} rounds; realised execution has "
          f"{metrics.congested_timed_links} congested time-extended links, "
          f"{metrics.loop_events} loops")

    tp = TwoPhaseProtocol().plan(instance)
    chronus_ops = len(instance.switches_to_update)
    print(f"TP: {tp.rules.operations} rule operations and peak table occupancy "
          f"{tp.rules.peak_rules} (Chronus: {chronus_ops} operations, no extra occupancy)")


if __name__ == "__main__":
    main()
