"""Security-policy rollout: jointly rerouting many flows through a firewall.

One of the paper's motivating scenarios (Section I): "traffic from one
subnetwork may have to be rerouted via a firewall before entering another
subnetwork".  This example routes several flows across a fat-tree
data-center fabric, reroutes each through a designated firewall aggregation
switch, and schedules the whole batch with the multi-flow extension of the
Chronus scheduler: every flow's timed schedule is computed against the
exact time-varying load of the previously scheduled flows, and the combined
plan is validated jointly (no link over capacity under the sum of all
flows, no flow ever loops).

Run:  python examples/policy_update_batch.py
"""

import random

import networkx as nx

from repro import MultiFlowUpdate, greedy_multiflow, instance_from_paths
from repro.network.topology import fat_tree_topology
from repro.updates import TwoPhaseProtocol

SEED = 5
FLOW_DEMAND = 0.1  # the full batch fits a unit-capacity link


def to_networkx(network) -> nx.DiGraph:
    graph = nx.DiGraph()
    for link in network.links:
        graph.add_edge(link.src, link.dst, weight=link.delay)
    return graph


def build_flows(network, graph, firewall, rng, wanted=8):
    """Reroute random edge-to-edge flows through the firewall."""
    edges = [n for n in network.switches if n.startswith("edge")]
    instances = []
    attempts = 0
    while len(instances) < wanted and attempts < wanted * 10:
        attempts += 1
        src, dst = rng.sample(edges, 2)
        old_path = nx.shortest_path(graph, src, dst, weight="weight")
        via = nx.shortest_path(graph, src, firewall, weight="weight")
        pruned = graph.copy()
        pruned.remove_nodes_from(set(via) - {firewall, dst})
        if dst not in pruned or not nx.has_path(pruned, firewall, dst):
            continue
        onward = nx.shortest_path(pruned, firewall, dst, weight="weight")
        new_path = via + onward[1:]
        if len(set(new_path)) != len(new_path) or list(old_path) == list(new_path):
            continue
        name = f"{src}->{dst}#{len(instances)}"
        instances.append(
            instance_from_paths(
                network, old_path, new_path, demand=FLOW_DEMAND, flow_name=name
            )
        )
    return instances


def main() -> None:
    rng = random.Random(SEED)
    network = fat_tree_topology(4, capacity=1.0, delay=1)
    graph = to_networkx(network)
    firewall = "agg0_0"
    instances = build_flows(network, graph, firewall, rng)
    print(f"Fat-tree k=4 ({len(network.switches)} switches); firewall at {firewall}")
    print(f"Batch: {len(instances)} flows of {FLOW_DEMAND:g} units each\n")

    update = MultiFlowUpdate(network=network, instances=instances)
    result = greedy_multiflow(update)

    for name, flow_result in result.results.items():
        instance = update.instance(name)
        status = "consistent" if flow_result.feasible else "best-effort"
        print(f"{name:>22}: {' -> '.join(instance.old_path)}")
        print(f"{'':>22}  => via {firewall}, "
              f"{flow_result.schedule.makespan} steps, {status}")

    print(f"\nJoint validation: consistent = {result.report.ok} "
          f"(cross-flow congestion spans: {len(result.report.congestion)})")
    print(f"Batch makespan: {result.makespan} time steps")

    chronus_ops = sum(
        len(update.instance(name).switches_to_update) for name in result.results
    )
    tp_ops = sum(
        TwoPhaseProtocol().plan(update.instance(name)).rules.operations
        for name in result.results
    )
    if tp_ops:
        print(f"Rule operations: Chronus {chronus_ops} vs two-phase {tp_ops} "
              f"({100 * (1 - chronus_ops / tp_ops):.0f}% saved)")


if __name__ == "__main__":
    main()
