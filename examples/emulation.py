"""Emulated testbed run: Chronus vs. OR on the SDN data plane.

The Mininet-experiment analogue (Section V-A): a 10-switch topology with
5 Mbps links carrying a 5 Mbps flow.  Chronus executes its timed schedule
through Time4-style scheduled FlowMods; OR pushes barrier-separated rounds
through an asynchronous control channel with Dionysus-shaped installation
latencies.  A bandwidth monitor polls byte counters every second, exactly
like the Floodlight statistics module.

Run:  python examples/emulation.py
"""

import random

from repro.controller import (
    ConstantDelayModel,
    ControlChannel,
    Controller,
    DionysusDelayModel,
    perform_round_update,
    perform_timed_update,
    synchronized_clocks,
)
from repro.core.greedy import greedy_schedule
from repro.core.instance import instance_from_topology
from repro.network.topology import two_path_topology
from repro.simulator import BandwidthMonitor, Simulator, build_dataplane
from repro.simulator.dataplane import install_config
from repro.updates import OrderReplacementProtocol

CAPACITY_MBPS = 5.0
SEED = 11


def build_world(scheme_seed: int):
    """One data plane + controller + monitored 5 Mbps flow."""
    topo = two_path_topology(
        10, rng=random.Random(SEED), capacity=CAPACITY_MBPS, max_delay=3
    )
    instance = instance_from_topology(topo, demand=CAPACITY_MBPS)
    sim = Simulator()
    plane = build_dataplane(sim, instance.network, delay_scale=1.0)
    install_config(plane, instance)
    rng = random.Random(scheme_seed)
    channel = ControlChannel(
        sim,
        network_delay=ConstantDelayModel(0.002),
        install_delay=DionysusDelayModel(median=0.3, sigma=1.0, cap=2.0),
        rng=rng,
    )
    clocks = synchronized_clocks(instance.network.switches, max_offset=1e-6, rng=rng)
    controller = Controller(sim, channel, clocks)
    for switch in plane.switches.values():
        controller.manage(switch)
    plane.inject_flow(instance.source, "h1", str(instance.destination), rate=CAPACITY_MBPS)
    monitor = BandwidthMonitor(plane, interval=1.0)
    monitor.start()
    return instance, sim, plane, controller, monitor, rng


def main() -> None:
    # --- Chronus: timed execution ------------------------------------
    instance, sim, plane, controller, monitor, _ = build_world(101)
    sim.run(until=5.0)
    schedule = greedy_schedule(instance).schedule
    trace = perform_timed_update(
        controller, plane, instance, schedule, time_unit=1.0, start_at=6.0
    )
    sim.run(until=30.0)
    monitor.stop()
    chronus_peak = max(plane.links[l].peak_utilization() for l in plane.links)
    print(f"Chronus: schedule {schedule}")
    print(f"  peak link utilisation {chronus_peak:.2f} / {CAPACITY_MBPS:.0f} Mbps, "
          f"max clock skew {trace.max_skew * 1e6:.1f} us")

    # --- OR: asynchronous rounds --------------------------------------
    instance, sim, plane, controller, monitor, rng = build_world(202)
    sim.run(until=5.0)
    plan = OrderReplacementProtocol(rng=rng).plan(instance)
    perform_round_update(controller, plane, instance, plan.schedule, time_unit=1.0)
    sim.run(until=30.0)
    monitor.stop()
    or_peak = max(plane.links[l].peak_utilization() for l in plane.links)
    congested = {
        f"{a}->{b}": plane.links[(a, b)].congested_seconds()
        for (a, b) in plane.links
        if plane.links[(a, b)].congested_seconds() > 0
    }
    print(f"OR: {plan.round_count} rounds")
    print(f"  peak link utilisation {or_peak:.2f} / {CAPACITY_MBPS:.0f} Mbps")
    for link, seconds in congested.items():
        print(f"  link {link} over capacity for {seconds:.2f} s")

    print()
    print("Bandwidth on the hottest link (per-second byte-counter deltas):")
    for sample in monitor.peak_series()[:20]:
        bar = "#" * int(round(sample.mbps))
        marker = "  <-- over capacity" if sample.mbps > CAPACITY_MBPS + 1e-9 else ""
        print(f"  t={sample.time:5.1f}s  {sample.mbps:5.2f} Mbps  {bar}{marker}")


if __name__ == "__main__":
    main()
