"""An independent re-derivation of the paper's consistency definitions.

:func:`verify_schedule` answers "is this timed schedule actually loop-,
drop- and congestion-free?" for *any* :class:`UpdateSchedule` -- produced by
Chronus, OR, TP, OPT or written by hand -- without trusting the scheduler
that produced it.  Following Time4's position that consistency must be
checked independently of the planner, the implementation is a deliberately
plain per-emission trajectory replay: it shares no code with
:class:`repro.core.intervals.IntervalTracker` (no flow classes, no interval
splitting, no sweeps), so a bug in the tracker cannot hide itself here.

The price is quadratic cost in the emission window; that is the point -- a
slow, obviously-correct judge for the fast machinery.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.instance import UpdateInstance
from repro.core.schedule import UpdateSchedule
from repro.core.verdict import (
    BlackholeViolation,
    CapacityViolation,
    LoopViolation,
    Verdict,
)
from repro.network.graph import Node

LinkKey = Tuple[Node, Node]
Background = Mapping[LinkKey, Sequence[Tuple[Optional[int], Optional[int], float]]]

_EPS = 1e-9


def verify_schedule(
    instance: UpdateInstance,
    schedule: UpdateSchedule,
    background: Optional[Background] = None,
    extra_horizon: int = 0,
) -> Verdict:
    """Re-derive Definitions 2 and 3 for ``schedule`` from first principles.

    Every emission from ``t0 - phi(p_init)`` (covering all in-flight old
    traffic) through ``t_last + settle`` is walked hop by hop under the
    rule active at each departure: a switch updated at ``T`` applies its new
    rule to departures at times ``>= T``, its old rule before, and drops the
    unit when no rule applies.  Per-link loads accumulate along the way;
    capacity is then checked at every departure step from ``t0`` onward.

    Args:
        instance: The update instance.
        schedule: Update times (possibly partial -- missing switches keep
            their old rule forever, and the verdict reports the schedule as
            incomplete).
        background: Static per-link load from other flows, as
            ``(first departure, last departure, demand)`` triples with
            ``None`` bounds open -- the same shape
            :class:`~repro.core.intervals.IntervalTracker` accepts, so
            multi-flow checks compose identically.
        extra_horizon: Additional steps to replay past the natural window.

    Returns:
        A :class:`Verdict` listing every loop, drop and over-capacity
        ``(link, interval, load)``.
    """
    update_times = dict(schedule.times)
    t0 = schedule.t0
    t_last = schedule.last_time
    old_config = instance.old_config
    new_config = instance.new_config
    source = instance.source
    destination = instance.destination
    demand = instance.demand
    network = instance.network

    delays: Dict[LinkKey, int] = {}
    capacities: Dict[LinkKey, float] = {}
    for link in network.links:
        delays[(link.src, link.dst)] = link.delay
        capacities[(link.src, link.dst)] = link.capacity

    # Walk the old configuration once to find the initial path delay --
    # derived here rather than taken from the instance's cached property so
    # the verifier stands on its own feet.
    old_path_delay = 0
    node = source
    for _ in range(len(network) + 1):
        if node == destination:
            break
        nxt = old_config[node]  # validated at instance construction
        old_path_delay += delays[(node, nxt)]
        node = nxt

    max_delay = max(delays.values(), default=1)
    settle = (len(network) + 1) * max_delay
    emit_start = t0 - old_path_delay
    emit_end = t_last + settle + extra_horizon
    max_hops = len(network) + 1

    loads: Dict[LinkKey, Dict[int, float]] = {}
    loops: List[LoopViolation] = []
    blackholes: List[BlackholeViolation] = []

    for emission in range(emit_start, emit_end + 1):
        current = source
        time = emission
        visited = {source}
        for _ in range(max_hops):
            if current == destination:
                break
            when = update_times.get(current)
            if when is not None and time >= when:
                nxt = new_config.get(current)
            else:
                nxt = old_config.get(current)
            if nxt is None:
                blackholes.append(BlackholeViolation(emission=emission, node=current))
                break
            series = loads.setdefault((current, nxt), {})
            series[time] = series.get(time, 0.0) + demand
            time += delays[(current, nxt)]
            if nxt in visited:
                loops.append(LoopViolation(emission=emission, node=nxt))
                break
            visited.add(nxt)
            current = nxt

    congestion = _capacity_violations(
        loads, capacities, background or {}, t0, emit_end
    )
    complete = all(node in update_times for node in instance.switches_to_update)
    return Verdict(
        schedule_complete=complete,
        loops=loops,
        blackholes=blackholes,
        congestion=congestion,
        loads=loads,
        check_start=t0,
        check_end=emit_end,
    )


def verify_two_phase(
    instance: UpdateInstance,
    flip_time: int,
    t0: Optional[int] = None,
    background: Optional[Background] = None,
    extra_horizon: int = 0,
) -> Verdict:
    """The same judgement under two-phase versioned-update semantics.

    Per-packet consistency: an emission stamped before ``flip_time`` travels
    the complete old path, one stamped at or after it the complete new path.
    Loops and drops are impossible by construction (both paths are valid
    end-to-end routes); what remains checkable is Definition 3 -- the new
    stream overtaking in-flight old traffic on a shared link.
    """
    if t0 is None:
        t0 = flip_time - 1
    network = instance.network
    demand = instance.demand

    delays: Dict[LinkKey, int] = {}
    capacities: Dict[LinkKey, float] = {}
    for link in network.links:
        delays[(link.src, link.dst)] = link.delay
        capacities[(link.src, link.dst)] = link.capacity

    old_links = list(zip(instance.old_path, instance.old_path[1:]))
    new_links = list(zip(instance.new_path, instance.new_path[1:]))
    old_path_delay = sum(delays[link] for link in old_links)
    max_delay = max(delays.values(), default=1)
    settle = (len(network) + 1) * max_delay
    emit_start = min(t0, flip_time) - old_path_delay
    emit_end = flip_time + settle + extra_horizon

    loads: Dict[LinkKey, Dict[int, float]] = {}
    for emission in range(emit_start, emit_end + 1):
        links = old_links if emission < flip_time else new_links
        time = emission
        for link in links:
            series = loads.setdefault(link, {})
            series[time] = series.get(time, 0.0) + demand
            time += delays[link]

    congestion = _capacity_violations(
        loads, capacities, background or {}, t0, emit_end
    )
    return Verdict(
        schedule_complete=True,
        loops=[],
        blackholes=[],
        congestion=congestion,
        loads=loads,
        check_start=t0,
        check_end=emit_end,
    )


def verify_plan(instance: UpdateInstance, plan) -> Verdict:
    """Verify an :class:`repro.updates.base.UpdatePlan` under its own semantics.

    The plan's registered planner supplies the verify adapter: two-phase
    planners route through :func:`verify_two_phase` (their nominal
    schedule describes versioned rule installs, not in-place
    replacements); every other scheme's schedule means exactly what
    :func:`verify_schedule` checks.  Plans from unregistered protocols
    fall back to :func:`verify_schedule`.
    """
    from repro.updates.registry import find_planner

    planner = find_planner(plan.protocol)
    if planner is not None:
        return planner.verify(instance, plan.schedule)
    return verify_schedule(instance, plan.schedule)


def _capacity_violations(
    loads: Dict[LinkKey, Dict[int, float]],
    capacities: Dict[LinkKey, float],
    background: Background,
    check_start: int,
    check_end: int,
) -> List[CapacityViolation]:
    """Merge per-step over-capacity times into maximal violation intervals."""
    violations: List[CapacityViolation] = []
    links = set(loads) | set(background)
    for link in sorted(links):
        capacity = capacities[link]
        series = loads.get(link, {})
        extras = background.get(link, ())
        start: Optional[int] = None
        peak = 0.0
        previous = check_start - 1
        for time in range(check_start, check_end + 1):
            total = series.get(time, 0.0)
            for lo, hi, load in extras:
                if (lo is None or lo <= time) and (hi is None or time <= hi):
                    total += load
            if total > capacity + _EPS:
                if start is None:
                    start = time
                    peak = total
                else:
                    peak = max(peak, total)
                previous = time
            elif start is not None:
                violations.append(
                    CapacityViolation(
                        link=link, start=start, end=previous,
                        peak_load=peak, capacity=capacity,
                    )
                )
                start = None
        if start is not None:
            violations.append(
                CapacityViolation(
                    link=link, start=start, end=previous,
                    peak_load=peak, capacity=capacity,
                )
            )
    violations.sort(key=lambda violation: (violation.start, violation.link))
    return violations
