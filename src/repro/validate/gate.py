"""The plan-conformance gate: seeded sweeps that fail on any disagreement.

The gate is the repo's defence against *silent mis-measurement*: every
consistency number in the figures flows through two independent analytic
engines (the interval tracker and the :mod:`repro.validate.verifier`
trajectory replay) and one fluid simulation.  For each seeded instance and
each protocol the gate checks

* **planner <-> verifier** -- a plan claiming feasibility must get a clean
  verdict, and the verdict must agree with the interval tracker on
  congestion-freedom, the congested time-extended link count, and the
  presence of loops and black holes (for two-phase plans, with the exact
  overtaking-span formula instead of the tracker);
* **verifier <-> simulator** -- :func:`repro.validate.differential_replay`
  executes the plan on the fluid data plane through the controller stack
  and cross-checks the measured link timelines and drop volumes against
  the verdict.

Any disagreement is a bug in one of the engines (or the executor between
them); the gate renders each one with enough context to rerun it alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.analysis.metrics import evaluate_schedule
from repro.core.instance import UpdateInstance
from repro.validate.differential import differential_replay
from repro.validate.verifier import verify_plan

DEFAULT_PROTOCOLS = ("chronus", "or", "tp", "opt")

#: Explored-node cap for the exact searches (OPT, OR's round minimiser).
#: Deterministic -- unlike a wall-clock budget -- so a gate run produces
#: the same verdicts on every machine.
DEFAULT_NODE_BUDGET = 20_000


@dataclass(frozen=True)
class Disagreement:
    """One engine pair disagreeing on one instance.

    Attributes:
        seed: The instance seed (regenerate with
            :func:`repro.experiments.sweep.mixed_instance`).
        switch_count: The instance's network size.
        protocol: Protocol short name.
        kind: ``"planner-verifier"`` or ``"verifier-simulator"``.
        detail: Human-readable description of the mismatch.
    """

    seed: int
    switch_count: int
    protocol: str
    kind: str
    detail: str

    def render(self) -> str:
        return (
            f"[{self.kind}] protocol={self.protocol} "
            f"switches={self.switch_count} seed={self.seed}\n"
            + "\n".join(f"    {line}" for line in self.detail.splitlines())
        )


@dataclass
class GateReport:
    """Outcome of one gate run."""

    instances: int
    switch_count: int
    protocols: Sequence[str]
    checked: int = 0
    disagreements: List[Disagreement] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.disagreements

    def describe(self) -> str:
        head = (
            f"validation gate: {self.instances} instance(s) x "
            f"{'/'.join(self.protocols)} at {self.switch_count} switches, "
            f"{self.checked} plan(s) checked"
        )
        if self.ok:
            return head + " -- all engines agree"
        lines = [head + f" -- {len(self.disagreements)} DISAGREEMENT(S)"]
        lines.extend(d.render() for d in self.disagreements)
        return "\n".join(lines)


def _build_protocols(protocols: Sequence[str], node_budget: Optional[int]):
    """Instantiate the requested protocol objects (verify-enabled).

    Resolution goes through the planner registry: each planner's
    ``protocol`` factory consumes the options it supports (the node
    budget binds OPT's and OR's exact searches) and ignores the rest,
    like the legacy factory dict did.
    """
    from repro.updates.registry import planners_for

    return [
        (planner, planner.protocol(node_budget=node_budget, verify=True))
        for planner in planners_for(protocols)
    ]


def check_plan(
    instance: UpdateInstance,
    plan,
    *,
    seed: int,
    switch_count: int,
    replay: bool = True,
    install_skew: int = 0,
    time_unit: float = 1.0,
) -> List[Disagreement]:
    """All conformance checks for one plan on one instance."""
    out: List[Disagreement] = []
    verdict = plan.verdict if plan.verdict is not None else verify_plan(instance, plan)

    def planner_bug(detail: str) -> None:
        out.append(
            Disagreement(
                seed=seed,
                switch_count=switch_count,
                protocol=plan.protocol,
                kind="planner-verifier",
                detail=detail,
            )
        )

    # A feasibility claim must be backed by a clean independent verdict.
    if plan.feasible and not verdict.ok:
        planner_bug(
            "plan claims transient consistency but the verifier found "
            "violations:\n" + verdict.describe()
        )

    from repro.updates.registry import find_planner

    planner = find_planner(plan.protocol)
    if planner is not None and planner.two_phase:
        # Two engines for two-phase congestion: the closed-form overtaking
        # spans versus the verifier's per-emission walk.
        from repro.updates.two_phase import two_phase_congestion_spans

        flip_time = plan.schedule.time_of(instance.source)
        spans = two_phase_congestion_spans(instance, flip_time)
        span_links = sum(span.timed_link_count for span in spans)
        if span_links != verdict.congested_timed_links:
            planner_bug(
                f"two-phase span formula counts {span_links} congested "
                f"timed link(s), verifier counts {verdict.congested_timed_links}"
            )
        if verdict.loops or verdict.blackholes:
            planner_bug(
                "two-phase updates are loop- and drop-free by construction, "
                "yet the verifier reports:\n" + verdict.describe()
            )
    else:
        # The interval tracker is the figures' measurement engine; the
        # verifier re-derives the same quantities from scratch.
        metrics = evaluate_schedule(instance, plan.schedule)
        if metrics.congestion_free != verdict.congestion_free:
            planner_bug(
                f"tracker congestion_free={metrics.congestion_free} but "
                f"verifier congestion_free={verdict.congestion_free}"
            )
        elif metrics.congested_timed_links != verdict.congested_timed_links:
            planner_bug(
                f"tracker counts {metrics.congested_timed_links} congested "
                f"timed link(s), verifier counts {verdict.congested_timed_links}"
            )
        if metrics.loop_free != verdict.loop_free:
            planner_bug(
                f"tracker loop_free={metrics.loop_free} but "
                f"verifier loop_free={verdict.loop_free}"
            )
        if (metrics.blackhole_events == 0) != verdict.drop_free:
            planner_bug(
                f"tracker blackhole_events={metrics.blackhole_events} but "
                f"verifier drop_free={verdict.drop_free}"
            )

    if replay:
        report = differential_replay(
            plan,
            instance=instance,
            time_unit=time_unit,
            seed=seed,
            install_skew=install_skew,
        )
        if not report.ok:
            out.append(
                Disagreement(
                    seed=seed,
                    switch_count=switch_count,
                    protocol=plan.protocol,
                    kind="verifier-simulator",
                    detail=report.describe(),
                )
            )
    return out


def run_gate(
    instance_count: int = 50,
    switch_count: int = 8,
    base_seed: int = 0,
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    replay: bool = True,
    node_budget: Optional[int] = DEFAULT_NODE_BUDGET,
    install_skew: int = 1,
    progress: Optional[Callable[[int, int], None]] = None,
) -> GateReport:
    """Sweep seeded instances through every engine pair.

    Instances come from the same workload and seeding contract as the
    figures (:func:`repro.experiments.sweep.mixed_instance` seeded by
    :func:`repro.experiments.sweep.sweep_seed`), so a gate failure points
    at an instance the experiment pipeline would actually produce.

    Args:
        instance_count: Seeded instances to sweep.
        switch_count: Network size of every instance.
        base_seed: Base of the :func:`sweep_seed` contract.
        protocols: Protocol short names to gate.
        replay: Also run the fluid differential replay (the expensive
            half); planner <-> verifier checks always run.
        node_budget: Deterministic search budget for OPT and OR.
        install_skew: Extra integer-step installation latency range for
            round-based replays (exercises realised asynchrony).
        progress: Optional ``callback(done, total)`` after each instance.
    """
    from repro.experiments.sweep import mixed_instance, sweep_seed

    from repro.updates.registry import ROUNDS

    named = _build_protocols(protocols, node_budget)
    report = GateReport(
        instances=instance_count, switch_count=switch_count, protocols=tuple(protocols)
    )
    for index in range(instance_count):
        seed = sweep_seed(base_seed, switch_count, index)
        instance = mixed_instance(switch_count, seed)
        for planner, protocol in named:
            plan = protocol.plan(instance)
            report.checked += 1
            report.disagreements.extend(
                check_plan(
                    instance,
                    plan,
                    seed=seed,
                    switch_count=switch_count,
                    replay=replay,
                    install_skew=install_skew if planner.executor == ROUNDS else 0,
                )
            )
        if progress is not None:
            progress(index + 1, instance_count)
    return report
