"""Independent plan-conformance verification.

Two parallel sources of truth exist for transient consistency: the analytic
:class:`repro.core.intervals.IntervalTracker` every scheduler reasons over,
and the fluid discrete-event simulator that executes plans.  A bug in either
silently corrupts every figure.  This package cross-checks both against a
third, deliberately independent implementation:

* :func:`verify_schedule` -- re-derives Definitions 2 and 3 for any
  :class:`repro.core.schedule.UpdateSchedule` by replaying every emission's
  trajectory, sharing **no code** with the interval tracker;
* :func:`verify_two_phase` -- the same judgement under two-phase versioned
  semantics (packets travel either the all-old or the all-new path);
* :func:`differential_replay` -- executes a plan on the fluid data plane via
  the real controller/executor stack and cross-checks the measured link
  utilisation timelines and drop volumes against the verdict's predictions;
* :mod:`repro.validate.gate` -- the ``make validate`` sweep failing on any
  planner <-> verifier <-> simulator disagreement.
"""

from repro.core.verdict import (
    BlackholeViolation,
    CapacityViolation,
    LoopViolation,
    Verdict,
)
from repro.validate.differential import DiffReport, TimelineMismatch, differential_replay
from repro.validate.gate import Disagreement, GateReport, check_plan, run_gate
from repro.validate.verifier import verify_plan, verify_schedule, verify_two_phase

__all__ = [
    "Verdict",
    "LoopViolation",
    "BlackholeViolation",
    "CapacityViolation",
    "verify_schedule",
    "verify_two_phase",
    "verify_plan",
    "differential_replay",
    "DiffReport",
    "TimelineMismatch",
    "Disagreement",
    "GateReport",
    "check_plan",
    "run_gate",
]
