"""Differential replay: cross-check the fluid simulator against the verifier.

The analytic verifier and the fluid discrete-event data plane implement the
same physics twice -- per-emission trajectories on one side, delayed rate
propagation on the other.  :func:`differential_replay` executes an update
plan through the *real* controller/executor stack
(:func:`~repro.controller.executor.perform_timed_update`,
:func:`~repro.controller.executor.perform_round_update`, or a two-phase
tagged flip), reads the update times that actually took effect back out of
the :class:`~repro.controller.executor.ExecutionTrace`, verifies that
*realised* schedule independently, and then compares the fluid links'
measured utilisation timelines and drop volumes against the verdict's
predicted loads, step by step, within a float tolerance.

All control latencies are pinned to deterministic integer time steps, so
predicted and measured rates must agree *exactly* (up to float error)
wherever the analytic model is exact.  The single deliberate divergence:
the analytic model kills a unit at its first switch revisit (Definition 2),
while the fluid plane keeps the looped traffic circulating until a cycle
switch's rule changes.  Fluid load is therefore allowed to *exceed* the
prediction when (and only when) the verdict reports loops -- and that excess
is required, as physical evidence the predicted loops actually formed.
Measured load *below* the prediction is always a disagreement.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.controller.channel import (
    ConstantDelayModel,
    ControlChannel,
    StepDelayModel,
)
from repro.controller.controller import Controller
from repro.controller.executor import (
    ExecutionTrace,
    perform_round_update,
    perform_timed_update,
)
from repro.controller.messages import FlowModAdd, FlowModModify, next_xid
from repro.core.instance import UpdateInstance
from repro.core.schedule import UpdateSchedule
from repro.core.verdict import Verdict
from repro.network.graph import Node
from repro.simulator.dataplane import build_dataplane, install_config
from repro.simulator.engine import Simulator
from repro.simulator.flowtable import FlowRule, Match
from repro.simulator.switch import HOST_PORT
from repro.validate.verifier import verify_schedule, verify_two_phase

from repro.updates.registry import ROUNDS, TIMED, TWO_PHASE, find_planner

LinkKey = Tuple[Node, Node]

_TP_TAG = 2


#: Integer-grid installation latency (promoted to the channel module so the
#: faults ablation shares it); the old private name is kept as an alias.
_IntegerStepLatency = StepDelayModel


@dataclass(frozen=True)
class TimelineMismatch:
    """Predicted and measured load disagree on ``link`` at step ``step``."""

    link: LinkKey
    step: int
    predicted: float
    measured: float


@dataclass
class DiffReport:
    """Outcome of one verifier <-> simulator differential replay.

    Attributes:
        protocol: The replayed plan's protocol name.
        executor: Execution strategy used (``timed``/``rounds``/``two-phase``).
        realized: Schedule read back from the execution trace (actual
            rule-flip steps, not the nominal plan).
        verdict: Independent verdict of the realised schedule.
        mismatches: Hard disagreements -- measured load below prediction, or
            any deviation on a loop-free verdict.
        excesses: Measured load above prediction; expected (and required)
            fluid evidence of predicted forwarding loops.
        timing_errors: Rule flips that missed the integer time grid or were
            never observed to apply.
        predicted_drops: Whether the verdict predicts dropped traffic.
        measured_drop_volume: Megabits the fluid plane black-holed.
    """

    protocol: str
    executor: str
    realized: UpdateSchedule
    verdict: Verdict
    mismatches: List[TimelineMismatch] = field(default_factory=list)
    excesses: List[TimelineMismatch] = field(default_factory=list)
    timing_errors: List[str] = field(default_factory=list)
    predicted_drops: bool = False
    measured_drop_volume: float = 0.0
    drop_tolerance: float = 1e-6

    @property
    def measured_drops(self) -> bool:
        return self.measured_drop_volume > self.drop_tolerance

    @property
    def drops_agree(self) -> bool:
        return self.predicted_drops == self.measured_drops

    @property
    def loops_confirmed(self) -> Optional[bool]:
        """Fluid evidence for predicted loops (``None`` when none predicted)."""
        if self.verdict.loop_free:
            return None
        return bool(self.excesses)

    @property
    def ok(self) -> bool:
        if self.timing_errors or self.mismatches or not self.drops_agree:
            return False
        if not self.verdict.loop_free and not self.excesses:
            return False  # predicted loops left no trace in the fluid plane
        return True

    def describe(self) -> str:
        """A readable account of every simulator <-> verifier disagreement."""
        if self.ok:
            return (
                f"differential replay [{self.protocol}/{self.executor}]: "
                "simulator agrees with the verifier"
            )
        lines = [
            f"differential replay [{self.protocol}/{self.executor}]: DISAGREEMENT"
        ]
        for error in self.timing_errors:
            lines.append(f"  timing: {error}")
        for miss in self.mismatches[:8]:
            lines.append(
                f"  {miss.link[0]}->{miss.link[1]} step {miss.step}: "
                f"predicted {miss.predicted:g}, measured {miss.measured:g}"
            )
        if len(self.mismatches) > 8:
            lines.append(f"  ... {len(self.mismatches) - 8} more mismatch(es)")
        if not self.drops_agree:
            lines.append(
                f"  drops: verifier predicts {'some' if self.predicted_drops else 'none'}, "
                f"plane dropped {self.measured_drop_volume:g} Mb"
            )
        if self.loops_confirmed is False:
            lines.append(
                "  loops: verdict predicts forwarding loops but the fluid "
                "plane shows no circulating excess"
            )
        return "\n".join(lines)


def differential_replay(
    plan,
    *,
    instance: Optional[UpdateInstance] = None,
    time_unit: float = 1.0,
    seed: int = 0,
    executor: Optional[str] = None,
    install_skew: int = 0,
    tolerance: float = 1e-6,
) -> DiffReport:
    """Execute ``plan`` on the fluid DES and cross-check every measurement.

    Args:
        plan: An :class:`repro.updates.base.UpdatePlan` (or any object with
            ``protocol`` and ``schedule`` attributes).
        instance: The update instance; defaults to ``plan.instance``.
        time_unit: True seconds per schedule step (also the plane's delay
            scale, so analytic steps and fluid seconds stay aligned).
        seed: Seeds the install-latency stream for the rounds executor.
        executor: ``"timed"``, ``"rounds"`` or ``"two-phase"``; default
            chosen from the plan's protocol.
        install_skew: Maximum per-switch installation latency in whole time
            steps (rounds executor only; the timed executor pre-programs
            switch-local execution times and two-phase flips one rule).
        tolerance: Absolute rate tolerance when comparing loads.

    Returns:
        A :class:`DiffReport`; ``report.ok`` means the simulator, executor
        and verifier tell the same story about this plan.
    """
    if instance is None:
        instance = getattr(plan, "instance", None)
    if instance is None:
        raise ValueError("differential_replay needs the plan's update instance")
    if executor is None:
        planner = find_planner(plan.protocol)
        executor = planner.executor if planner is not None else TIMED
    schedule: UpdateSchedule = plan.schedule
    t0 = schedule.t0

    sim = Simulator()
    plane = build_dataplane(sim, instance.network, delay_scale=time_unit)
    install_config(plane, instance)
    channel = ControlChannel(
        sim,
        network_delay=ConstantDelayModel(0.0),
        install_delay=_IntegerStepLatency(time_unit=time_unit, max_steps=install_skew),
        rng=random.Random(seed),
    )
    controller = Controller(sim, channel)
    for switch in plane.switches.values():
        controller.manage(switch)
    plane.inject_flow(
        instance.source, "h1", str(instance.destination), rate=instance.demand
    )

    warmup_steps = instance.old_path_delay + 2
    start_true = warmup_steps * time_unit

    def to_true(step: float) -> float:
        return start_true + (step - t0) * time_unit

    report = DiffReport(
        protocol=plan.protocol,
        executor=executor,
        realized=schedule,
        verdict=Verdict(schedule_complete=True),
        drop_tolerance=tolerance * time_unit * max(1.0, instance.demand),
    )

    trace_holder: List[ExecutionTrace] = []
    flip_xid: Optional[int] = None
    if executor == TIMED:
        trace_holder.append(
            perform_timed_update(
                controller, plane, instance, schedule,
                time_unit=time_unit, start_at=to_true(t0),
            )
        )
    elif executor == ROUNDS:
        sim.schedule_at(
            start_true,
            lambda: trace_holder.append(
                perform_round_update(
                    controller, plane, instance, schedule, time_unit=time_unit
                )
            ),
        )
    elif executor == TWO_PHASE:
        flip_step = schedule.time_of(instance.source)
        flip_xid = _prepare_two_phase(
            controller, plane, instance, to_true(flip_step)
        )
    else:
        raise ValueError(f"unknown executor {executor!r}")

    # Stage 1: run until every rule flip has landed, then read the realised
    # schedule back out of the trace -- the boundary this module audits.
    rounds = len(schedule.rounds())
    flips_done = t0 + schedule.makespan + rounds * (install_skew + 1) + 2
    sim.run(until=to_true(flips_done))

    if executor == TWO_PHASE:
        realized, verdict = _realize_two_phase(
            report, controller, instance, flip_xid, to_true, time_unit, t0, schedule
        )
    else:
        realized = _realized_schedule(
            report, trace_holder, schedule, to_true, time_unit, t0
        )
        verdict = verify_schedule(instance, realized)
    report.realized = realized
    report.verdict = verdict
    if report.timing_errors:
        return report  # flips unaccounted for; load comparison would lie

    # Stage 2: run the plane through the verdict's full check window, then
    # compare the measured utilisation at every unit-window midpoint.
    sim.run(until=to_true(verdict.check_end + 1) + 0.25 * time_unit)
    _compare_timelines(report, plane, verdict, to_true, time_unit, tolerance)
    report.predicted_drops = bool(verdict.blackholes)
    report.measured_drop_volume = plane.total_dropped_volume()
    return report


# ----------------------------------------------------------------------
# executor adapters
# ----------------------------------------------------------------------
def _prepare_two_phase(
    controller: Controller,
    plane,
    instance: UpdateInstance,
    flip_true: float,
) -> int:
    """Install the tagged new configuration and schedule the ingress flip."""
    dst_prefix = str(instance.destination)
    for node, nxt in instance.new_config.items():
        rule = FlowRule(
            name=f"{instance.flow.name}#v2",
            match=Match(dst_prefix=dst_prefix, tag=_TP_TAG),
            out_port=plane.port_of(node, nxt),
            priority=1,
        )
        controller.send_flow_mod(node, FlowModAdd(xid=next_xid(), rule=rule))
    controller.send_flow_mod(
        instance.destination,
        FlowModAdd(
            xid=next_xid(),
            rule=FlowRule(
                name=f"{instance.flow.name}#v2",
                match=Match(dst_prefix=dst_prefix, tag=_TP_TAG),
                out_port=HOST_PORT,
                priority=1,
            ),
        ),
    )
    source = instance.source
    local = controller.managed(source).clock.local_time(flip_true)
    flip = FlowModModify(
        xid=next_xid(),
        rule_name=instance.flow.name,
        out_port=plane.port_of(source, instance.new_next_hop(source)),
        set_tag=_TP_TAG,
        execute_at=local,
    )
    controller.send_flow_mod(source, flip)
    return flip.xid


def _realized_schedule(
    report: DiffReport,
    trace_holder: List[ExecutionTrace],
    schedule: UpdateSchedule,
    to_true,
    time_unit: float,
    t0: int,
) -> UpdateSchedule:
    """Map actual apply times back onto integer schedule steps."""
    if not trace_holder:
        report.timing_errors.append("executor never started")
        return schedule
    trace = trace_holder[0]
    times: Dict[Node, int] = {}
    for node in schedule.times:
        applied = trace.applied.get(node)
        if applied is None:
            report.timing_errors.append(f"switch {node!r} never applied its update")
            continue
        step = _to_step(report, node, applied, to_true, time_unit, t0)
        if step is not None:
            times[node] = step
    if report.timing_errors:
        return schedule
    return UpdateSchedule(times=times, start_time=min([t0, *times.values()]))


def _realize_two_phase(
    report: DiffReport,
    controller: Controller,
    instance: UpdateInstance,
    flip_xid: Optional[int],
    to_true,
    time_unit: float,
    t0: int,
    schedule: UpdateSchedule,
):
    applied = controller.apply_time(instance.source, flip_xid)
    if applied is None:
        report.timing_errors.append("ingress flip never applied")
        return schedule, Verdict(schedule_complete=True)
    flip_step = _to_step(report, instance.source, applied, to_true, time_unit, t0)
    if flip_step is None:
        return schedule, Verdict(schedule_complete=True)
    realized = UpdateSchedule({instance.source: flip_step}, start_time=min(t0, flip_step))
    return realized, verify_two_phase(instance, flip_step, t0=t0)


def _to_step(
    report: DiffReport, node: Node, applied: float, to_true, time_unit: float, t0: int
) -> Optional[int]:
    exact = (applied - to_true(t0)) / time_unit
    step = round(exact)
    if abs(exact - step) > 1e-6:
        report.timing_errors.append(
            f"switch {node!r} applied at {applied:g}s -- off the integer "
            f"time grid (step {exact:g})"
        )
        return None
    return t0 + step


# ----------------------------------------------------------------------
# comparison
# ----------------------------------------------------------------------
def _compare_timelines(
    report: DiffReport,
    plane,
    verdict: Verdict,
    to_true,
    time_unit: float,
    tolerance: float,
) -> None:
    """Sample each fluid link at every unit-window midpoint and compare."""
    allow_excess = not verdict.loop_free
    for link_key, link in sorted(plane.links.items()):
        timeline = link.utilization_timeline()
        predicted_series = verdict.loads.get(link_key, {})
        cursor = 0
        measured = 0.0
        for step in range(verdict.check_start, verdict.check_end + 1):
            midpoint = to_true(step) + 0.5 * time_unit
            while cursor < len(timeline) and timeline[cursor].time <= midpoint:
                measured = timeline[cursor].rate
                cursor += 1
            predicted = predicted_series.get(step, 0.0)
            if abs(measured - predicted) <= tolerance:
                continue
            entry = TimelineMismatch(
                link=link_key, step=step, predicted=predicted, measured=measured
            )
            if measured > predicted and allow_excess:
                report.excesses.append(entry)
            else:
                report.mismatches.append(entry)
