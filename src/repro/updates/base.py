"""Common protocol interface and rule accounting.

Fig. 9 of the paper compares "the number of rules" of Chronus against
two-phase updates: what is counted are the *rule operations* the controller
issues during the transition (installs, modifies, deletes) -- Chronus only
modifies the action of existing rules, while two-phase updates install a
complete second (version-tagged) rule set and later remove the old one.
:class:`RuleAccounting` captures both that operation count and the peak
number of rules resident in flow tables (the "flow table space headroom"
argument of the introduction).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.instance import UpdateInstance
from repro.core.schedule import UpdateSchedule
from repro.core.verdict import Verdict
from repro.network.graph import Node


@dataclass(frozen=True)
class RuleAccounting:
    """Rule footprint of one update plan.

    Attributes:
        installs: New rules written during the transition.
        modifies: Existing rules whose action is rewritten in place.
        deletes: Rules removed after the transition.
        baseline_rules: Rules present before the update begins.
        peak_rules: Maximum rules resident in flow tables at any moment.
    """

    installs: int
    modifies: int
    deletes: int
    baseline_rules: int
    peak_rules: int

    @property
    def operations(self) -> int:
        """Total rule operations -- the quantity plotted in Fig. 9."""
        return self.installs + self.modifies + self.deletes

    @property
    def headroom(self) -> int:
        """Extra table space needed beyond the steady state."""
        return max(0, self.peak_rules - self.baseline_rules)


@dataclass
class UpdatePlan:
    """A protocol's complete answer for one update instance.

    Attributes:
        protocol: Short protocol name (``chronus``/``tp``/``or``/``opt``).
        schedule: Planned switch update times.  For round-based protocols
            this is the *nominal* schedule (one time step per round); the
            realised asynchronous times come from
            :func:`repro.updates.order_replacement.realize_round_times`.
        rounds: Controller interaction rounds (time, switches).
        rules: Rule-operation accounting.
        feasible: Whether the protocol claims transient consistency.
        notes: Free-form diagnostic remarks.
        instance: The instance the plan was computed for (lets downstream
            consumers verify or replay the plan without re-threading it).
        verdict: Independent conformance verdict from
            :mod:`repro.validate` when the protocol was built with
            ``verify=True``; ``None`` otherwise.
    """

    protocol: str
    schedule: UpdateSchedule
    rounds: List[Tuple[int, Tuple[Node, ...]]]
    rules: RuleAccounting
    feasible: bool = True
    notes: str = ""
    instance: Optional[UpdateInstance] = None
    verdict: Optional[Verdict] = None

    @property
    def round_count(self) -> int:
        return len(self.rounds)

    @property
    def makespan(self) -> int:
        return self.schedule.makespan

    @property
    def conformant(self) -> Optional[bool]:
        """Does the independent verdict back the plan's feasibility claim?

        ``None`` without a verdict.  A plan claiming feasibility must have a
        fully clean verdict; a best-effort plan (``feasible=False``) makes
        no consistency claim, so any verdict backs it.
        """
        if self.verdict is None:
            return None
        if self.feasible:
            return self.verdict.ok
        return True


class UpdateProtocol(abc.ABC):
    """Interface shared by all update protocols."""

    name: str = "abstract"

    @abc.abstractmethod
    def plan(self, instance: UpdateInstance, t0: int = 0) -> UpdatePlan:
        """Compute the update plan for ``instance`` starting at ``t0``."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"


def count_baseline_rules(instance: UpdateInstance) -> int:
    """Rules present before the update: one per old-config switch."""
    return len(instance.old_config)


def union_rule_switches(instance: UpdateInstance) -> Sequence[Node]:
    """Switches holding a rule in either configuration."""
    seen: Dict[Node, None] = {}
    for node in instance.old_config:
        seen.setdefault(node)
    for node in instance.new_config:
        seen.setdefault(node)
    return list(seen)
