"""AUG: greedy timed updates with epsilon capacity augmentation.

Henzinger & Pourdamghani observe that many instances the congestion-free
greedy stalls on become trivially schedulable once links may carry a
*transient* ``(1 + epsilon)`` overload: the scheduler plans against a
relaxed network whose every capacity is scaled by ``1 + epsilon``, while
measurement and the independent verifier keep judging the schedule on the
true instance.  ``epsilon`` is therefore an ablation axis: at ``epsilon=0``
the relaxed network *is* the true network and AUG is bit-identical to
Chronus; at ``epsilon>0`` the greedy gains headroom -- fewer dependency
stalls, smaller makespans -- in exchange for bounded transient congestion
that the metrics report honestly.

On the repo's unit-demand/unit-capacity instances the relaxation first
binds at ``epsilon >= 1`` (two unit flows on a unit link need transient
load ``2.0 <= capacity * (1 + epsilon)``).
"""

from __future__ import annotations

import random
from typing import Dict, Mapping, Optional

from repro.core.greedy import EXACT, INCREMENTAL, greedy_schedule
from repro.core.instance import UpdateInstance
from repro.network.graph import Network
from repro.updates.base import (
    RuleAccounting,
    UpdatePlan,
    UpdateProtocol,
    count_baseline_rules,
)
from repro.updates.registry import PlanResult, Planner, register_planner


def augmented_instance(instance: UpdateInstance, epsilon: float) -> UpdateInstance:
    """``instance`` with every link capacity scaled by ``1 + epsilon``.

    ``epsilon <= 0`` returns the instance unchanged (same object), which
    is what pins AUG at ``epsilon=0`` to Chronus bit-for-bit.
    """
    if epsilon <= 0.0:
        return instance
    network = Network()
    for node in instance.network.switches:
        network.add_switch(node)
    for link in instance.network.links:
        network.add_link(
            link.src,
            link.dst,
            capacity=link.capacity * (1.0 + epsilon),
            delay=link.delay,
        )
    return UpdateInstance(
        network=network,
        flow=instance.flow,
        old_config=instance.old_config,
        new_config=instance.new_config,
    )


class AugmentedProtocol(UpdateProtocol):
    """AUG: Chronus greedy with ``(1 + epsilon)`` transient headroom.

    Args:
        epsilon: Relative transient capacity headroom granted during
            planning; the plan's verdict and feasibility claim are always
            judged on the true capacities.
        mode: Greedy decision mode, see :mod:`repro.core.greedy`.
        verify: Attach an independent verdict (on the *true* instance).
        engine: Greedy engine, as for Chronus.
    """

    name = "aug"

    def __init__(
        self,
        epsilon: float = 0.0,
        mode: str = EXACT,
        verify: bool = False,
        engine: str = INCREMENTAL,
    ) -> None:
        if epsilon < 0.0:
            raise ValueError("epsilon is a capacity headroom; it cannot be negative")
        self.epsilon = epsilon
        self.mode = mode
        self.verify = verify
        self.engine = engine

    def plan(self, instance: UpdateInstance, t0: int = 0) -> UpdatePlan:
        relaxed = augmented_instance(instance, self.epsilon)
        result = greedy_schedule(relaxed, t0=t0, mode=self.mode, engine=self.engine)
        schedule = result.schedule
        feasible = result.feasible
        notes = ""
        if not feasible:
            notes = (
                f"no schedule within (1+{self.epsilon:g}) headroom; best-effort "
                f"after stalling at t={result.stalled_at}"
            )
        elif self.epsilon > 0.0:
            # The greedy's claim holds on the relaxed network; the plan's
            # claim must hold on the true one.
            from repro.analysis.metrics import evaluate_schedule

            if not evaluate_schedule(instance, schedule).congestion_free:
                feasible = False
                notes = f"transiently congested within the epsilon={self.epsilon:g} headroom"

        baseline = count_baseline_rules(instance)
        installs = 0
        modifies = 0
        for node in instance.switches_to_update:
            if instance.old_next_hop(node) is None:
                installs += 1
            else:
                modifies += 1
        rules = RuleAccounting(
            installs=installs,
            modifies=modifies,
            deletes=0,
            baseline_rules=baseline,
            peak_rules=baseline + installs,
        )
        verdict = None
        if self.verify:
            from repro.validate.verifier import verify_schedule

            verdict = verify_schedule(instance, schedule)
        return UpdatePlan(
            protocol=self.name,
            schedule=schedule,
            rounds=schedule.rounds(),
            rules=rules,
            feasible=feasible,
            notes=notes,
            instance=instance,
            verdict=verdict,
        )


class AugPlanner(Planner):
    """Registry entry for epsilon-augmented greedy updates."""

    name = "aug"
    title = "AUG: greedy timed updates with (1+epsilon) transient capacity headroom"
    sweep_order = 4
    supports_engine = True

    def _plan(
        self,
        instance: UpdateInstance,
        *,
        rng: Optional[random.Random] = None,
        background=None,
        t0: int = 0,
        epsilon: float = 0.0,
        engine: str = INCREMENTAL,
        **_,
    ) -> PlanResult:
        relaxed = augmented_instance(instance, epsilon)
        result = greedy_schedule(
            relaxed, t0=t0, background=background, engine=engine
        )
        notes = f"epsilon={epsilon:g}"
        if not result.feasible:
            notes += f"; best-effort after stalling at t={result.stalled_at}"
        # Feasibility here claims only "the relaxed greedy completed";
        # the sweep measures congestion on the true instance, so epsilon
        # headroom shows up honestly in the congestion-free rate.
        return PlanResult(
            scheme=self.name,
            schedule=result.schedule,
            feasible=result.feasible,
            notes=notes,
        )

    def sweep_options(self, params: Mapping[str, object]) -> Dict[str, object]:
        return {"epsilon": float(params.get("aug_epsilon", 0.0) or 0.0)}

    def protocol(self, **options) -> AugmentedProtocol:
        return AugmentedProtocol(
            epsilon=float(options.get("epsilon", 0.0) or 0.0),
            verify=bool(options.get("verify", False)),
        )

    def fault_schedule(
        self,
        instance: UpdateInstance,
        *,
        node_budget: Optional[int] = None,
        epsilon: float = 0.0,
    ):
        relaxed = augmented_instance(instance, epsilon)
        return greedy_schedule(relaxed).schedule


register_planner(AugPlanner())
