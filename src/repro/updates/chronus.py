"""The Chronus protocol: timed updates from the greedy MUTP scheduler.

Chronus never adds forwarding rules: each to-be-updated switch receives one
in-place action modification, scheduled at the exact time point computed by
Algorithm 2.  Switches that appear only on the new path receive one install
(they had no rule for the flow before); this is the entire rule footprint,
which is what lets Chronus "save over 60% of the rules" against two-phase
updates (Fig. 9).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.greedy import EXACT, INCREMENTAL, greedy_schedule
from repro.core.instance import UpdateInstance
from repro.updates.base import (
    RuleAccounting,
    UpdatePlan,
    UpdateProtocol,
    count_baseline_rules,
)
from repro.updates.registry import PlanResult, Planner, register_planner


class ChronusProtocol(UpdateProtocol):
    """Chronus: congestion- and loop-free timed updates.

    Args:
        mode: Greedy decision mode (``"exact"`` or ``"paper"``), see
            :mod:`repro.core.greedy`.
        verify: Attach an independent :class:`repro.core.verdict.Verdict`
            (from :func:`repro.validate.verify_schedule`) to every plan.
        engine: Greedy engine (``"incremental"``, ``"incremental-dict"``
            or ``"fresh"``); all engines produce identical schedules, the
            default rides the struct-of-arrays tracker.
    """

    name = "chronus"

    def __init__(
        self, mode: str = EXACT, verify: bool = False, engine: str = INCREMENTAL
    ) -> None:
        self.mode = mode
        self.verify = verify
        self.engine = engine

    def plan(self, instance: UpdateInstance, t0: int = 0) -> UpdatePlan:
        result = greedy_schedule(instance, t0=t0, mode=self.mode, engine=self.engine)
        schedule = result.schedule

        baseline = count_baseline_rules(instance)
        installs = 0
        modifies = 0
        for node in instance.switches_to_update:
            if instance.old_next_hop(node) is None:
                installs += 1  # brand-new rule on a new-path-only switch
            else:
                modifies += 1  # in-place action modification
        rules = RuleAccounting(
            installs=installs,
            modifies=modifies,
            deletes=0,
            baseline_rules=baseline,
            peak_rules=baseline + installs,
        )

        notes = ""
        if not result.feasible:
            notes = (
                "no congestion-free schedule exists; completed best-effort "
                f"after stalling at t={result.stalled_at}"
            )
        verdict = None
        if self.verify:
            from repro.validate.verifier import verify_schedule

            verdict = verify_schedule(instance, schedule)
        return UpdatePlan(
            protocol=self.name,
            schedule=schedule,
            rounds=schedule.rounds(),
            rules=rules,
            feasible=result.feasible,
            notes=notes,
            instance=instance,
            verdict=verdict,
        )


class ChronusPlanner(Planner):
    """Registry entry for Chronus (see :class:`ChronusProtocol`)."""

    name = "chronus"
    title = "Chronus: greedy congestion- and loop-free timed updates (Alg. 2)"
    sweep_order = 0
    supports_engine = True

    def _plan(
        self,
        instance: UpdateInstance,
        *,
        rng: Optional[random.Random] = None,
        background=None,
        t0: int = 0,
        engine: str = INCREMENTAL,
        mode: str = EXACT,
        **_,
    ) -> PlanResult:
        result = greedy_schedule(
            instance, t0=t0, mode=mode, background=background, engine=engine
        )
        notes = ""
        if not result.feasible:
            notes = f"best-effort after stalling at t={result.stalled_at}"
        return PlanResult(
            scheme=self.name,
            schedule=result.schedule,
            feasible=result.feasible,
            notes=notes,
        )

    def protocol(self, **options) -> ChronusProtocol:
        return ChronusProtocol(verify=bool(options.get("verify", False)))


register_planner(ChronusPlanner())
