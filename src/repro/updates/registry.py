"""The planner registry: every update scheme behind one first-class seam.

Historically the four schemes (``chronus``/``or``/``tp``/``opt``) were
dispatched by literal-string if-chains duplicated across the sweep, the
figure scenarios, the faults ablation, the validation gate, serialization
and the update service -- adding a fifth scheme meant editing ~15 files.
This module replaces all of that with a process-global, exact-name
registry of :class:`Planner` entries:

* a planner produces a normalized :class:`PlanResult` via
  :meth:`Planner.plan` (wrapped in a trace span carrying the scheme name);
* capability flags (``two_phase``, ``exact``, ``supports_engine``,
  ``supports_budget``) and the ``executor`` strategy replace every
  name comparison downstream -- the verify adapter picks
  ``verify_schedule`` vs ``verify_two_phase`` from ``two_phase``, the
  gate's install skew and the differential replay pick their execution
  strategy from ``executor``, Fig. 10 decides proven-gated aggregation
  from ``exact``;
* ``sweep_order`` pins the registry loop to the legacy if-chain order
  (chronus -> opt -> or), which keeps the shared per-instance RNG stream
  -- and therefore every pinned record -- byte-identical.

Planners register themselves at import time from their own
``repro.updates`` modules (:func:`register_planner`); lookups are by
**exact** name and unknown names raise :class:`UnknownSchemeError`
listing the registered planners.  Adding a scheme is one new module:
subclass :class:`Planner`, implement ``_plan`` (and ``protocol`` for the
gate), call ``register_planner`` -- every sweep, scenario, gate and
serializer picks it up.
"""

from __future__ import annotations

import abc
import random
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.instance import UpdateInstance
from repro.core.schedule import UpdateSchedule
from repro.trace import recorder
from repro.updates.base import UpdateProtocol

#: Execution strategies (shared with :mod:`repro.validate.differential`).
TIMED = "timed"
ROUNDS = "rounds"
TWO_PHASE = "two-phase"

#: The sweep's default scheme set -- the trio every figure aggregates.
DEFAULT_SCHEMES = ("chronus", "or", "opt")


class UnknownSchemeError(ValueError):
    """An unregistered scheme name, with the registered names attached."""

    def __init__(self, name: str, valid: Sequence[str]):
        self.name = name
        self.valid = list(valid)
        super().__init__(
            f"unknown scheme {name!r}; registered planners: "
            f"{', '.join(self.valid)}"
        )


class DuplicateSchemeError(ValueError):
    """A second, different planner class claimed an already-taken name."""


@dataclass(frozen=True)
class PlanResult:
    """A planner's normalized answer for one instance.

    Attributes:
        scheme: The planner's registry name.
        schedule: The (possibly realised) switch update times.
        feasible: The planner's consistency claim.  ``False`` means the
            outcome counts as a congestion case regardless of measured
            metrics (OPT's best-effort fallback, Chronus stalling);
            planners that make no claim and are judged purely by their
            metrics (OR's realised rounds) report ``True``.
        notes: Free-form diagnostics.
    """

    scheme: str
    schedule: UpdateSchedule
    feasible: bool = True
    notes: str = ""


@dataclass(frozen=True)
class SchemeMetrics:
    """Metrics surface for planners measured outside the interval tracker.

    Mirrors the attributes of
    :class:`repro.analysis.metrics.ScheduleMetrics` that the sweep and
    the conformance check read, so two-phase plans (judged by the exact
    overtaking-span formula, not the tracker) flow through the same
    registry loop.
    """

    makespan: int
    congested_timed_links: int
    blackhole_events: int
    congestion_free: bool
    loop_free: bool


class Planner(abc.ABC):
    """One registered update scheme: planning, measurement, verification.

    Class attributes (the capability surface downstream code dispatches
    on -- never compare scheme names):

    Attributes:
        name: Exact registry name.
        title: One-line human description (docs, ``available_schemes``).
        sweep_order: Position in the shared sweep's registry loop.  The
            legacy if-chain evaluated chronus -> opt -> or in fixed code
            order while sharing one RNG; preserving that order preserves
            the RNG stream and keeps pinned records byte-identical.
        two_phase: Plans describe versioned rule installs plus an ingress
            flip; verified by ``verify_two_phase`` and measured by the
            overtaking-span formula instead of the interval tracker.
        exact: The planner is an anytime exact search -- it reports a
            ``proven`` flag and Fig. 10 aggregates it cutoff-gated.
        supports_engine: Accepts an ``engine=`` option.
        supports_budget: Accepts ``time_budget=`` / ``node_budget=``.
        executor: Execution strategy (``"timed"``/``"rounds"``/
            ``"two-phase"``) for the differential replay, the gate's
            install skew and the fault-injection runner.
    """

    name: str = "abstract"
    title: str = ""
    sweep_order: int = 99
    two_phase: bool = False
    exact: bool = False
    supports_engine: bool = False
    supports_budget: bool = False
    executor: str = TIMED

    # -- planning ------------------------------------------------------

    def plan(self, instance: UpdateInstance, **options) -> PlanResult:
        """Plan ``instance``, wrapped in a trace span tagged with the scheme.

        Keyword options (``rng``, ``background``, ``engine``,
        ``time_budget``, ``node_budget``, ...) are forwarded to the
        scheme's :meth:`_plan`; each planner consumes what it supports.
        """
        handle = recorder.span("plan", {"scheme": self.name})
        try:
            result = self._plan(instance, **options)
            if handle.span_id is not None:
                handle.attributes.update(
                    {
                        "feasible": result.feasible,
                        "makespan": result.schedule.makespan,
                    }
                )
        finally:
            handle.close()
        return result

    @abc.abstractmethod
    def _plan(
        self,
        instance: UpdateInstance,
        *,
        rng: Optional[random.Random] = None,
        background=None,
        t0: int = 0,
        **options,
    ) -> PlanResult:
        """Scheme-specific planning (no tracing concerns)."""

    def sweep_options(self, params: Mapping[str, object]) -> Dict[str, object]:
        """Extract this planner's knobs from a flat sweep-parameter mapping.

        Convention: sweep parameters are prefixed with the scheme name
        (``opt_budget``, ``or_skew``, ``aug_epsilon``); each planner owns
        its prefix, so the sweep itself never names a scheme.
        """
        return {}

    def protocol(self, **options) -> UpdateProtocol:
        """Instantiate the scheme's :class:`UpdateProtocol` (gate factory).

        Recognised options -- ``node_budget``, ``verify``, ``rng``,
        ``epsilon`` -- are consumed where the scheme supports them and
        ignored otherwise, exactly like the gate's legacy factory dict.
        """
        raise NotImplementedError(f"{self.name} has no protocol factory")

    # -- measurement and verification ----------------------------------

    def measure(self, instance: UpdateInstance, result: PlanResult):
        """Consistency metrics of ``result`` on the *true* instance."""
        from repro.analysis.metrics import evaluate_schedule

        return evaluate_schedule(instance, result.schedule)

    def verify(self, instance: UpdateInstance, schedule: UpdateSchedule, *, background=None):
        """Independent verdict under the scheme's own semantics.

        The registry-wide verify adapter: two-phase planners override
        this to route through ``verify_two_phase``; everything else means
        exactly what ``verify_schedule`` checks.
        """
        from repro.validate.verifier import verify_schedule

        return verify_schedule(instance, schedule, background=background)

    def conformance(self, instance: UpdateInstance, result: PlanResult, metrics) -> bool:
        """Does the independent verifier reproduce the measured numbers?

        Compares the quantities the figures aggregate: congestion
        freedom, the congested time-extended link count, and loop/drop
        freedom.  (Loop and black-hole *event counts* are representation
        dependent, so only their emptiness is comparable.)
        """
        verdict = self.verify(instance, result.schedule)
        return (
            verdict.congestion_free == metrics.congestion_free
            and verdict.congested_timed_links == metrics.congested_timed_links
            and verdict.loop_free == metrics.loop_free
            and verdict.drop_free == (metrics.blackhole_events == 0)
        )

    # -- scenario adapters ---------------------------------------------

    def fault_schedule(
        self,
        instance: UpdateInstance,
        *,
        node_budget: Optional[int] = None,
        epsilon: float = 0.0,
    ) -> Optional[UpdateSchedule]:
        """The severity-independent schedule the faults ablation executes.

        ``None`` means the scheme plans nothing up front (two-phase:
        install shadow rules, flip the ingress).  Round-based schemes
        return their *nominal* round schedule.
        """
        return self.plan(instance).schedule

    def timed_run(self, instance: UpdateInstance, cutoff: float) -> Tuple[float, bool]:
        """(elapsed seconds, proven) of one Fig. 10 timing measurement.

        Exact planners receive ``cutoff`` as their anytime budget and
        report the solver's own elapsed/proven pair; heuristics are
        wall-clocked and always "proven".
        """
        started = time.monotonic()
        self._plan(instance)
        return time.monotonic() - started, True

    def makespan_sample(self, instance: UpdateInstance, **options) -> Optional[int]:
        """Fig. 11 contribution: the makespan, or ``None`` to skip.

        ``None`` marks the instance non-contributing for this scheme
        (infeasible greedy result, exact search empty-handed); Fig. 11
        drops the instance from every scheme's sample to keep the CDFs
        paired.
        """
        result = self._plan(instance, **options)
        if not result.feasible:
            return None
        return result.schedule.makespan

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"


# -- the process-global registry ---------------------------------------

_REGISTRY: Dict[str, Planner] = {}
_LOADED = False


def register_planner(planner: Planner) -> Planner:
    """Register a planner under its exact name.

    Re-registering the *same* planner class (module reload) is allowed;
    a different class claiming a taken name raises
    :class:`DuplicateSchemeError` -- name collisions between schemes are
    always bugs.
    """
    existing = _REGISTRY.get(planner.name)
    if existing is not None and type(existing).__qualname__ != type(planner).__qualname__:
        raise DuplicateSchemeError(
            f"scheme {planner.name!r} is already registered by "
            f"{type(existing).__name__}; pick a distinct name"
        )
    _REGISTRY[planner.name] = planner
    return planner


def _ensure_loaded() -> None:
    """Populate the registry by importing the planner modules."""
    global _LOADED
    if not _LOADED:
        _LOADED = True
        import repro.updates  # noqa: F401  (registration side effect)


def available_schemes() -> Tuple[str, ...]:
    """Every registered scheme name, sorted."""
    _ensure_loaded()
    return tuple(sorted(_REGISTRY))


def get_planner(name: str) -> Planner:
    """Exact-name lookup; unknown names list the registered planners."""
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownSchemeError(name, sorted(_REGISTRY)) from None


def find_planner(name: str) -> Optional[Planner]:
    """Like :func:`get_planner` but ``None`` for unknown names."""
    _ensure_loaded()
    return _REGISTRY.get(name)


def planners_for(schemes: Sequence[str]) -> List[Planner]:
    """Resolve a scheme-name sequence, preserving the caller's order.

    Raises:
        UnknownSchemeError: on the first unregistered name -- the
            fail-fast every scenario and the CLI validate with.
    """
    return [get_planner(name) for name in schemes]


def sweep_planners(schemes: Sequence[str]) -> List[Planner]:
    """Resolve scheme names in the sweep's evaluation order.

    Sorted by ``sweep_order`` so the registry loop consumes the shared
    per-instance RNG exactly as the legacy if-chain did, regardless of
    the order the caller listed the schemes in.
    """
    return sorted(planners_for(schemes), key=lambda p: (p.sweep_order, p.name))
