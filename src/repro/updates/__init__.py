"""Network update protocols: Chronus and the paper's baselines.

Every protocol consumes an :class:`repro.core.instance.UpdateInstance` and
produces an :class:`repro.updates.base.UpdatePlan`: update times (or rounds)
plus rule-operation accounting.  The benchmark schemes follow Section V:

* ``chronus`` -- the timed greedy scheduler (Algorithm 2);
* ``tp`` -- two-phase versioned updates (Reitblatt et al.);
* ``or`` -- order replacement updates minimising controller rounds while
  avoiding forwarding loops (Ludwig et al.), solved greedily or exactly by
  branch and bound;
* ``opt`` -- the optimal MUTP solution.
"""

from repro.updates.base import RuleAccounting, UpdatePlan, UpdateProtocol
from repro.updates.chronus import ChronusProtocol
from repro.updates.two_phase import TwoPhaseProtocol, two_phase_congestion_spans
from repro.updates.order_replacement import (
    OrderReplacementProtocol,
    minimize_rounds,
    realize_round_times,
)
from repro.updates.optimal import OptimalProtocol

__all__ = [
    "RuleAccounting",
    "UpdatePlan",
    "UpdateProtocol",
    "ChronusProtocol",
    "TwoPhaseProtocol",
    "two_phase_congestion_spans",
    "OrderReplacementProtocol",
    "minimize_rounds",
    "realize_round_times",
    "OptimalProtocol",
]
