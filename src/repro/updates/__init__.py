"""Network update protocols: Chronus and the paper's baselines.

Every protocol consumes an :class:`repro.core.instance.UpdateInstance` and
produces an :class:`repro.updates.base.UpdatePlan`: update times (or rounds)
plus rule-operation accounting.  The benchmark schemes follow Section V:

* ``chronus`` -- the timed greedy scheduler (Algorithm 2);
* ``tp`` -- two-phase versioned updates (Reitblatt et al.);
* ``or`` -- order replacement updates minimising controller rounds while
  avoiding forwarding loops (Ludwig et al.), solved greedily or exactly by
  branch and bound;
* ``opt`` -- the optimal MUTP solution;
* ``aug`` -- greedy timed updates with ``(1+epsilon)`` transient capacity
  headroom (Henzinger & Pourdamghani).

Each scheme also registers a :class:`repro.updates.registry.Planner` at
import time; downstream code dispatches through the registry
(:func:`repro.updates.registry.get_planner`) rather than comparing scheme
names.
"""

from repro.updates.base import RuleAccounting, UpdatePlan, UpdateProtocol
from repro.updates.registry import (
    DEFAULT_SCHEMES,
    DuplicateSchemeError,
    PlanResult,
    Planner,
    SchemeMetrics,
    UnknownSchemeError,
    available_schemes,
    find_planner,
    get_planner,
    planners_for,
    register_planner,
    sweep_planners,
)
from repro.updates.chronus import ChronusProtocol
from repro.updates.two_phase import TwoPhaseProtocol, two_phase_congestion_spans
from repro.updates.order_replacement import (
    OrderReplacementProtocol,
    minimize_rounds,
    realize_round_times,
)
from repro.updates.optimal import OptimalProtocol
from repro.updates.augmented import AugmentedProtocol, augmented_instance

__all__ = [
    "RuleAccounting",
    "UpdatePlan",
    "UpdateProtocol",
    "DEFAULT_SCHEMES",
    "DuplicateSchemeError",
    "PlanResult",
    "Planner",
    "SchemeMetrics",
    "UnknownSchemeError",
    "available_schemes",
    "find_planner",
    "get_planner",
    "planners_for",
    "register_planner",
    "sweep_planners",
    "ChronusProtocol",
    "TwoPhaseProtocol",
    "two_phase_congestion_spans",
    "OrderReplacementProtocol",
    "minimize_rounds",
    "realize_round_times",
    "OptimalProtocol",
    "AugmentedProtocol",
    "augmented_instance",
]
