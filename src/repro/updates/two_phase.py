"""Two-phase versioned updates (Reitblatt et al., SIGCOMM'12).

Phase one installs a complete second rule set matched on a new version tag
(the paper's Mininet prototype uses VLAN IDs); traffic still carries the old
tag, so nothing changes in the data plane.  Phase two flips the ingress
switch to stamp the new tag: every packet then traverses either the all-old
or the all-new configuration -- per-packet consistency -- so forwarding
loops are impossible by construction.  Afterwards the old rules are removed.

Costs and limits reproduced here:

* **Rule overhead** (Fig. 9): one versioned copy of every rule on the union
  of both paths, one ingress stamping rule, and one delete per old rule;
  flow tables peak at twice their steady size ("doubles the number of
  forwarding rules during the update").
* **Transient congestion**: per-packet consistency does not prevent the new
  flow from overtaking in-flight old traffic on a shared link; the exact
  collision condition is that the new path reaches the shared link with a
  smaller delay offset than the old path
  (:func:`two_phase_congestion_spans`).
"""

from __future__ import annotations

from typing import List

from repro.core.instance import UpdateInstance
from repro.core.intervals import CongestionSpan
from repro.core.schedule import UpdateSchedule
from repro.network.paths import arrival_offsets
from repro.updates.base import (
    RuleAccounting,
    UpdatePlan,
    UpdateProtocol,
    count_baseline_rules,
    union_rule_switches,
)
from repro.updates.registry import (
    TWO_PHASE,
    PlanResult,
    Planner,
    SchemeMetrics,
    register_planner,
)

_EPS = 1e-9


class TwoPhaseProtocol(UpdateProtocol):
    """TP: two-phase commit with version tags."""

    name = "tp"

    def __init__(self, flip_delay: int = 1, verify: bool = False) -> None:
        if flip_delay < 1:
            raise ValueError("the ingress flip happens after phase one")
        self.flip_delay = flip_delay
        self.verify = verify

    def plan(self, instance: UpdateInstance, t0: int = 0) -> UpdatePlan:
        baseline = count_baseline_rules(instance)
        union = union_rule_switches(instance)
        # Phase 1: versioned copies for every switch holding any rule (old
        # rules also need version-matching duplicates), except the pure
        # ingress stamping rule which phase 2 writes.
        installs = len(union)
        stamping = 1
        deletes = baseline  # old-version rules removed after the flip

        flip_time = t0 + self.flip_delay
        # Nominal schedule: phase-1 rules at t0 (traffic-invisible), the
        # ingress flip at flip_time.  For data-plane semantics only the flip
        # matters; `two_phase_congestion_spans` evaluates it exactly.
        times = {node: t0 for node in instance.switches_to_update}
        times[instance.source] = flip_time
        schedule = UpdateSchedule(times=times, start_time=t0)

        spans = two_phase_congestion_spans(instance, flip_time)
        rules = RuleAccounting(
            installs=installs + stamping,
            modifies=0,
            deletes=deletes,
            baseline_rules=baseline,
            peak_rules=baseline + installs + stamping,
        )
        rounds = [
            (t0, tuple(node for node in instance.switches_to_update if node != instance.source)),
            (flip_time, (instance.source,)),
        ]
        notes = "" if not spans else f"{len(spans)} overtaking congestion span(s)"
        verdict = None
        if self.verify:
            from repro.validate.verifier import verify_two_phase

            verdict = verify_two_phase(instance, flip_time, t0=t0)
        return UpdatePlan(
            protocol=self.name,
            schedule=schedule,
            rounds=rounds,
            rules=rules,
            feasible=not spans,
            notes=notes,
            instance=instance,
            verdict=verdict,
        )


def two_phase_congestion_spans(
    instance: UpdateInstance, flip_time: int
) -> List[CongestionSpan]:
    """Exact transient congestion of a two-phase update.

    Packets stamped before ``flip_time`` travel the full old path; packets
    stamped at or after it travel the full new path.  On every link shared
    by both paths (same direction) the old stream departs until
    ``flip_time - 1 + off_old`` and the new stream from ``flip_time +
    off_new``; they overlap iff ``off_new < off_old``, in which case the
    link carries twice the demand for ``off_old - off_new`` time steps.
    """
    network = instance.network
    demand = instance.demand
    old_path = instance.old_path
    new_path = instance.new_path
    old_offsets = dict(zip(zip(old_path, old_path[1:]), arrival_offsets(network, old_path)))
    new_offsets = dict(zip(zip(new_path, new_path[1:]), arrival_offsets(network, new_path)))

    spans: List[CongestionSpan] = []
    for link, off_old in old_offsets.items():
        off_new = new_offsets.get(link)
        if off_new is None or off_new >= off_old:
            continue
        capacity = network.capacity(*link)
        if 2 * demand <= capacity + _EPS:
            continue
        start = flip_time + off_new
        end = flip_time - 1 + off_old
        spans.append(
            CongestionSpan(
                link=link, start=start, end=end, load=2 * demand, capacity=capacity
            )
        )
    spans.sort(key=lambda span: (span.start, span.link))
    return spans


class TwoPhasePlanner(Planner):
    """Registry entry for two-phase versioned updates.

    Two-phase plans carry versioned-install semantics, so the capability
    flags route them away from the tracker: measurement uses the exact
    overtaking-span formula and verification uses ``verify_two_phase``
    on the ingress flip time.
    """

    name = "tp"
    title = "TP: two-phase versioned updates with an ingress flip"
    sweep_order = 3
    two_phase = True
    executor = TWO_PHASE

    def _plan(
        self,
        instance: UpdateInstance,
        *,
        rng=None,
        background=None,
        t0: int = 0,
        flip_delay: int = 1,
        **_,
    ) -> PlanResult:
        plan = TwoPhaseProtocol(flip_delay=flip_delay).plan(instance, t0=t0)
        return PlanResult(
            scheme=self.name,
            schedule=plan.schedule,
            feasible=plan.feasible,
            notes=plan.notes,
        )

    def measure(self, instance: UpdateInstance, result: PlanResult) -> SchemeMetrics:
        flip_time = result.schedule.time_of(instance.source)
        spans = two_phase_congestion_spans(instance, flip_time)
        return SchemeMetrics(
            makespan=result.schedule.makespan,
            congested_timed_links=sum(span.timed_link_count for span in spans),
            blackhole_events=0,
            congestion_free=not spans,
            loop_free=True,  # per-packet consistency: loops impossible
        )

    def verify(self, instance: UpdateInstance, schedule: UpdateSchedule, *, background=None):
        from repro.validate.verifier import verify_two_phase

        return verify_two_phase(
            instance,
            schedule.time_of(instance.source),
            t0=schedule.t0,
            background=background,
        )

    def protocol(self, **options) -> TwoPhaseProtocol:
        return TwoPhaseProtocol(verify=bool(options.get("verify", False)))

    def fault_schedule(self, instance: UpdateInstance, **_) -> None:
        return None  # tp plans nothing: install shadow rules, flip the ingress


register_planner(TwoPhasePlanner())
