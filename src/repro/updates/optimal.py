"""OPT as a protocol: the exact MUTP solution wrapped in the plan interface."""

from __future__ import annotations

import random
from typing import Dict, Mapping, Optional, Tuple

from repro.core.instance import UpdateInstance
from repro.core.optimal import optimal_schedule
from repro.core.rounds import greedy_loop_free_rounds
from repro.core.schedule import UpdateSchedule, schedule_from_rounds
from repro.updates.base import (
    RuleAccounting,
    UpdatePlan,
    UpdateProtocol,
    count_baseline_rules,
)
from repro.updates.registry import PlanResult, Planner, register_planner


class OptimalProtocol(UpdateProtocol):
    """OPT: branch-and-bound optimum of the MUTP program.

    Args:
        time_budget: Wall-clock budget per instance in seconds; on exhaustion
            the best incumbent (or a best-effort loop-free completion) is
            returned, mirroring the paper's Fig. 10 cutoffs.
        node_budget: Deterministic cap on explored search nodes -- outcomes
            stop depending on machine load (the validation gate relies on
            this for reproducible verdicts).
        verify: Attach an independent :class:`repro.core.verdict.Verdict`
            to every plan.
        engine: Search engine (``"array"`` default, ``"reference"`` for
            the differential oracle).
    """

    name = "opt"

    def __init__(
        self,
        time_budget: Optional[float] = None,
        node_budget: Optional[int] = None,
        verify: bool = False,
        engine: str = "array",
    ) -> None:
        self.time_budget = time_budget
        self.node_budget = node_budget
        self.verify = verify
        self.engine = engine

    def plan(self, instance: UpdateInstance, t0: int = 0) -> UpdatePlan:
        result = optimal_schedule(
            instance,
            t0=t0,
            time_budget=self.time_budget,
            node_budget=self.node_budget,
            engine=self.engine,
        )
        if result.schedule is not None:
            schedule = result.schedule
            feasible = True
            notes = "" if result.proven else "optimality not proven (budget)"
        else:
            # Infeasible (or budget exhausted without incumbent): fall back
            # to loop-free rounds so the update still completes.
            rounds = greedy_loop_free_rounds(instance)
            schedule = schedule_from_rounds(rounds, start_time=t0, feasible=False)
            feasible = False
            notes = (
                "no congestion-free schedule exists"
                if result.proven
                else "search budget exhausted without a feasible schedule"
            )

        baseline = count_baseline_rules(instance)
        installs = sum(
            1 for node in instance.switches_to_update if instance.old_next_hop(node) is None
        )
        modifies = len(instance.switches_to_update) - installs
        rules = RuleAccounting(
            installs=installs,
            modifies=modifies,
            deletes=0,
            baseline_rules=baseline,
            peak_rules=baseline + installs,
        )
        verdict = None
        if self.verify:
            from repro.validate.verifier import verify_schedule

            verdict = verify_schedule(instance, schedule)
        return UpdatePlan(
            protocol=self.name,
            schedule=schedule,
            rounds=schedule.rounds(),
            rules=rules,
            feasible=feasible,
            notes=notes,
            instance=instance,
            verdict=verdict,
        )


class OptPlanner(Planner):
    """Registry entry for the exact MUTP optimum."""

    name = "opt"
    title = "OPT: branch-and-bound optimum of the MUTP program"
    sweep_order = 1
    exact = True
    supports_engine = True
    supports_budget = True

    def _plan(
        self,
        instance: UpdateInstance,
        *,
        rng: Optional[random.Random] = None,
        background=None,
        t0: int = 0,
        time_budget: Optional[float] = None,
        node_budget: Optional[int] = None,
        engine: str = "array",
        **_,
    ) -> PlanResult:
        result = optimal_schedule(
            instance,
            t0=t0,
            time_budget=time_budget,
            node_budget=node_budget,
            engine=engine,
        )
        if result.schedule is not None:
            return PlanResult(
                scheme=self.name,
                schedule=result.schedule,
                feasible=True,
                notes="" if result.proven else "optimality not proven (budget)",
            )
        # Infeasible (or budget ran out): execute best-effort loop-free
        # rounds and account the resulting congestion.
        rounds = greedy_loop_free_rounds(instance)
        if rng is None:
            rng = random.Random(0)
        from repro.updates.order_replacement import realize_round_times

        fallback = realize_round_times(rounds, rng=rng, max_skew=0, t0=t0)
        return PlanResult(
            scheme=self.name,
            schedule=fallback,
            feasible=False,
            notes=(
                "no congestion-free schedule exists"
                if result.proven
                else "search budget exhausted without a feasible schedule"
            ),
        )

    def sweep_options(self, params: Mapping[str, object]) -> Dict[str, object]:
        return {
            "time_budget": params.get("opt_budget", 1.0),
            "node_budget": params.get("opt_node_budget"),
            "engine": params.get("opt_engine", "array"),
        }

    def protocol(self, **options) -> OptimalProtocol:
        return OptimalProtocol(
            time_budget=options.get("time_budget"),
            node_budget=options.get("node_budget"),
            verify=bool(options.get("verify", False)),
        )

    def fault_schedule(
        self,
        instance: UpdateInstance,
        *,
        node_budget: Optional[int] = None,
        epsilon: float = 0.0,
    ) -> Optional[UpdateSchedule]:
        return self.protocol(node_budget=node_budget).plan(instance).schedule

    def timed_run(self, instance: UpdateInstance, cutoff: float) -> Tuple[float, bool]:
        result = optimal_schedule(instance, time_budget=cutoff)
        return result.elapsed, result.proven

    def makespan_sample(self, instance: UpdateInstance, **options) -> Optional[int]:
        result = optimal_schedule(
            instance,
            time_budget=options.get("time_budget"),
            node_budget=options.get("node_budget"),
            engine=str(options.get("engine", "array")),
        )
        if result.schedule is None:
            return None
        return result.schedule.makespan


register_planner(OptPlanner())
