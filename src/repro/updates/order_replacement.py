"""OR: order replacement updates (Ludwig et al., PODC'15).

Order replacement replaces rules in place -- no tags, no extra table space --
and schedules switches into *rounds* separated by controller barriers.  The
objective is to minimise the number of rounds while guaranteeing transient
loop-freedom under every asynchronous interleaving within a round (the
union-graph criterion of :mod:`repro.core.rounds`).  Minimising rounds is
NP-hard; the paper solves it with branch and bound, which
:func:`minimize_rounds` implements (greedy incumbents, subset branching,
time budget).

OR ignores link capacities and transmission delays entirely, which is why
its realised updates congest where Chronus does not (Figs. 6-8).  The
realised per-switch update times -- rounds stretched by the asynchronous
rule-installation latencies of real switches -- come from
:func:`realize_round_times`.
"""

from __future__ import annotations

import itertools
import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.instance import UpdateInstance
from repro.core.rounds import greedy_loop_free_rounds, round_is_loop_free
from repro.core.schedule import UpdateSchedule, schedule_from_rounds
from repro.network.graph import Node
from repro.perf import perf
from repro.trace import recorder
from repro.updates.base import (
    RuleAccounting,
    UpdatePlan,
    UpdateProtocol,
    count_baseline_rules,
)
from repro.updates.registry import ROUNDS, PlanResult, Planner, register_planner

OR_ENGINES = ("array", "reference")


@dataclass
class RoundMinimizationResult:
    """Result of the round-minimisation search.

    Attributes:
        rounds: Best round partition found.
        proven: Whether the search completed without truncation (true
            optimum).
        explored: Search nodes visited.
        elapsed: Wall-clock seconds.
        width_cut: Whether a greedy maximal safe set was truncated to
            ``max_branch_width`` somewhere in the search -- a truncated
            branch may hide a shorter partition, so ``width_cut``
            forfeits the optimality claim (``proven`` is forced
            ``False``).
    """

    rounds: List[List[Node]]
    proven: bool
    explored: int
    elapsed: float
    width_cut: bool = False

    @property
    def round_count(self) -> int:
        return len(self.rounds)


def minimize_rounds(
    instance: UpdateInstance,
    time_budget: Optional[float] = None,
    max_branch_width: int = 16,
    node_budget: Optional[int] = None,
    engine: str = "array",
) -> RoundMinimizationResult:
    """Minimise the number of loop-free update rounds by branch and bound.

    Branches, per round, over the subsets of switches that are safe to
    update together (subsets of a safe set are safe, so enumeration starts
    from the greedy maximal set and removes elements).  The greedy partition
    seeds the incumbent; a wall-clock budget makes the solver anytime --
    exactly the behaviour Fig. 10 measures.

    Args:
        instance: The update instance.
        time_budget: Seconds before returning the incumbent (``None`` =
            solve to optimality).
        max_branch_width: Cap on per-round subset enumeration.  Truncation
            is reported via ``width_cut`` and forfeits ``proven``.
        node_budget: Deterministic cap on explored search nodes.  Unlike
            ``time_budget``, exhausting it is a pure function of the
            instance, so results are reproducible across machines and
            under CPU contention (the parallel-vs-serial bench identity
            gate relies on this).
        engine: ``"array"`` (default) for the shared search core in
            :mod:`repro.core.search` (id-space union-graph oracle, no
            redundant subset rechecks, sound updated-set memo);
            ``"reference"`` for the original search kept as the
            differential oracle.
    """
    if engine not in OR_ENGINES:
        raise ValueError(f"unknown OR engine {engine!r} (expected one of {OR_ENGINES})")
    handle = recorder.span(
        "or.search",
        {"engine": engine, "switches": len(tuple(instance.switches_to_update))},
    )
    try:
        if engine == "array":
            from repro.core.search import run_round_search

            rounds, explored, timed_out, width_cut, elapsed = run_round_search(
                instance, time_budget, max_branch_width, node_budget
            )
            result = RoundMinimizationResult(
                rounds=rounds,
                proven=not timed_out and not width_cut,
                explored=explored,
                elapsed=elapsed,
                width_cut=width_cut,
            )
        else:
            result = _reference_minimize_rounds(
                instance, time_budget, max_branch_width, node_budget
            )
        if handle.span_id is not None:
            handle.attributes.update(
                {
                    "explored": result.explored,
                    "proven": result.proven,
                    "width_cut": result.width_cut,
                    "rounds": result.round_count,
                }
            )
    finally:
        handle.close()
    return result


def _reference_minimize_rounds(
    instance: UpdateInstance,
    time_budget: Optional[float],
    max_branch_width: int,
    node_budget: Optional[int],
) -> RoundMinimizationResult:
    """The original dict-graph branch and bound (differential oracle)."""
    started = time.monotonic()
    deadline = None if time_budget is None else started + time_budget
    pending_all: Tuple[Node, ...] = tuple(instance.switches_to_update)
    greedy = greedy_loop_free_rounds(instance, list(pending_all), deadline=deadline)
    best: List[List[Node]] = greedy
    best_count = len(greedy)
    explored = 0
    timed_out = deadline is not None and time.monotonic() > deadline
    width_cut = False

    def dfs(updated: Set[Node], pending: Tuple[Node, ...], used_rounds: int) -> None:
        nonlocal best, best_count, explored, timed_out, width_cut
        if timed_out:
            return
        if time_budget is not None and time.monotonic() - started > time_budget:
            timed_out = True
            return
        if node_budget is not None and explored >= node_budget:
            timed_out = True
            return
        explored += 1
        if not pending:
            if used_rounds < best_count:
                best_count = used_rounds
                best = _reconstruct(stack)
            return
        if used_rounds + 1 >= best_count:
            return  # even one more round cannot beat the incumbent

        # Safe subsets are downward closed, so enumerate subsets of the
        # greedy maximal safe set, largest first.
        maximal: List[Node] = []
        for index, node in enumerate(pending):
            if (
                time_budget is not None
                and index % 64 == 0
                and time.monotonic() - started > time_budget
            ):
                timed_out = True
                return
            if round_is_loop_free(instance, updated, set(maximal) | {node}):
                maximal.append(node)
        if not maximal:
            return  # dead end (possible only with exotic drain rules)
        if len(maximal) > max_branch_width:
            maximal = maximal[:max_branch_width]
            width_cut = True

        for size in range(len(maximal), 0, -1):
            for subset in itertools.combinations(maximal, size):
                if not round_is_loop_free(instance, updated, set(subset)):
                    continue
                stack.append(list(subset))
                dfs(
                    updated | set(subset),
                    tuple(n for n in pending if n not in subset),
                    used_rounds + 1,
                )
                stack.pop()
                if timed_out:
                    return

    stack: List[List[Node]] = []
    with perf.span("or.search"):
        dfs(set(), pending_all, 0)
    return RoundMinimizationResult(
        rounds=best,
        proven=not timed_out and not width_cut,
        explored=explored,
        elapsed=time.monotonic() - started,
        width_cut=width_cut,
    )


def _reconstruct(stack: List[List[Node]]) -> List[List[Node]]:
    return [list(round_nodes) for round_nodes in stack]


def realize_round_times(
    rounds: Sequence[Sequence[Node]],
    rng: Optional[random.Random] = None,
    max_skew: int = 3,
    t0: int = 0,
    seed: Optional[int] = None,
) -> UpdateSchedule:
    """Realised asynchronous update times of a round-based execution.

    Within a round, each switch's rule becomes active after a random
    installation latency (the paper samples "a random number from the data
    of [9]" -- the Dionysus switch measurements); the controller waits for
    all barrier replies before the next round.

    Args:
        rounds: Round partition.
        rng: Random source; takes precedence over ``seed``.
        max_skew: Maximum extra time steps a switch may lag within a round.
        t0: Start time.
        seed: Seed for a fresh ``random.Random`` when ``rng`` is omitted,
            making realisations reproducible across processes.

    Returns:
        The realised :class:`UpdateSchedule` (generally *not* loop-free
        against in-flight traffic, which is exactly OR's weakness).
    """
    if rng is None:
        rng = random.Random(seed)
    times: Dict[Node, int] = {}
    start = t0
    for round_nodes in rounds:
        latest = start
        for node in round_nodes:
            when = start + rng.randint(0, max_skew)
            times[node] = when
            latest = max(latest, when)
        start = latest + 1  # barrier: next round after every reply
    return UpdateSchedule(times=times, start_time=t0, feasible=False)


class OrderReplacementProtocol(UpdateProtocol):
    """OR: round-minimal loop-free rule replacement.

    Args:
        exact: Use the branch-and-bound minimiser (the paper's choice);
            otherwise the greedy maximal-round partition.
        time_budget: Budget for the exact solver.
        rng: Random source for realised asynchronous times.
        max_skew: Asynchrony within a round, in time steps.
        node_budget: Deterministic explored-node cap for the exact solver
            (reproducible results across machines).
        verify: Attach an independent :class:`repro.core.verdict.Verdict`
            for the *nominal* round schedule to every plan.
        engine: Search engine for the exact solver (``"array"`` default,
            ``"reference"`` for the differential oracle).
    """

    name = "or"

    def __init__(
        self,
        exact: bool = True,
        time_budget: Optional[float] = None,
        rng: Optional[random.Random] = None,
        max_skew: int = 3,
        node_budget: Optional[int] = None,
        verify: bool = False,
        engine: str = "array",
    ) -> None:
        self.exact = exact
        self.time_budget = time_budget
        self.rng = rng if rng is not None else random.Random()
        self.max_skew = max_skew
        self.node_budget = node_budget
        self.verify = verify
        self.engine = engine

    def plan(self, instance: UpdateInstance, t0: int = 0) -> UpdatePlan:
        if self.exact:
            result = minimize_rounds(
                instance,
                time_budget=self.time_budget,
                node_budget=self.node_budget,
                engine=self.engine,
            )
            rounds = result.rounds
            notes = "" if result.proven else "round minimisation hit its budget"
        else:
            rounds = greedy_loop_free_rounds(instance)
            notes = "greedy maximal rounds"

        baseline = count_baseline_rules(instance)
        installs = sum(
            1 for node in instance.switches_to_update if instance.old_next_hop(node) is None
        )
        modifies = len(instance.switches_to_update) - installs
        rules = RuleAccounting(
            installs=installs,
            modifies=modifies,
            deletes=0,
            baseline_rules=baseline,
            peak_rules=baseline + installs,
        )
        nominal = schedule_from_rounds(rounds, start_time=t0, feasible=False)
        verdict = None
        if self.verify:
            from repro.validate.verifier import verify_schedule

            verdict = verify_schedule(instance, nominal)
        return UpdatePlan(
            protocol=self.name,
            schedule=nominal,
            rounds=nominal.rounds(),
            rules=rules,
            feasible=False,  # loop-free by design, but capacity-oblivious
            notes=notes,
            instance=instance,
            verdict=verdict,
        )

    def realize(self, plan: UpdatePlan, t0: int = 0) -> UpdateSchedule:
        """Sample realised asynchronous update times for ``plan``."""
        rounds = [list(nodes) for _, nodes in plan.rounds]
        return realize_round_times(rounds, rng=self.rng, max_skew=self.max_skew, t0=t0)


class OrPlanner(Planner):
    """Registry entry for OR's realised asynchronous rounds."""

    name = "or"
    title = "OR: round-minimal loop-free replacement, realised asynchronously"
    sweep_order = 2
    exact = True
    supports_engine = True
    supports_budget = True
    executor = ROUNDS

    def _plan(
        self,
        instance: UpdateInstance,
        *,
        rng: Optional[random.Random] = None,
        background=None,
        t0: int = 0,
        time_budget: Optional[float] = None,
        node_budget: Optional[int] = None,
        engine: str = "array",
        skew: int = 3,
        **_,
    ) -> PlanResult:
        result = minimize_rounds(
            instance,
            time_budget=time_budget,
            node_budget=node_budget,
            engine=engine,
        )
        if rng is None:
            rng = random.Random(0)
        realized = realize_round_times(result.rounds, rng=rng, max_skew=skew, t0=t0)
        return PlanResult(
            scheme=self.name,
            schedule=realized,
            feasible=True,  # judged purely by the measured metrics
            notes="" if result.proven else "round minimisation hit its budget",
        )

    def sweep_options(self, params):
        return {
            "time_budget": params.get("or_budget", 0.5),
            "node_budget": params.get("or_node_budget"),
            "engine": params.get("or_engine", "array"),
            "skew": params.get("or_skew", 3),
        }

    def protocol(self, **options) -> OrderReplacementProtocol:
        kwargs = {
            "node_budget": options.get("node_budget"),
            "verify": bool(options.get("verify", False)),
        }
        if options.get("rng") is not None:
            kwargs["rng"] = options["rng"]
        return OrderReplacementProtocol(**kwargs)

    def fault_schedule(
        self,
        instance: UpdateInstance,
        *,
        node_budget: Optional[int] = None,
        epsilon: float = 0.0,
    ) -> Optional[UpdateSchedule]:
        return schedule_from_rounds(
            minimize_rounds(instance, node_budget=node_budget).rounds
        )

    def timed_run(self, instance: UpdateInstance, cutoff: float):
        result = minimize_rounds(instance, time_budget=cutoff)
        return result.elapsed, result.proven


register_planner(OrPlanner())
