"""Fig. 7: percentage of congestion cases vs. network size.

Paper: sizes 10..60 (step 10), 500 update instances per run, >= 30 runs.
At 60 switches, more than 65% of instances are congestion-free under
Chronus and OPT, against ~15% for OR -- Chronus tracks OPT closely and
beats OR by ~60 percentage points.

Pipeline scenario ``fig7``: items come from the shared sweep grid
(:mod:`repro.pipeline.stages`), records carry every scheme's outcome per
instance, and the figure itself is a pure aggregation over records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from repro.analysis.timeseries import render_table
from repro.experiments.sweep import congestion_free_percentage
from repro.pipeline.context import RunContext
from repro.pipeline.runner import run_in_memory
from repro.pipeline.scenario import Scenario, register
from repro.pipeline.stages import (
    sweep_evaluate,
    sweep_items,
    sweep_records_from_dicts,
)

SCHEMES = ("opt", "chronus", "or")


@dataclass
class Fig7Result:
    switch_counts: List[int]
    percentages: Dict[str, List[float]]  # scheme -> per-size %

    def render(self) -> str:
        schemes = list(self.percentages)
        rows = []
        for index, count in enumerate(self.switch_counts):
            rows.append(
                [count]
                + [round(self.percentages[scheme][index], 1) for scheme in schemes]
            )
        return render_table(
            ["switches"] + [f"{s} % congestion-free" for s in schemes],
            rows,
            title="Fig. 7 -- congestion-free update instances (%)",
        )


def _aggregate(records: Sequence[Mapping], params: Mapping) -> Fig7Result:
    swept = sweep_records_from_dicts(records)
    counts = [int(count) for count in params["switch_counts"]]
    percentages = {
        scheme: [
            congestion_free_percentage(swept, scheme, count) for count in counts
        ]
        for scheme in params["schemes"]
    }
    return Fig7Result(switch_counts=counts, percentages=percentages)


SCENARIO = register(
    Scenario(
        name="fig7",
        title="Percentage of congestion-free update instances vs. network size",
        paper="Fig. 7",
        description=(
            "Shared mixed-reroute sweep; each record holds every scheme's "
            "congestion outcome on one seeded instance, the figure is the "
            "per-size congestion-free percentage."
        ),
        defaults={
            "switch_counts": (10, 20, 30, 40, 50, 60),
            "instances_per_size": 20,
            "base_seed": 1,
            "schemes": SCHEMES,
            "opt_budget": 1.0,
            "or_budget": 0.5,
            "opt_node_budget": None,
            "or_node_budget": None,
            "workload": "mixed",
            "verify": False,
        },
        items=sweep_items,
        evaluate=sweep_evaluate,
        aggregate=_aggregate,
        paper_params={"instances_per_size": 500, "opt_budget": 2.0},
    )
)


def run_fig7(
    switch_counts: Sequence[int] = (10, 20, 30, 40, 50, 60),
    instances_per_size: int = 20,
    base_seed: int = 1,
    opt_budget: float = 1.0,
    max_workers: int = 1,
) -> Fig7Result:
    """Run the ``fig7`` scenario in memory and aggregate the percentages.

    ``max_workers > 1`` fans the sweep over a process pool; the records
    (and hence the figure) are identical to a serial run.
    """
    return run_in_memory(
        "fig7",
        overrides={
            "switch_counts": tuple(switch_counts),
            "instances_per_size": instances_per_size,
            "base_seed": base_seed,
            "opt_budget": opt_budget,
        },
        ctx=RunContext(workers=max_workers),
    )


def main() -> str:
    result = run_fig7()
    text = result.render()
    print(text)
    return text


if __name__ == "__main__":
    main()
