"""Fig. 7: percentage of congestion cases vs. network size.

Paper: sizes 10..60 (step 10), 500 update instances per run, >= 30 runs.
At 60 switches, more than 65% of instances are congestion-free under
Chronus and OPT, against ~15% for OR -- Chronus tracks OPT closely and
beats OR by ~60 percentage points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.timeseries import render_table
from repro.experiments.sweep import (
    SweepRecord,
    congestion_free_percentage,
    run_sweep,
)

SCHEMES = ("opt", "chronus", "or")


@dataclass
class Fig7Result:
    switch_counts: List[int]
    percentages: Dict[str, List[float]]  # scheme -> per-size %

    def render(self) -> str:
        rows = []
        for index, count in enumerate(self.switch_counts):
            rows.append(
                [count]
                + [round(self.percentages[scheme][index], 1) for scheme in SCHEMES]
            )
        return render_table(
            ["switches"] + [f"{s} % congestion-free" for s in SCHEMES],
            rows,
            title="Fig. 7 -- congestion-free update instances (%)",
        )


def run_fig7(
    switch_counts: Sequence[int] = (10, 20, 30, 40, 50, 60),
    instances_per_size: int = 20,
    base_seed: int = 1,
    opt_budget: float = 1.0,
    max_workers: int = 1,
) -> Fig7Result:
    """Run the sweep and aggregate Fig. 7's percentages.

    ``max_workers > 1`` fans the sweep over a process pool; the records
    (and hence the figure) are identical to a serial run.
    """
    records = run_sweep(
        switch_counts,
        instances_per_size=instances_per_size,
        base_seed=base_seed,
        schemes=SCHEMES,
        opt_budget=opt_budget,
        max_workers=max_workers,
    )
    percentages = {
        scheme: [
            congestion_free_percentage(records, scheme, count)
            for count in switch_counts
        ]
        for scheme in SCHEMES
    }
    return Fig7Result(switch_counts=list(switch_counts), percentages=percentages)


def main() -> str:
    result = run_fig7()
    text = result.render()
    print(text)
    return text


if __name__ == "__main__":
    main()
