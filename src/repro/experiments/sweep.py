"""Shared instance sweep behind Figs. 7, 8 and 11.

The paper's simulation methodology (Section V-B): the initial routing path
is fixed, the final path is random, both share source and destination; each
data point averages at least 30 runs; Fig. 7 compares 500 update instances
per run.  For every instance the sweep runs:

* **Chronus** -- the greedy timed schedule (best-effort on infeasible
  instances, which then count as congestion cases);
* **OPT** -- the exact search under a time budget (budget exhaustion without
  a schedule also counts as a congestion case);
* **OR** -- round-minimal loop-free rounds realised with random per-switch
  asynchrony, replayed through the exact validator.

The per-instance records carry everything the three figures aggregate:
congestion-case flags, congested time-extended link counts and makespans.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import evaluate_schedule
from repro.core.greedy import greedy_schedule
from repro.core.instance import UpdateInstance, random_instance, segmented_instance
from repro.core.optimal import optimal_schedule
from repro.updates.order_replacement import (
    greedy_loop_free_rounds,
    minimize_rounds,
    realize_round_times,
)


@dataclass(frozen=True)
class InstanceOutcome:
    """One scheme's result on one instance."""

    scheme: str
    congestion_free: bool
    congested_timed_links: int
    makespan: Optional[int]


@dataclass
class SweepRecord:
    """All schemes' outcomes on one instance."""

    switch_count: int
    seed: int
    outcomes: Dict[str, InstanceOutcome] = field(default_factory=dict)


def run_instance(
    instance: UpdateInstance,
    seed: int,
    schemes: Sequence[str] = ("chronus", "or", "opt"),
    opt_budget: float = 1.0,
    or_budget: float = 0.5,
    or_skew: int = 3,
) -> Dict[str, InstanceOutcome]:
    """Evaluate the requested schemes on one instance."""
    rng = random.Random(seed ^ 0x5EED)
    outcomes: Dict[str, InstanceOutcome] = {}

    if "chronus" in schemes:
        result = greedy_schedule(instance)
        metrics = evaluate_schedule(instance, result.schedule)
        outcomes["chronus"] = InstanceOutcome(
            scheme="chronus",
            congestion_free=metrics.congestion_free and result.feasible,
            congested_timed_links=metrics.congested_timed_links,
            makespan=metrics.makespan,
        )

    if "opt" in schemes:
        result = optimal_schedule(instance, time_budget=opt_budget)
        if result.schedule is not None:
            metrics = evaluate_schedule(instance, result.schedule)
            outcomes["opt"] = InstanceOutcome(
                scheme="opt",
                congestion_free=metrics.congestion_free,
                congested_timed_links=metrics.congested_timed_links,
                makespan=metrics.makespan,
            )
        else:
            # Infeasible (or budget ran out): execute best-effort loop-free
            # rounds and account the resulting congestion.
            rounds = greedy_loop_free_rounds(instance)
            fallback = realize_round_times(rounds, rng=rng, max_skew=0)
            metrics = evaluate_schedule(instance, fallback)
            outcomes["opt"] = InstanceOutcome(
                scheme="opt",
                congestion_free=False,
                congested_timed_links=metrics.congested_timed_links,
                makespan=metrics.makespan,
            )

    if "or" in schemes:
        rounds = minimize_rounds(instance, time_budget=or_budget).rounds
        realized = realize_round_times(rounds, rng=rng, max_skew=or_skew)
        metrics = evaluate_schedule(instance, realized)
        outcomes["or"] = InstanceOutcome(
            scheme="or",
            congestion_free=metrics.congestion_free,
            congested_timed_links=metrics.congested_timed_links,
            makespan=metrics.makespan,
        )

    return outcomes


def local_reroute_share(switch_count: int) -> float:
    """Fraction of instances whose final path is a *local* reroute.

    "The final path is based on random routing" spans a spectrum: on small
    networks a random reroute touches a couple of switches (easy for every
    protocol), while on large ones it reshuffles long stretches of the route
    (hard).  The share of local reroutes therefore shrinks with the network
    size; this calibration reproduces the paper's Fig. 7 slopes (OR from
    ~90% congestion-free at 10 switches down to ~15% at 60, Chronus/OPT
    staying above 65%).
    """
    return min(0.9, max(0.15, 1.0 - switch_count / 75.0))


def mixed_instance(count: int, seed: int) -> UpdateInstance:
    """One instance from the mixed local/global reroute workload."""
    rng = random.Random(seed)
    if rng.random() < local_reroute_share(count):
        return segmented_instance(
            count,
            seed=seed,
            segments=max(1, count // 15),
            max_segment_length=6,
        )
    return random_instance(count, seed=seed)


def run_sweep(
    switch_counts: Sequence[int],
    instances_per_size: int = 20,
    base_seed: int = 0,
    schemes: Sequence[str] = ("chronus", "or", "opt"),
    opt_budget: float = 1.0,
    workload: str = "mixed",
    max_delay: Optional[int] = None,
    detour_fraction: float = 1.0,
) -> List[SweepRecord]:
    """Generate and evaluate random instances for each network size.

    Paper scale: sizes 10..60 step 10, 500 instances per run, >= 30 runs.
    Defaults here are laptop-scale; raise ``instances_per_size`` to match.

    Args:
        workload: ``"mixed"`` (default, see :func:`mixed_instance`) or
            ``"permutation"`` (every final path reshuffles the whole chain).
    """
    records: List[SweepRecord] = []
    for count in switch_counts:
        for index in range(instances_per_size):
            seed = base_seed * 1_000_003 + count * 10_007 + index
            if workload == "mixed":
                instance = mixed_instance(count, seed)
            elif workload == "permutation":
                instance = random_instance(
                    count,
                    seed=seed,
                    max_delay=max_delay,
                    detour_fraction=detour_fraction,
                )
            else:
                raise ValueError(f"unknown workload {workload!r}")
            record = SweepRecord(switch_count=count, seed=seed)
            record.outcomes = run_instance(
                instance, seed, schemes=schemes, opt_budget=opt_budget
            )
            records.append(record)
    return records


def congestion_free_percentage(
    records: Sequence[SweepRecord], scheme: str, switch_count: int
) -> float:
    """Percent of instances of one size the scheme kept congestion-free."""
    relevant = [
        r for r in records if r.switch_count == switch_count and scheme in r.outcomes
    ]
    if not relevant:
        return 0.0
    clean = sum(1 for r in relevant if r.outcomes[scheme].congestion_free)
    return 100.0 * clean / len(relevant)


def total_congested_links(
    records: Sequence[SweepRecord], scheme: str, switch_count: int
) -> int:
    """Sum of congested time-extended links over one size's instances."""
    return sum(
        r.outcomes[scheme].congested_timed_links
        for r in records
        if r.switch_count == switch_count and scheme in r.outcomes
    )
