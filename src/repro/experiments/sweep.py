"""Shared instance sweep behind Figs. 7, 8 and 11.

The paper's simulation methodology (Section V-B): the initial routing path
is fixed, the final path is random, both share source and destination; each
data point averages at least 30 runs; Fig. 7 compares 500 update instances
per run.  For every instance the sweep runs:

* **Chronus** -- the greedy timed schedule (best-effort on infeasible
  instances, which then count as congestion cases);
* **OPT** -- the exact search under a time budget (budget exhaustion without
  a schedule also counts as a congestion case);
* **OR** -- round-minimal loop-free rounds realised with random per-switch
  asynchrony, replayed through the exact validator.

The per-instance records carry everything the three figures aggregate:
congestion-case flags, congested time-extended link counts and makespans.

Scheme dispatch goes through :mod:`repro.updates.registry`: the sweep
resolves names with :func:`repro.updates.registry.sweep_planners` and loops
over :class:`repro.updates.registry.Planner` entries -- any registered
scheme (including ``tp`` and ``aug``) joins the sweep without this module
changing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.instance import UpdateInstance, random_instance, segmented_instance
from repro.runtime import ParallelRunner
from repro.updates.registry import DEFAULT_SCHEMES, sweep_planners


def sweep_seed(base_seed: int, switch_count: int, index: int) -> int:
    """The per-instance seed of sweep item ``index`` at one network size.

    This formula is part of the harness contract: figures cite seeds, and
    parallel runs must regenerate exactly the instances a serial run would.
    Do not change it without regenerating every recorded result.
    """
    return base_seed * 1_000_003 + switch_count * 10_007 + index


@dataclass(frozen=True)
class InstanceOutcome:
    """One scheme's result on one instance.

    Attributes:
        verifier_agrees: ``None`` when the sweep ran without conformance
            checking; otherwise whether the independent verifier
            (:mod:`repro.validate.verifier`) reproduced this outcome's
            consistency numbers exactly.  A ``False`` here means the
            figures built from this record are measuring a bug.
    """

    scheme: str
    congestion_free: bool
    congested_timed_links: int
    makespan: Optional[int]
    verifier_agrees: Optional[bool] = None


@dataclass
class SweepRecord:
    """All schemes' outcomes on one instance."""

    switch_count: int
    seed: int
    outcomes: Dict[str, InstanceOutcome] = field(default_factory=dict)


def run_instance(
    instance: UpdateInstance,
    seed: int,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    opt_budget: float = 1.0,
    or_budget: float = 0.5,
    or_skew: int = 3,
    opt_node_budget: Optional[int] = None,
    or_node_budget: Optional[int] = None,
    verify: bool = False,
    opt_engine: str = "array",
    or_engine: str = "array",
    aug_epsilon: float = 0.0,
) -> Dict[str, InstanceOutcome]:
    """Evaluate the requested schemes on one instance.

    Scheme names resolve through the planner registry
    (:class:`repro.updates.registry.UnknownSchemeError` on a typo) and
    evaluate in ``sweep_order`` -- the legacy chronus -> opt -> or code
    order -- because all schemes share one per-instance RNG stream and
    reordering would change every realised schedule.

    ``opt_node_budget`` / ``or_node_budget`` bound OPT and OR by explored
    search nodes instead of (or in addition to) wall clock -- deterministic
    budgets, so outcomes stop depending on machine load (see
    :func:`repro.core.optimal.optimal_schedule` and
    :func:`repro.updates.order_replacement.minimize_rounds`).

    ``opt_engine`` / ``or_engine`` pick the exact-search engines
    (``"array"`` default, ``"reference"`` for the differential oracles;
    DESIGN.md §13) -- note the engines count explored nodes at different
    granularities, so node budgets are engine-specific.

    ``aug_epsilon`` is AUG's transient capacity headroom (DESIGN.md §15);
    at ``0.0`` AUG plans on the true network and matches Chronus exactly.

    With ``verify=True`` every evaluated schedule is re-checked by the
    independent verifier and the outcome's ``verifier_agrees`` flag is
    filled in (see :class:`InstanceOutcome`).
    """
    rng = random.Random(seed ^ 0x5EED)
    knobs = {
        "opt_budget": opt_budget,
        "or_budget": or_budget,
        "or_skew": or_skew,
        "opt_node_budget": opt_node_budget,
        "or_node_budget": or_node_budget,
        "opt_engine": opt_engine,
        "or_engine": or_engine,
        "aug_epsilon": aug_epsilon,
    }
    outcomes: Dict[str, InstanceOutcome] = {}
    for planner in sweep_planners(schemes):
        result = planner.plan(instance, rng=rng, **planner.sweep_options(knobs))
        metrics = planner.measure(instance, result)
        outcomes[planner.name] = InstanceOutcome(
            scheme=planner.name,
            congestion_free=metrics.congestion_free and result.feasible,
            congested_timed_links=metrics.congested_timed_links,
            makespan=metrics.makespan,
            verifier_agrees=(
                planner.conformance(instance, result, metrics) if verify else None
            ),
        )
    return outcomes


def local_reroute_share(switch_count: int) -> float:
    """Fraction of instances whose final path is a *local* reroute.

    "The final path is based on random routing" spans a spectrum: on small
    networks a random reroute touches a couple of switches (easy for every
    protocol), while on large ones it reshuffles long stretches of the route
    (hard).  The share of local reroutes therefore shrinks with the network
    size; this calibration reproduces the paper's Fig. 7 slopes (OR from
    ~90% congestion-free at 10 switches down to ~15% at 60, Chronus/OPT
    staying above 65%).
    """
    return min(0.9, max(0.15, 1.0 - switch_count / 75.0))


def mixed_instance(count: int, seed: int) -> UpdateInstance:
    """One instance from the mixed local/global reroute workload.

    Every random draw descends from ``seed`` alone -- the workload coin
    flip uses one :class:`random.Random` and the topology generator gets a
    fresh one -- so the instance is identical no matter which process (or
    import order) builds it.
    """
    rng = random.Random(seed)
    if rng.random() < local_reroute_share(count):
        return segmented_instance(
            count,
            rng=random.Random(seed),
            segments=max(1, count // 15),
            max_segment_length=6,
        )
    return random_instance(count, rng=random.Random(seed))


@dataclass(frozen=True)
class SweepItem:
    """Self-contained description of one sweep evaluation.

    Carries everything a worker process needs to regenerate and evaluate
    the instance; no ambient state crosses the process boundary.
    """

    switch_count: int
    seed: int
    schemes: tuple
    opt_budget: float
    workload: str = "mixed"
    max_delay: Optional[int] = None
    detour_fraction: float = 1.0
    or_budget: float = 0.5
    opt_node_budget: Optional[int] = None
    or_node_budget: Optional[int] = None
    verify: bool = False
    opt_engine: str = "array"
    or_engine: str = "array"
    aug_epsilon: float = 0.0

    def build_instance(self) -> UpdateInstance:
        if self.workload == "mixed":
            return mixed_instance(self.switch_count, self.seed)
        if self.workload == "permutation":
            return random_instance(
                self.switch_count,
                rng=random.Random(self.seed),
                max_delay=self.max_delay,
                detour_fraction=self.detour_fraction,
            )
        raise ValueError(f"unknown workload {self.workload!r}")


def evaluate_sweep_item(item: SweepItem) -> SweepRecord:
    """Worker function: regenerate one instance and evaluate all schemes."""
    record = SweepRecord(switch_count=item.switch_count, seed=item.seed)
    record.outcomes = run_instance(
        item.build_instance(),
        item.seed,
        schemes=item.schemes,
        opt_budget=item.opt_budget,
        or_budget=item.or_budget,
        opt_node_budget=item.opt_node_budget,
        or_node_budget=item.or_node_budget,
        verify=item.verify,
        opt_engine=item.opt_engine,
        or_engine=item.or_engine,
        aug_epsilon=item.aug_epsilon,
    )
    return record


def run_sweep(
    switch_counts: Sequence[int],
    instances_per_size: int = 20,
    base_seed: int = 0,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    opt_budget: float = 1.0,
    workload: str = "mixed",
    max_delay: Optional[int] = None,
    detour_fraction: float = 1.0,
    max_workers: int = 1,
    runner: Optional[ParallelRunner] = None,
    or_budget: float = 0.5,
    opt_node_budget: Optional[int] = None,
    or_node_budget: Optional[int] = None,
    verify: bool = False,
    opt_engine: str = "array",
    or_engine: str = "array",
    aug_epsilon: float = 0.0,
) -> List[SweepRecord]:
    """Generate and evaluate random instances for each network size.

    Paper scale: sizes 10..60 step 10, 500 instances per run, >= 30 runs.
    Defaults here are laptop-scale; raise ``instances_per_size`` to match.

    Every instance descends from its :func:`sweep_seed` alone, so serial
    and parallel runs produce byte-identical records -- with one caveat:
    ``opt_budget``/``or_budget`` are *wall-clock* budgets, and a budget
    that expires mid-search in one run but not the other changes that
    instance's outcome.  For strict record identity (tests, the bench
    gate) bound OPT and OR with the deterministic ``opt_node_budget`` /
    ``or_node_budget`` instead and size the wall-clock budgets so they
    never bind.

    Args:
        workload: ``"mixed"`` (default, see :func:`mixed_instance`) or
            ``"permutation"`` (every final path reshuffles the whole chain).
        max_workers: Worker processes for the sweep; results are identical
            to a serial run because every item is seeded independently.
        runner: Pre-configured :class:`ParallelRunner` (overrides
            ``max_workers``).
        or_budget: Wall-clock budget for OR's round minimisation.
        opt_node_budget: Deterministic explored-node cap for OPT (see
            :func:`run_instance`).
        or_node_budget: Deterministic explored-node cap for OR's round
            minimisation.
        verify: Fill every outcome's ``verifier_agrees`` flag by
            re-checking its schedule with the independent verifier.
        opt_engine: OPT search engine (``"array"``/``"reference"``).
        or_engine: OR round-minimisation engine (same choices).
        aug_epsilon: AUG's transient capacity headroom (``0.0`` matches
            Chronus exactly; unit-capacity workloads need ``>= 1.0`` to
            bind).
    """
    items = [
        SweepItem(
            switch_count=count,
            seed=sweep_seed(base_seed, count, index),
            schemes=tuple(schemes),
            opt_budget=opt_budget,
            workload=workload,
            max_delay=max_delay,
            detour_fraction=detour_fraction,
            or_budget=or_budget,
            opt_node_budget=opt_node_budget,
            or_node_budget=or_node_budget,
            verify=verify,
            opt_engine=opt_engine,
            or_engine=or_engine,
            aug_epsilon=aug_epsilon,
        )
        for count in switch_counts
        for index in range(instances_per_size)
    ]
    if runner is None:
        runner = ParallelRunner(max_workers=max_workers)
    return runner.map(evaluate_sweep_item, items)


def congestion_free_percentage(
    records: Sequence[SweepRecord], scheme: str, switch_count: int
) -> float:
    """Percent of instances of one size the scheme kept congestion-free."""
    relevant = [
        r for r in records if r.switch_count == switch_count and scheme in r.outcomes
    ]
    if not relevant:
        return 0.0
    clean = sum(1 for r in relevant if r.outcomes[scheme].congestion_free)
    return 100.0 * clean / len(relevant)


def total_congested_links(
    records: Sequence[SweepRecord], scheme: str, switch_count: int
) -> int:
    """Sum of congested time-extended links over one size's instances."""
    return sum(
        r.outcomes[scheme].congested_timed_links
        for r in records
        if r.switch_count == switch_count and scheme in r.outcomes
    )


# --- pipeline scenario -------------------------------------------------

@dataclass
class GenericSweepResult:
    """Raw sweep records plus the two standard aggregate views."""

    records: List[SweepRecord]
    switch_counts: Sequence[int]
    schemes: Sequence[str]

    def render(self) -> str:
        from repro.analysis.timeseries import render_table

        rows = []
        for count in self.switch_counts:
            row: List[object] = [count]
            for scheme in self.schemes:
                row.append(
                    f"{congestion_free_percentage(self.records, scheme, count):.1f}%"
                    f" / {total_congested_links(self.records, scheme, count)}"
                )
            rows.append(row)
        return render_table(
            ["switches"] + [f"{s} (free% / cong.links)" for s in self.schemes],
            rows,
            title="Instance sweep -- congestion freedom and congested links",
        )


def _scenario_aggregate(records, params) -> GenericSweepResult:
    from repro.pipeline.stages import sweep_records_from_dicts

    return GenericSweepResult(
        records=sweep_records_from_dicts(records),
        switch_counts=tuple(int(c) for c in params["switch_counts"]),
        schemes=tuple(params["schemes"]),
    )


def _register_scenario():
    from repro.pipeline.scenario import Scenario, register
    from repro.pipeline.stages import sweep_evaluate, sweep_items

    return register(
        Scenario(
            name="sweep",
            title="The shared instance sweep, with every knob exposed",
            paper="Section V-B methodology",
            description=(
                "The raw grid behind Figs. 7/8/11: seeded instances per "
                "network size, every scheme evaluated per instance.  Use "
                "--set to steer workload, budgets and schemes directly."
            ),
            defaults={
                "switch_counts": (10, 20, 30),
                "instances_per_size": 10,
                "base_seed": 0,
                "schemes": DEFAULT_SCHEMES,
                "opt_budget": 1.0,
                "or_budget": 0.5,
                "workload": "mixed",
                "max_delay": None,
                "detour_fraction": 1.0,
                "opt_node_budget": None,
                "or_node_budget": None,
                "verify": False,
                "opt_engine": "array",
                "or_engine": "array",
                "aug_epsilon": 0.0,
            },
            items=sweep_items,
            evaluate=sweep_evaluate,
            aggregate=_scenario_aggregate,
            paper_params={
                "switch_counts": (10, 20, 30, 40, 50, 60),
                "instances_per_size": 500,
            },
        )
    )


SCENARIO = _register_scenario()
