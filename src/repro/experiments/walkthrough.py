"""Figs. 1, 2 and 5: the motivating example, fully regenerated.

Reproduces the paper's Section II narrative as text:

* Fig. 1(a): the six-switch topology with old and new routing;
* Fig. 2(a): updating everything at once creates three forwarding loops;
* Fig. 2(b): updating {v1, v2} then the rest congests link (v4, v3);
* Fig. 1(e)-(h): the consistent timed sequence, step by step in the
  time-extended network;
* Fig. 5: Algorithm 3's dependency relation sets per time step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from repro.analysis.illustrate import render_dependency_evolution, render_flow_timeline
from repro.core.instance import motivating_example
from repro.core.schedule import UpdateSchedule
from repro.core.trace import trace_schedule
from repro.pipeline.context import WorkerContext
from repro.pipeline.scenario import Scenario, register


def run_walkthrough() -> str:
    instance = motivating_example()
    parts = []

    parts.append("Fig. 1(a) -- topology and routing")
    parts.append(f"  old (solid):  {' -> '.join(instance.old_path)}")
    parts.append(f"  new (dashed): {' -> '.join(instance.new_path)}  (+ drain rule v5 -> v2)")
    parts.append("")

    all_at_once = UpdateSchedule({v: 0 for v in instance.switches_to_update})
    result = trace_schedule(instance, all_at_once)
    loops = ", ".join(f"revisit of {event.node} (emission {event.emission})" for event in result.loops)
    parts.append("Fig. 2(a) -- all switches updated at t0:")
    parts.append(f"  {len(result.loops)} forwarding loops: {loops}")
    parts.append("")

    fig2b = UpdateSchedule({"v1": 0, "v2": 0, "v3": 1, "v4": 1, "v5": 1})
    result = trace_schedule(instance, fig2b)
    for event in result.congestion:
        parts.append(
            "Fig. 2(b) -- {v1,v2}@t0 then {v3,v4,v5}@t1: link "
            f"{event.link[0]}->{event.link[1]} carries {event.load:g} > "
            f"{event.capacity:g} at t{event.time}"
        )
    parts.append("")

    paper_schedule = UpdateSchedule({"v2": 0, "v3": 1, "v1": 2, "v4": 2, "v5": 3})
    parts.append("Fig. 1(e)-(h) -- the paper's timed sequence, step by step:")
    parts.append(render_flow_timeline(instance, paper_schedule, t_start=-2, t_end=8))
    parts.append("")

    parts.append("Fig. 5 -- dependency relation sets along the greedy run:")
    parts.append(render_dependency_evolution(instance))
    return "\n".join(parts)


@dataclass
class WalkthroughResult:
    """The regenerated Section II narrative."""

    text: str

    def render(self) -> str:
        return self.text


def _items(params: Mapping) -> List[Dict[str, object]]:
    return [{"key": "narrative"}]


def _evaluate(item: Mapping, params: Mapping, ctx: WorkerContext) -> Dict[str, object]:
    return {"key": item["key"], "text": run_walkthrough()}


def _aggregate(records: Sequence[Mapping], params: Mapping) -> WalkthroughResult:
    (record,) = records
    return WalkthroughResult(text=str(record["text"]))


SCENARIO = register(
    Scenario(
        name="walkthrough",
        title="The Section II motivating example, fully regenerated",
        paper="Figs. 1/2/5",
        description=(
            "One record holding the rendered narrative: topology, the two "
            "inconsistent naive updates, the paper's timed sequence and "
            "Algorithm 3's dependency sets."
        ),
        defaults={},
        items=_items,
        evaluate=_evaluate,
        aggregate=_aggregate,
    )
)


def main() -> str:
    text = run_walkthrough()
    print(text)
    return text


if __name__ == "__main__":
    main()
