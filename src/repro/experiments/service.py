"""The ``service`` scenario: sustained update streams against one plane.

Beyond the paper's one-shot experiments: each item is one *cell* -- a
seeded multi-tenant workload replayed through the full
:mod:`repro.service` loop (admission, merging, greedy planning,
verification, resilient timed execution on a shared DES data plane) on
the deterministic virtual-time runtime.  Records carry per-request
outcomes and virtual-time latency/throughput/queue metrics, so two runs
of the same seed are byte-identical; wall-clock updates/sec lives in the
bench harness, not here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from repro.experiments.sweep import sweep_seed
from repro.pipeline.context import WorkerContext
from repro.service.metrics import latency_summary


def service_items(params: Mapping[str, object]) -> List[Dict[str, object]]:
    """One item per cell; seeds follow the ``sweep_seed`` contract."""
    base_seed = int(params["base_seed"])  # type: ignore[arg-type]
    pods = int(params["pods"])  # type: ignore[arg-type]
    return [
        {
            "key": f"cell{index}",
            "index": index,
            "seed": sweep_seed(base_seed, pods, index),
        }
        for index in range(int(params["cells"]))  # type: ignore[arg-type]
    ]


def service_evaluate(
    item: Mapping[str, object],
    params: Mapping[str, object],
    ctx: WorkerContext,
) -> Dict[str, object]:
    """Run one full service cell and flatten it into a record."""
    from repro.service.service import ServiceConfig, run_cell

    config = ServiceConfig(
        pods=int(params["pods"]),  # type: ignore[arg-type]
        pod_size=int(params["pod_size"]),  # type: ignore[arg-type]
        requests=int(params["requests"]),  # type: ignore[arg-type]
        mean_interarrival=float(params["mean_interarrival"]),  # type: ignore[arg-type]
        seed=int(item["seed"]),  # type: ignore[arg-type]
        demand=float(params["demand"]),  # type: ignore[arg-type]
        capacity=float(params["capacity"]),  # type: ignore[arg-type]
        share_links=bool(params["share_links"]),
        planners=int(params["planners"]),  # type: ignore[arg-type]
        plan_ticks=int(params["plan_ticks"]),  # type: ignore[arg-type]
        max_queue=int(params["max_queue"]),  # type: ignore[arg-type]
        verify=bool(ctx.verify or params["verify"]),
    )
    report = run_cell(config)
    record = report.to_record()
    record["key"] = item["key"]
    return record


@dataclass
class ServiceResult:
    """Aggregated service records: per-cell rows plus pooled percentiles."""

    records: Sequence[Mapping[str, object]]

    def render(self) -> str:
        from repro.analysis.timeseries import render_table

        rows: List[List[object]] = []
        pooled: List[float] = []
        total = completed = rejected = aborted = 0
        conformant = True
        for record in self.records:
            summary: Mapping[str, object] = record["summary"]  # type: ignore[assignment]
            latency: Mapping[str, object] = summary["latency"]  # type: ignore[assignment]
            total += int(summary["requests"])  # type: ignore[arg-type]
            completed += int(summary["completed"])  # type: ignore[arg-type]
            rejected += int(summary["rejected"])  # type: ignore[arg-type]
            aborted += int(summary["aborted"])  # type: ignore[arg-type]
            conformant = conformant and bool(summary["conformant_all"])
            pooled.extend(
                request["latency"]  # type: ignore[misc]
                for request in record["requests"]  # type: ignore[union-attr]
                if request["latency"] is not None
                and request["status"] in ("completed", "superseded", "noop")
            )
            rows.append(
                [
                    record["key"],
                    summary["requests"],
                    summary["completed"],
                    summary["merged_batches"],
                    summary["virtual_updates_per_sec"],
                    latency["p50"],
                    latency["p95"],
                    summary["queue"]["max"],  # type: ignore[index]
                    "yes" if summary["conformant_all"] else "NO",
                ]
            )
        table = render_table(
            [
                "cell",
                "reqs",
                "done",
                "merged",
                "upd/s (virt)",
                "p50",
                "p95",
                "q.max",
                "conformant",
            ],
            rows,
            title="Update service -- sustained request streams",
        )
        overall = latency_summary(pooled)
        footer = (
            f"overall: {total} requests, {completed} completed, "
            f"{rejected} rejected, {aborted} aborted; latency p50={overall['p50']} "
            f"p95={overall['p95']} p99={overall['p99']} (virtual s); "
            f"conformant={'yes' if conformant else 'NO'}"
        )
        return f"{table}\n{footer}"


def _scenario_aggregate(records, params) -> ServiceResult:
    return ServiceResult(records=list(records))


def _register_scenario():
    from repro.pipeline.scenario import Scenario, register

    return register(
        Scenario(
            name="service",
            title="Long-running update service over a shared live plane",
            paper="beyond the paper (Timed-SDN controller loop)",
            description=(
                "Cells of sustained multi-tenant update streams through "
                "admission, batch merging, greedy planning, verification "
                "and resilient timed execution; records carry per-request "
                "outcomes plus virtual-time latency/throughput/queue "
                "metrics and are byte-identical across runs of one seed."
            ),
            defaults={
                "cells": 2,
                "pods": 6,
                "pod_size": 7,
                "requests": 40,
                "mean_interarrival": 2.0,
                "demand": 1.0,
                "capacity": 2.0,
                "share_links": True,
                "planners": 2,
                "plan_ticks": 1,
                "max_queue": 32,
                "base_seed": 0,
                "verify": True,
            },
            items=service_items,
            evaluate=service_evaluate,
            aggregate=_scenario_aggregate,
            paper_params={
                "cells": 4,
                "pods": 16,
                "pod_size": 9,
                "requests": 200,
                "mean_interarrival": 1.0,
            },
        )
    )


SCENARIO = _register_scenario()
