"""Fig. 6: link bandwidth consumption over time during an update.

Paper setup (Section V-A): Mininet with 10 switches, 5 Mbps links, a 5 Mbps
aggregate flow, link delays between 5 ms and 1 s; bandwidth measured by
polling byte counters every second.  OR's asynchronous rounds push the
hottest link to ~6 Mbps (beyond capacity -> loss), while Chronus and TP stay
within the normal range.

Here the same scenario runs on the fluid data plane: Chronus executes its
timed schedule via Time4-style scheduled FlowMods, TP flips the ingress tag
after installing the versioned rules, and OR pushes round by round through
the asynchronous control channel with Dionysus-shaped installation
latencies.

Pipeline scenario ``fig6``: one record per scheme (the bandwidth series of
the hottest link plus the peak utilisation); because the execution runs on
the discrete-event plane, the run context's optional fault severity is
honoured -- ``run --fault-severity 0.5 fig6`` replays the same update over
a lossy control channel.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.controller import (
    ConstantDelayModel,
    ControlChannel,
    Controller,
    DionysusDelayModel,
    perform_round_update,
    perform_timed_update,
    synchronized_clocks,
)
from repro.core.instance import UpdateInstance, instance_from_topology
from repro.network.topology import two_path_topology
from repro.pipeline.context import RunContext, WorkerContext
from repro.pipeline.runner import run_in_memory
from repro.pipeline.scenario import Scenario, register
from repro.simulator import BandwidthMonitor, Simulator, build_dataplane
from repro.simulator.dataplane import install_config
from repro.simulator.flowtable import FlowRule, Match
from repro.analysis.timeseries import render_series
from repro.updates.registry import ROUNDS, TWO_PHASE, get_planner, planners_for

SCHEMES = ("chronus", "tp", "or")

#: Per-scheme RNG stream indices.  The legacy trio keeps its historic
#: streams (their recorded series depend on them); any other registered
#: scheme gets a stable stream derived from its sweep order.
_RNG_STREAM = {name: index for index, name in enumerate(SCHEMES)}


@dataclass
class Fig6Result:
    """Bandwidth series of the hottest link per scheme."""

    series: Dict[str, List[Tuple[float, float]]]
    peaks: Dict[str, float]
    capacity: float

    def render(self) -> str:
        table = render_series(
            {name: points for name, points in self.series.items()},
            title=(
                "Fig. 6 -- bandwidth consumption (hottest link) during the "
                f"update; link capacity {self.capacity} Mbps"
            ),
        )
        peaks = ", ".join(f"{k}={v:.2f}" for k, v in self.peaks.items())
        return table + f"\npeaks: {peaks} Mbps"


def _items(params: Mapping) -> List[Dict[str, object]]:
    planners_for(params["schemes"])  # fail fast on unregistered names
    return [{"key": scheme, "scheme": scheme} for scheme in params["schemes"]]


def _evaluate(item: Mapping, params: Mapping, ctx: WorkerContext) -> Dict[str, object]:
    """Run one scheme on the (seed-regenerated) rerouted topology."""
    seed = int(params["seed"])
    capacity = float(params["capacity_mbps"])
    topo = two_path_topology(
        int(params["switch_count"]),
        rng=random.Random(seed),
        capacity=capacity,
        max_delay=int(params["max_delay_steps"]),
    )
    instance = instance_from_topology(topo, demand=capacity)
    monitor, plane = _run_scheme(
        str(item["scheme"]),
        instance,
        seed,
        float(params["duration"]),
        float(params["update_at"]),
        float(params["delay_scale"]),
        fault_severity=ctx.fault_severity,
    )
    hottest = monitor.peak_series()
    return {
        "key": item["key"],
        "scheme": item["scheme"],
        "series": [[s.time, s.mbps] for s in hottest],
        "peak": max(plane.links[link].peak_utilization() for link in plane.links),
        "capacity": capacity,
    }


def _aggregate(records: Sequence[Mapping], params: Mapping) -> Fig6Result:
    series = {
        str(r["scheme"]): [(float(t), float(m)) for t, m in r["series"]]
        for r in records
    }
    peaks = {str(r["scheme"]): float(r["peak"]) for r in records}
    return Fig6Result(
        series=series, peaks=peaks, capacity=float(params["capacity_mbps"])
    )


SCENARIO = register(
    Scenario(
        name="fig6",
        title="Link bandwidth consumption over time during an update",
        paper="Fig. 6",
        description=(
            "One discrete-event execution per scheme on the same rerouted "
            "10-switch topology; records carry the hottest link's bandwidth "
            "series and the peak utilisation."
        ),
        defaults={
            "schemes": SCHEMES,
            "seed": 3,
            "switch_count": 10,
            "capacity_mbps": 5.0,
            "duration": 30.0,
            "update_at": 5.0,
            "delay_scale": 1.0,
            "max_delay_steps": 3,
        },
        items=_items,
        evaluate=_evaluate,
        aggregate=_aggregate,
        paper_params={"duration": 60.0},
    )
)


def run_fig6(
    seed: int = 3,
    switch_count: int = 10,
    capacity_mbps: float = 5.0,
    duration: float = 30.0,
    update_at: float = 5.0,
    delay_scale: float = 1.0,
    max_delay_steps: int = 3,
) -> Fig6Result:
    """Run the three schemes on one randomly rerouted 10-switch topology.

    Args:
        seed: Seeds topology, final path and all latencies.
        switch_count: Switches on the initial path (paper: 10).
        capacity_mbps: Link capacity and flow rate (paper: 5 Mbps).
        duration: Simulated seconds per scheme.
        update_at: True time the update begins.
        delay_scale: Seconds per model time step (link delays become
            ``step * delay_scale`` seconds, paper range 5 ms - 1 s).
        max_delay_steps: Link delays drawn from ``[1, max_delay_steps]``.
    """
    return run_in_memory(
        "fig6",
        overrides={
            "seed": seed,
            "switch_count": switch_count,
            "capacity_mbps": capacity_mbps,
            "duration": duration,
            "update_at": update_at,
            "delay_scale": delay_scale,
            "max_delay_steps": max_delay_steps,
        },
        ctx=RunContext(),
    )


def _run_scheme(
    scheme: str,
    instance: UpdateInstance,
    seed: int,
    duration: float,
    update_at: float,
    delay_scale: float,
    fault_severity: Optional[float] = None,
):
    planner = get_planner(scheme)
    stream = _RNG_STREAM.get(scheme, 3 + planner.sweep_order)
    rng = random.Random(seed * 1009 + stream * 997)
    sim = Simulator()
    plane = build_dataplane(sim, instance.network, delay_scale=delay_scale)
    install_config(plane, instance)
    fault_plan = None
    if fault_severity:
        from repro.faults import FaultPlan, FaultyChannel, severity_spec

        fault_plan = FaultPlan(
            severity_spec(fault_severity, crash_window=(update_at, duration)),
            seed=seed ^ 0xFA17,
        )
        channel = FaultyChannel(
            sim,
            fault_plan,
            network_delay=ConstantDelayModel(0.002),
            install_delay=DionysusDelayModel(median=0.3, sigma=1.0, cap=2.0),
            rng=rng,
        )
    else:
        channel = ControlChannel(
            sim,
            network_delay=ConstantDelayModel(0.002),
            install_delay=DionysusDelayModel(median=0.3, sigma=1.0, cap=2.0),
            rng=rng,
        )
    clocks = synchronized_clocks(instance.network.switches, max_offset=1e-6, rng=rng)
    controller = Controller(sim, channel, clocks)
    for switch in plane.switches.values():
        controller.manage(switch)
    if fault_plan is not None:
        fault_plan.wire(controller)
    plane.inject_flow(
        instance.source, "h1", str(instance.destination), rate=instance.demand
    )
    monitor = BandwidthMonitor(plane, interval=1.0)
    monitor.start()
    sim.run(until=update_at)

    if planner.executor == TWO_PHASE:
        _run_two_phase(sim, plane, controller, instance, update_at)
    elif planner.executor == ROUNDS:
        plan = planner.protocol(rng=rng).plan(instance)
        perform_round_update(
            controller, plane, instance, plan.schedule, time_unit=1.0
        )
    else:
        schedule = planner.plan(instance, rng=rng).schedule
        perform_timed_update(
            controller, plane, instance, schedule, time_unit=delay_scale,
            start_at=update_at + 0.5,
        )

    sim.run(until=duration)
    monitor.stop()  # drain the poll loop so later open-ended runs terminate
    return monitor, plane


def _run_two_phase(sim, plane, controller, instance: UpdateInstance, update_at: float) -> None:
    """Two-phase execution: versioned rules, ingress flip, then cleanup.

    Phase 1 installs the tagged new configuration (traffic-invisible);
    phase 2 flips the ingress stamp; once the untagged traffic drained, the
    old-version rules are deleted -- completing the full two-phase protocol
    including its table-space release.
    """
    from repro.controller.messages import (
        FlowModAdd,
        FlowModDelete,
        FlowModModify,
        next_xid,
    )

    new_tag = 2
    dst_prefix = str(instance.destination)
    # Phase 1: install tagged copies of the new configuration everywhere.
    for node, nxt in instance.new_config.items():
        rule = FlowRule(
            name=f"{instance.flow.name}#v2",
            match=Match(dst_prefix=dst_prefix, tag=new_tag),
            out_port=plane.port_of(node, nxt),
            priority=1,
        )
        controller.send_flow_mod(node, FlowModAdd(xid=next_xid(), rule=rule))
    from repro.simulator.switch import HOST_PORT

    controller.send_flow_mod(
        instance.destination,
        FlowModAdd(
            xid=next_xid(),
            rule=FlowRule(
                name=f"{instance.flow.name}#v2",
                match=Match(dst_prefix=dst_prefix, tag=new_tag),
                out_port=HOST_PORT,
                priority=1,
            ),
        ),
    )

    # Phase 2 (after the rules settled): stamp new packets at the ingress.
    def flip() -> None:
        controller.send_flow_mod(
            instance.source,
            FlowModModify(
                xid=next_xid(),
                rule_name=instance.flow.name,
                out_port=plane.port_of(instance.source, instance.new_next_hop(instance.source)),
                set_tag=new_tag,
            ),
        )

    # Cleanup: remove the old-version rules once untagged traffic drained
    # (the ingress keeps its -- now stamping -- rule).
    def cleanup() -> None:
        for node in instance.old_config:
            if node == instance.source:
                continue
            controller.send_flow_mod(
                node, FlowModDelete(xid=next_xid(), rule_name=instance.flow.name)
            )

    sim.schedule_at(update_at + 3.0, flip)
    sim.schedule_at(update_at + 6.0 + instance.old_path_delay, cleanup)


def main() -> str:
    result = run_fig6()
    text = result.render()
    print(text)
    return text


if __name__ == "__main__":
    main()
