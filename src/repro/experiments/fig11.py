"""Fig. 11: CDF of the update time, Chronus vs. OPT.

Paper: 400 switches; most Chronus updates finish within 15 time units and
OPT within 13 -- Chronus achieves near-optimal update times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.stats import cdf_points, percentile
from repro.analysis.timeseries import render_table
from repro.core.greedy import greedy_schedule
from repro.core.instance import segmented_instance
from repro.core.optimal import optimal_schedule


@dataclass
class Fig11Result:
    chronus_times: List[int]
    opt_times: List[int]

    def cdfs(self) -> Dict[str, List[Tuple[float, float]]]:
        return {
            "chronus": cdf_points([float(v) for v in self.chronus_times]),
            "opt": cdf_points([float(v) for v in self.opt_times]),
        }

    def render(self) -> str:
        cdfs = self.cdfs()
        times = sorted(
            {value for points in cdfs.values() for value, _ in points}
        )
        rows = []
        for value in times:
            row: List[object] = [int(value)]
            for scheme in ("chronus", "opt"):
                prob = max(
                    (p for v, p in cdfs[scheme] if v <= value), default=0.0
                )
                row.append(f"{prob:.2f}")
            rows.append(row)
        table = render_table(
            ["time units", "chronus CDF", "opt CDF"],
            rows,
            title="Fig. 11 -- CDF of the update time",
        )
        summary = (
            f"\np95: chronus={percentile([float(v) for v in self.chronus_times], 95):.0f}"
            f" opt={percentile([float(v) for v in self.opt_times], 95):.0f} time units"
        )
        return table + summary


def run_fig11(
    switch_count: int = 400,
    instances: int = 30,
    base_seed: int = 5,
    opt_budget: float = 2.0,
) -> Fig11Result:
    """Collect update-time samples for both schemes.

    Paper scale: 400 switches with the locally-rerouted (segmented
    reversal) workload; OPT runs under an anytime budget and contributes
    its incumbent.  Only feasible instances contribute (the paper's update
    time is defined for completed congestion-free updates).
    """
    chronus_times: List[int] = []
    opt_times: List[int] = []
    index = 0
    attempts = 0
    while len(chronus_times) < instances and attempts < instances * 10:
        attempts += 1
        seed = base_seed * 11_000_003 + switch_count * 17 + index
        index += 1
        instance = segmented_instance(switch_count, seed=seed)
        greedy = greedy_schedule(instance)
        if not greedy.feasible:
            continue
        opt = optimal_schedule(instance, time_budget=opt_budget)
        if opt.schedule is None:
            continue
        chronus_times.append(greedy.schedule.makespan)
        opt_times.append(opt.schedule.makespan)
    return Fig11Result(chronus_times=chronus_times, opt_times=opt_times)


def main() -> str:
    result = run_fig11()
    text = result.render()
    print(text)
    return text


if __name__ == "__main__":
    main()
