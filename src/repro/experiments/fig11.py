"""Fig. 11: CDF of the update time, Chronus vs. OPT.

Paper: 400 switches; most Chronus updates finish within 15 time units and
OPT within 13 -- Chronus achieves near-optimal update times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.stats import cdf_points, percentile
from repro.analysis.timeseries import render_table
from repro.core.greedy import greedy_schedule
from repro.core.instance import segmented_instance
from repro.core.optimal import optimal_schedule
from repro.runtime import ParallelRunner


@dataclass
class Fig11Result:
    chronus_times: List[int]
    opt_times: List[int]

    def cdfs(self) -> Dict[str, List[Tuple[float, float]]]:
        return {
            "chronus": cdf_points([float(v) for v in self.chronus_times]),
            "opt": cdf_points([float(v) for v in self.opt_times]),
        }

    def render(self) -> str:
        cdfs = self.cdfs()
        times = sorted(
            {value for points in cdfs.values() for value, _ in points}
        )
        rows = []
        for value in times:
            row: List[object] = [int(value)]
            for scheme in ("chronus", "opt"):
                prob = max(
                    (p for v, p in cdfs[scheme] if v <= value), default=0.0
                )
                row.append(f"{prob:.2f}")
            rows.append(row)
        table = render_table(
            ["time units", "chronus CDF", "opt CDF"],
            rows,
            title="Fig. 11 -- CDF of the update time",
        )
        summary = (
            f"\np95: chronus={percentile([float(v) for v in self.chronus_times], 95):.0f}"
            f" opt={percentile([float(v) for v in self.opt_times], 95):.0f} time units"
        )
        return table + summary


@dataclass(frozen=True)
class _SampleItem:
    """One candidate instance of the Fig. 11 sample collection."""

    switch_count: int
    seed: int
    opt_budget: float


def _sample_one(item: _SampleItem) -> Optional[Tuple[int, int]]:
    """Worker: ``(chronus makespan, opt makespan)``, or ``None`` when the
    instance does not contribute (greedy infeasible / OPT empty-handed)."""
    instance = segmented_instance(item.switch_count, seed=item.seed)
    greedy = greedy_schedule(instance)
    if not greedy.feasible:
        return None
    opt = optimal_schedule(instance, time_budget=item.opt_budget)
    if opt.schedule is None:
        return None
    return (greedy.schedule.makespan, opt.schedule.makespan)


def run_fig11(
    switch_count: int = 400,
    instances: int = 30,
    base_seed: int = 5,
    opt_budget: float = 2.0,
    max_workers: int = 1,
) -> Fig11Result:
    """Collect update-time samples for both schemes.

    Paper scale: 400 switches with the locally-rerouted (segmented
    reversal) workload; OPT runs under an anytime budget and contributes
    its incumbent.  Only feasible instances contribute (the paper's update
    time is defined for completed congestion-free updates).

    Candidates are evaluated in index-ordered batches (parallel when
    ``max_workers > 1``) but always *consumed* serially in index order, so
    the sample -- the first ``instances`` contributing indices within the
    attempt budget -- is identical for any worker count; a parallel run
    may merely evaluate a few candidates past the stopping point.
    """
    chronus_times: List[int] = []
    opt_times: List[int] = []
    max_attempts = instances * 10
    runner = ParallelRunner(max_workers=max_workers, chunk_size=1)
    batch_size = max(1, max_workers) * 2
    attempts = 0
    index = 0
    while len(chronus_times) < instances and attempts < max_attempts:
        batch = [
            _SampleItem(
                switch_count=switch_count,
                seed=base_seed * 11_000_003 + switch_count * 17 + (index + i),
                opt_budget=opt_budget,
            )
            for i in range(min(batch_size, max_attempts - attempts))
        ]
        index += len(batch)
        for sample in runner.map(_sample_one, batch):
            attempts += 1
            if sample is None:
                continue
            chronus_times.append(sample[0])
            opt_times.append(sample[1])
            if len(chronus_times) >= instances:
                break
    return Fig11Result(chronus_times=chronus_times, opt_times=opt_times)


def main() -> str:
    result = run_fig11()
    text = result.render()
    print(text)
    return text


if __name__ == "__main__":
    main()
