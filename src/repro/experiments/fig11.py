"""Fig. 11: CDF of the update time, Chronus vs. OPT.

Paper: 400 switches; most Chronus updates finish within 15 time units and
OPT within 13 -- Chronus achieves near-optimal update times.

Pipeline scenario ``fig11``: candidate instances are a static index grid
(so runs are resumable), evaluated in index order; the scenario's
``enough`` predicate stops the run once the target number of instances
contributed.  Only feasible instances contribute (the paper's update time
is defined for completed congestion-free updates), so serial, parallel
and resumed runs collect the identical sample -- the first ``instances``
contributing indices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.stats import cdf_points, percentile
from repro.analysis.timeseries import render_table
from repro.core.instance import segmented_instance
from repro.pipeline.context import RunContext, WorkerContext
from repro.pipeline.runner import run_in_memory
from repro.pipeline.scenario import Scenario, register
from repro.updates.registry import planners_for

#: Candidate indices evaluated per requested instance before giving up.
ATTEMPT_FACTOR = 10

#: The default CDF pair; ``--set schemes=aug,opt`` compares any two
#: registered planners instead.
DEFAULT_PAIR = ("chronus", "opt")


@dataclass
class Fig11Result:
    """Paired makespan samples of the two compared schemes.

    ``chronus_times``/``opt_times`` hold the first/second scheme's sample
    (named for the default pair; ``schemes`` carries the actual labels).
    """

    chronus_times: List[int]
    opt_times: List[int]
    schemes: Tuple[str, str] = DEFAULT_PAIR

    def cdfs(self) -> Dict[str, List[Tuple[float, float]]]:
        return {
            self.schemes[0]: cdf_points([float(v) for v in self.chronus_times]),
            self.schemes[1]: cdf_points([float(v) for v in self.opt_times]),
        }

    def render(self) -> str:
        cdfs = self.cdfs()
        times = sorted(
            {value for points in cdfs.values() for value, _ in points}
        )
        rows = []
        for value in times:
            row: List[object] = [int(value)]
            for scheme in self.schemes:
                prob = max(
                    (p for v, p in cdfs[scheme] if v <= value), default=0.0
                )
                row.append(f"{prob:.2f}")
            rows.append(row)
        table = render_table(
            ["time units"] + [f"{scheme} CDF" for scheme in self.schemes],
            rows,
            title="Fig. 11 -- CDF of the update time",
        )
        summary = (
            f"\np95: {self.schemes[0]}="
            f"{percentile([float(v) for v in self.chronus_times], 95):.0f}"
            f" {self.schemes[1]}="
            f"{percentile([float(v) for v in self.opt_times], 95):.0f} time units"
        )
        return table + summary


def _items(params: Mapping) -> List[Dict[str, object]]:
    schemes = tuple(params.get("schemes", DEFAULT_PAIR))
    planners_for(schemes)  # fail fast on unregistered names
    if len(schemes) != 2:
        raise ValueError(f"Fig. 11 compares exactly two schemes, got {schemes!r}")
    base_seed = int(params["base_seed"])
    switch_count = int(params["switch_count"])
    attempts = int(params["instances"]) * ATTEMPT_FACTOR
    return [
        {
            "key": f"i{index}",
            "index": index,
            "switch_count": switch_count,
            "seed": base_seed * 11_000_003 + switch_count * 17 + index,
        }
        for index in range(attempts)
    ]


def _evaluate(item: Mapping, params: Mapping, ctx: WorkerContext) -> Dict[str, object]:
    """One candidate: both schemes' makespans, or nulls when the instance
    does not contribute (a ``makespan_sample`` returned ``None``)."""
    schemes = tuple(params.get("schemes", DEFAULT_PAIR))
    instance = segmented_instance(int(item["switch_count"]), seed=int(item["seed"]))
    record: Dict[str, object] = {
        "key": item["key"],
        "index": item["index"],
        "seed": item["seed"],
        **{scheme: None for scheme in schemes},
    }
    samples: Dict[str, int] = {}
    for planner in planners_for(schemes):
        value = planner.makespan_sample(instance, **planner.sweep_options(params))
        if value is None:
            return record  # non-contributing: every scheme stays null
        samples[planner.name] = value
    record.update(samples)
    return record


def _contributors(records: Sequence[Mapping], lead_scheme: str) -> List[Mapping]:
    ordered = sorted(records, key=lambda r: int(r["index"]))
    return [r for r in ordered if r[lead_scheme] is not None]


def _enough(records: Sequence[Mapping], params: Mapping) -> bool:
    lead = tuple(params.get("schemes", DEFAULT_PAIR))[0]
    return len(_contributors(records, lead)) >= int(params["instances"])


def _aggregate(records: Sequence[Mapping], params: Mapping) -> Fig11Result:
    schemes = tuple(params.get("schemes", DEFAULT_PAIR))
    sample = _contributors(records, schemes[0])[: int(params["instances"])]
    return Fig11Result(
        chronus_times=[int(r[schemes[0]]) for r in sample],
        opt_times=[int(r[schemes[1]]) for r in sample],
        schemes=schemes,  # type: ignore[arg-type]
    )


SCENARIO = register(
    Scenario(
        name="fig11",
        title="CDF of the update time, Chronus vs. OPT",
        paper="Fig. 11",
        description=(
            "Seeded candidate instances evaluated in index order until the "
            "target sample size contributed; records carry both makespans."
        ),
        defaults={
            "switch_count": 400,
            "instances": 30,
            "base_seed": 5,
            "opt_budget": 2.0,
            "schemes": DEFAULT_PAIR,
        },
        items=_items,
        evaluate=_evaluate,
        aggregate=_aggregate,
        enough=_enough,
        paper_params={"instances": 500, "opt_budget": 10.0},
    )
)


def run_fig11(
    switch_count: int = 400,
    instances: int = 30,
    base_seed: int = 5,
    opt_budget: float = 2.0,
    max_workers: int = 1,
    schemes: Sequence[str] = DEFAULT_PAIR,
) -> Fig11Result:
    """Collect update-time samples for both schemes.

    Paper scale: 400 switches with the locally-rerouted (segmented
    reversal) workload; OPT runs under an anytime budget and contributes
    its incumbent.  Candidates are evaluated in index-ordered batches
    (parallel when ``max_workers > 1``) but always *consumed* serially in
    index order, so the sample is identical for any worker count; a
    parallel run may merely evaluate a few candidates past the stopping
    point.
    """
    return run_in_memory(
        "fig11",
        overrides={
            "switch_count": switch_count,
            "instances": instances,
            "base_seed": base_seed,
            "opt_budget": opt_budget,
            "schemes": tuple(schemes),
        },
        ctx=RunContext(workers=max_workers),
    )


def main() -> str:
    result = run_fig11()
    text = result.render()
    print(text)
    return text


if __name__ == "__main__":
    main()
