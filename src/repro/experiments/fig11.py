"""Fig. 11: CDF of the update time, Chronus vs. OPT.

Paper: 400 switches; most Chronus updates finish within 15 time units and
OPT within 13 -- Chronus achieves near-optimal update times.

Pipeline scenario ``fig11``: candidate instances are a static index grid
(so runs are resumable), evaluated in index order; the scenario's
``enough`` predicate stops the run once the target number of instances
contributed.  Only feasible instances contribute (the paper's update time
is defined for completed congestion-free updates), so serial, parallel
and resumed runs collect the identical sample -- the first ``instances``
contributing indices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.stats import cdf_points, percentile
from repro.analysis.timeseries import render_table
from repro.core.greedy import greedy_schedule
from repro.core.optimal import optimal_schedule
from repro.core.instance import segmented_instance
from repro.pipeline.context import RunContext, WorkerContext
from repro.pipeline.runner import run_in_memory
from repro.pipeline.scenario import Scenario, register

#: Candidate indices evaluated per requested instance before giving up.
ATTEMPT_FACTOR = 10


@dataclass
class Fig11Result:
    chronus_times: List[int]
    opt_times: List[int]

    def cdfs(self) -> Dict[str, List[Tuple[float, float]]]:
        return {
            "chronus": cdf_points([float(v) for v in self.chronus_times]),
            "opt": cdf_points([float(v) for v in self.opt_times]),
        }

    def render(self) -> str:
        cdfs = self.cdfs()
        times = sorted(
            {value for points in cdfs.values() for value, _ in points}
        )
        rows = []
        for value in times:
            row: List[object] = [int(value)]
            for scheme in ("chronus", "opt"):
                prob = max(
                    (p for v, p in cdfs[scheme] if v <= value), default=0.0
                )
                row.append(f"{prob:.2f}")
            rows.append(row)
        table = render_table(
            ["time units", "chronus CDF", "opt CDF"],
            rows,
            title="Fig. 11 -- CDF of the update time",
        )
        summary = (
            f"\np95: chronus={percentile([float(v) for v in self.chronus_times], 95):.0f}"
            f" opt={percentile([float(v) for v in self.opt_times], 95):.0f} time units"
        )
        return table + summary


def _items(params: Mapping) -> List[Dict[str, object]]:
    base_seed = int(params["base_seed"])
    switch_count = int(params["switch_count"])
    attempts = int(params["instances"]) * ATTEMPT_FACTOR
    return [
        {
            "key": f"i{index}",
            "index": index,
            "switch_count": switch_count,
            "seed": base_seed * 11_000_003 + switch_count * 17 + index,
        }
        for index in range(attempts)
    ]


def _evaluate(item: Mapping, params: Mapping, ctx: WorkerContext) -> Dict[str, object]:
    """One candidate: ``chronus``/``opt`` makespans, or nulls when the
    instance does not contribute (greedy infeasible / OPT empty-handed)."""
    instance = segmented_instance(int(item["switch_count"]), seed=int(item["seed"]))
    record: Dict[str, object] = {
        "key": item["key"],
        "index": item["index"],
        "seed": item["seed"],
        "chronus": None,
        "opt": None,
    }
    greedy = greedy_schedule(instance)
    if not greedy.feasible:
        return record
    opt = optimal_schedule(instance, time_budget=float(params["opt_budget"]))
    if opt.schedule is None:
        return record
    record["chronus"] = greedy.schedule.makespan
    record["opt"] = opt.schedule.makespan
    return record


def _contributors(records: Sequence[Mapping]) -> List[Mapping]:
    ordered = sorted(records, key=lambda r: int(r["index"]))
    return [r for r in ordered if r["chronus"] is not None]


def _enough(records: Sequence[Mapping], params: Mapping) -> bool:
    return len(_contributors(records)) >= int(params["instances"])


def _aggregate(records: Sequence[Mapping], params: Mapping) -> Fig11Result:
    sample = _contributors(records)[: int(params["instances"])]
    return Fig11Result(
        chronus_times=[int(r["chronus"]) for r in sample],
        opt_times=[int(r["opt"]) for r in sample],
    )


SCENARIO = register(
    Scenario(
        name="fig11",
        title="CDF of the update time, Chronus vs. OPT",
        paper="Fig. 11",
        description=(
            "Seeded candidate instances evaluated in index order until the "
            "target sample size contributed; records carry both makespans."
        ),
        defaults={
            "switch_count": 400,
            "instances": 30,
            "base_seed": 5,
            "opt_budget": 2.0,
        },
        items=_items,
        evaluate=_evaluate,
        aggregate=_aggregate,
        enough=_enough,
        paper_params={"instances": 500, "opt_budget": 10.0},
    )
)


def run_fig11(
    switch_count: int = 400,
    instances: int = 30,
    base_seed: int = 5,
    opt_budget: float = 2.0,
    max_workers: int = 1,
) -> Fig11Result:
    """Collect update-time samples for both schemes.

    Paper scale: 400 switches with the locally-rerouted (segmented
    reversal) workload; OPT runs under an anytime budget and contributes
    its incumbent.  Candidates are evaluated in index-ordered batches
    (parallel when ``max_workers > 1``) but always *consumed* serially in
    index order, so the sample is identical for any worker count; a
    parallel run may merely evaluate a few candidates past the stopping
    point.
    """
    return run_in_memory(
        "fig11",
        overrides={
            "switch_count": switch_count,
            "instances": instances,
            "base_seed": base_seed,
            "opt_budget": opt_budget,
        },
        ctx=RunContext(workers=max_workers),
    )


def main() -> str:
    result = run_fig11()
    text = result.render()
    print(text)
    return text


if __name__ == "__main__":
    main()
