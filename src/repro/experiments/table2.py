"""Table II: flow tables at the source and destination switches.

The paper's prototype matches on the destination IP prefix, uses the input
port to distinguish host traffic, and (for two-phase updates) VLAN tags as
version numbers.  This experiment builds the emulation data plane, installs
the configuration exactly as the prototype does, and renders the resulting
source and destination flow tables in Table II's layout -- before the
update, during a two-phase transition (both versions resident), and after.

Pipeline scenario ``table2``: a single record carrying the four rendered
rule tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from repro.core.instance import random_instance
from repro.pipeline.context import RunContext, WorkerContext
from repro.pipeline.runner import run_in_memory
from repro.pipeline.scenario import Scenario, register
from repro.simulator import Simulator, build_dataplane
from repro.simulator.dataplane import install_config
from repro.simulator.flowtable import FlowRule, Match
from repro.simulator.switch import HOST_PORT


@dataclass
class Table2Result:
    source_rows: List[str]
    destination_rows: List[str]
    source_rows_two_phase: List[str]
    destination_rows_two_phase: List[str]

    def render(self) -> str:
        lines = ["Table II -- flow tables at source switch R1 and destination switch R12"]
        lines.append("\nFlow table at source switch (steady state)")
        lines.extend(self.source_rows)
        lines.append("\nFlow table at destination switch (steady state)")
        lines.extend(self.destination_rows)
        lines.append("\nFlow table at source switch (two-phase transition: both versions)")
        lines.extend(self.source_rows_two_phase)
        lines.append("\nFlow table at destination switch (two-phase transition)")
        lines.extend(self.destination_rows_two_phase)
        return "\n".join(lines)


def _build_tables(switch_count: int, seed: int) -> Dict[str, List[str]]:
    """Build the emulation tables for a ``switch_count``-switch topology."""
    instance = random_instance(switch_count, seed=seed, capacity=5.0, demand=5.0)
    sim = Simulator()
    plane = build_dataplane(sim, instance.network, delay_scale=0.01)
    install_config(plane, instance)

    source = plane.switch(instance.source)
    destination = plane.switch(instance.destination)

    # Host-facing ingress rule at the source (InPort = host port).
    source.table.add(
        FlowRule(
            name="host-in",
            match=Match(in_port=HOST_PORT, src_prefix="h1", dst_prefix=str(instance.destination)),
            out_port=plane.port_of(instance.source, instance.old_next_hop(instance.source)),
            priority=2,
        )
    )
    steady_source = source.table.render()
    steady_destination = destination.table.render()

    # Two-phase transition: versioned copies resident alongside.
    new_tag = 2
    for node, nxt in instance.new_config.items():
        plane.switch(node).table.add(
            FlowRule(
                name=f"{instance.flow.name}#v2",
                match=Match(dst_prefix=str(instance.destination), tag=new_tag),
                out_port=plane.port_of(node, nxt),
                priority=1,
            )
        )
    destination.table.add(
        FlowRule(
            name=f"{instance.flow.name}#v2",
            match=Match(dst_prefix=str(instance.destination), tag=new_tag),
            out_port=HOST_PORT,
            priority=1,
        )
    )
    return {
        "source_rows": steady_source,
        "destination_rows": steady_destination,
        "source_rows_two_phase": source.table.render(),
        "destination_rows_two_phase": destination.table.render(),
    }


def _items(params: Mapping) -> List[Dict[str, object]]:
    return [{"key": "tables"}]


def _evaluate(item: Mapping, params: Mapping, ctx: WorkerContext) -> Dict[str, object]:
    tables = _build_tables(int(params["switch_count"]), int(params["seed"]))
    return {"key": item["key"], **tables}


def _aggregate(records: Sequence[Mapping], params: Mapping) -> Table2Result:
    (record,) = records
    return Table2Result(
        source_rows=list(record["source_rows"]),
        destination_rows=list(record["destination_rows"]),
        source_rows_two_phase=list(record["source_rows_two_phase"]),
        destination_rows_two_phase=list(record["destination_rows_two_phase"]),
    )


SCENARIO = register(
    Scenario(
        name="table2",
        title="Flow tables at the source and destination switches",
        paper="Table II",
        description=(
            "Builds the emulation data plane as the prototype does and "
            "records the rendered source/destination tables, steady state "
            "and mid two-phase transition."
        ),
        defaults={"switch_count": 12, "seed": 12},
        items=_items,
        evaluate=_evaluate,
        aggregate=_aggregate,
    )
)


def run_table2(switch_count: int = 12, seed: int = 12) -> Table2Result:
    """Build the tables for a ``switch_count``-switch emulation topology."""
    return run_in_memory(
        "table2",
        overrides={"switch_count": switch_count, "seed": seed},
        ctx=RunContext(),
    )


def main() -> str:
    result = run_table2()
    text = result.render()
    print(text)
    return text


if __name__ == "__main__":
    main()
