"""The unified experiments CLI: ``python -m repro.experiments``.

Subcommands over the scenario registry and the artifact store::

    python -m repro.experiments list
    python -m repro.experiments run fig7 --workers 4 --set instances_per_size=50
    python -m repro.experiments resume fig7            # pick up a killed run
    python -m repro.experiments report fig7            # re-render, no compute

``run`` streams records to ``runs/<scenario>/<run-id>/`` (override the
root with ``--runs-dir`` or ``$REPRO_RUNS_DIR``), checkpointed per
record; a killed run resumes byte-identically.  ``report`` aggregates a
stored run without recomputing anything.

Invoked with bare scenario names (or none), it behaves as the legacy
battery runner: every named experiment executes in memory and prints its
figure/table.  Names must match a registered scenario **exactly** --
``fig1`` no longer silently selects Figs. 10 and 11.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

from repro.pipeline.cli import (
    finish_progress,
    parse_override,
    progress_printer,
)
from repro.pipeline.context import RunContext
from repro.pipeline.runner import (
    RunInterrupted,
    report_from_store,
    run_in_memory,
    run_to_store,
)
from repro.pipeline.scenario import (
    UnknownScenarioError,
    all_scenarios,
    get_scenario,
)
from repro.pipeline.store import ArtifactStore, StoreError
from repro.updates.registry import UnknownSchemeError, planners_for

#: The battery ``python -m repro.experiments`` (no arguments) runs, in the
#: order the paper presents them.
LEGACY_DEFAULT = (
    "walkthrough",
    "table2",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
)

SUBCOMMANDS = ("list", "run", "resume", "report")

#: Exit code of a ``--stop-after`` interruption (distinct from argparse's 2).
EXIT_INTERRUPTED = 3


def _add_context_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=1, help="worker processes (default 1)"
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="re-check every schedule with the independent verifier",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="collect repro.perf spans and print the report",
    )
    parser.add_argument(
        "--fault-severity",
        type=float,
        default=None,
        metavar="S",
        help="run over a faulty control plane at severity S (scenarios "
        "executing on the discrete-event plane honour it)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="SINK",
        help="record an execution trace: console, jsonl[:PATH] or "
        "sqlite[:PATH]; file sinks default into the run directory "
        "(inspect with python -m repro.trace)",
    )
    parser.add_argument(
        "--serial-threshold",
        type=float,
        default=None,
        metavar="S",
        help="min projected pool work in seconds (0 always uses the pool; "
        "default: the runner's heuristic)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the progress line"
    )


def _add_store_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--runs-dir",
        default=None,
        metavar="DIR",
        help="artifact store root (default: $REPRO_RUNS_DIR or ./runs)",
    )
    parser.add_argument(
        "--run-id", default=None, help="run id (default: new for run, latest "
        "for resume/report)"
    )


def _add_run_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--stop-after",
        type=int,
        default=None,
        metavar="N",
        help=f"stop after N new records, simulating a kill (exit "
        f"{EXIT_INTERRUPTED}); the run stays resumable",
    )
    parser.add_argument(
        "--no-report",
        action="store_true",
        help="write records only; skip rendering the figure/table",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run, resume and report the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list registered scenarios")

    run = sub.add_parser("run", help="run a scenario into the artifact store")
    run.add_argument("scenario")
    run.add_argument(
        "--paper",
        action="store_true",
        help="use the paper's original scale (the scenario's paper_params)",
    )
    run.add_argument(
        "--set",
        dest="overrides",
        action="append",
        type=parse_override,
        default=[],
        metavar="KEY=VALUE",
        help="override one parameter (JSON value, bare string fallback); "
        "repeatable",
    )
    _add_store_flags(run)
    _add_context_flags(run)
    _add_run_flags(run)

    resume = sub.add_parser(
        "resume", help="resume an interrupted run (params come from its manifest)"
    )
    resume.add_argument("scenario")
    _add_store_flags(resume)
    _add_context_flags(resume)
    _add_run_flags(resume)

    report = sub.add_parser(
        "report", help="re-render a stored run; aggregation only, no compute"
    )
    report.add_argument("scenario")
    _add_store_flags(report)

    return parser


def _context(args: argparse.Namespace) -> RunContext:
    ctx = RunContext(
        workers=args.workers,
        verify=args.verify,
        profile=args.profile,
        fault_severity=args.fault_severity,
        trace=args.trace,
        serial_threshold_seconds=args.serial_threshold,
    )
    ctx.progress = progress_printer("record", quiet=args.quiet)
    return ctx


def _store(args: argparse.Namespace) -> ArtifactStore:
    return ArtifactStore(root=args.runs_dir)


def _print_profile(args: argparse.Namespace) -> None:
    if args.profile:
        from repro.perf import perf

        print(perf.report(min_seconds=0.001))


def _cmd_list() -> int:
    store = ArtifactStore()
    rows = []
    for scenario in all_scenarios():
        runs = store.run_ids(scenario.name)
        rows.append(
            (scenario.name, scenario.paper, len(runs), scenario.title)
        )
    name_w = max(len(r[0]) for r in rows)
    paper_w = max(len(r[1]) for r in rows)
    for name, paper, runs, title in rows:
        stored = f"{runs} run(s)" if runs else "-"
        print(f"{name:<{name_w}}  {paper:<{paper_w}}  {stored:>9}  {title}")
    return 0


def _validate_schemes(args: argparse.Namespace) -> None:
    """Reject unregistered scheme names before any compute starts.

    ``--set schemes=chrnous`` used to die minutes later with a
    ``KeyError`` inside a worker; resolving the materialised params
    against the planner registry up front turns the typo into an exit-2
    parse error listing the registered names.  Comma-separated shorthand
    (``--set schemes=chronus,aug``) is normalised to a list here so the
    scenario sees the same shape a JSON override would produce.
    """
    scenario = get_scenario(args.scenario)
    overrides = dict(args.overrides)
    value = overrides.get("schemes")
    if isinstance(value, str):
        overrides["schemes"] = [name for name in value.split(",") if name]
        args.overrides = list(overrides.items())
    params = scenario.params_with(overrides=overrides, paper=args.paper)
    schemes = params.get("schemes")
    if schemes is not None:
        planners_for(tuple(schemes))


def _cmd_run(args: argparse.Namespace, resume: bool) -> int:
    ctx = _context(args)
    if not resume:
        _validate_schemes(args)
    try:
        stored = run_to_store(
            args.scenario,
            overrides=dict(args.overrides) if not resume else None,
            ctx=ctx,
            store=_store(args),
            run_id=args.run_id,
            resume=resume,
            paper=args.paper if not resume else False,
            stop_after=args.stop_after,
        )
    except RunInterrupted as interrupted:
        finish_progress(quiet=args.quiet)
        handle = interrupted.handle
        where = handle.directory if handle is not None else "the store"
        print(f"interrupted: {interrupted}")
        print(f"resume with: python -m repro.experiments resume {args.scenario}")
        print(f"records so far: {where}")
        return EXIT_INTERRUPTED
    finish_progress(quiet=args.quiet)
    summary = stored.summary
    if not args.quiet:
        skipped = f", {summary.skipped} resumed" if summary.skipped else ""
        early = " (enough() satisfied early)" if summary.satisfied_early else ""
        print(
            f"{stored.scenario.name}: {len(stored.records)} record(s)"
            f"{skipped}{early} -> {stored.handle.directory}"
        )
        trace_meta = stored.handle.manifest.get("trace")
        if isinstance(trace_meta, dict):
            where = trace_meta.get("path") or trace_meta.get("sink")
            print(f"trace: {where} (inspect: python -m repro.trace show)")
    if not args.no_report:
        print(stored.aggregate().render())
    _print_profile(args)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    result = report_from_store(
        args.scenario, store=_store(args), run_id=args.run_id
    )
    print(result.render())
    return 0


def _legacy(names: Sequence[str]) -> int:
    """The historical battery runner: in-memory runs, rendered output."""
    wanted = list(names) or list(LEGACY_DEFAULT)
    # Resolve every name before running anything: a typo at position N
    # should not cost N-1 experiments of compute first.
    scenarios = [get_scenario(name) for name in wanted]
    for scenario in scenarios:
        banner = f"{scenario.paper} ({scenario.name})"
        print("=" * 72)
        print(banner)
        print("=" * 72)
        started = time.monotonic()
        result = run_in_memory(scenario.name, ctx=RunContext())
        print(result.render())
        print(f"[{banner} finished in {time.monotonic() - started:.1f} s]\n")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    try:
        if argv and argv[0] in SUBCOMMANDS:
            args = build_parser().parse_args(argv)
            if args.command == "list":
                return _cmd_list()
            if args.command == "run":
                return _cmd_run(args, resume=False)
            if args.command == "resume":
                args.overrides = []
                args.paper = False
                return _cmd_run(args, resume=True)
            return _cmd_report(args)
        if argv and argv[0] in ("-h", "--help"):
            build_parser().parse_args(argv)
            return 0
        return _legacy(argv)
    except UnknownScenarioError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except UnknownSchemeError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except StoreError as exc:
        print(str(exc), file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
