"""Run the full evaluation harness: ``python -m repro.experiments``.

Prints every table and figure of the paper's evaluation section with
laptop-scale defaults; see EXPERIMENTS.md for the mapping to the paper's
original scales.
"""

from __future__ import annotations

import sys
import time

from repro.experiments import fig6, fig7, fig8, fig9, fig10, fig11, table2, walkthrough

EXPERIMENTS = [
    ("Figs. 1/2/5 (walkthrough)", walkthrough.main),
    ("Table II", table2.main),
    ("Fig. 6", fig6.main),
    ("Fig. 7", fig7.main),
    ("Fig. 8", fig8.main),
    ("Fig. 9", fig9.main),
    ("Fig. 10", fig10.main),
    ("Fig. 11", fig11.main),
]


def main(argv=None) -> int:
    only = set((argv or sys.argv[1:]))
    for name, entry in EXPERIMENTS:
        if only and not any(token.lower() in name.lower() for token in only):
            continue
        print("=" * 72)
        print(name)
        print("=" * 72)
        started = time.monotonic()
        entry()
        print(f"[{name} finished in {time.monotonic() - started:.1f} s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
