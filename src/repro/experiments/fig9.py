"""Fig. 9: forwarding-rule overhead, Chronus (box plot) vs. two-phase.

Paper: with 300 switches the average rule count is 596 for TP and 190 for
Chronus -- over 60% savings -- and TP's curve grows much faster with the
network size (TP is not even plotted beyond 400 switches because it leaves
the axis).  What is counted are the rule operations each protocol issues:
TP installs a full versioned rule set and later deletes the old one, while
Chronus sends one in-place modification per rerouted switch.

Pipeline scenario ``fig9``: one record per (size, instance) carrying both
protocols' operation counts; the box statistics are pure aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from repro.analysis.stats import BoxStats, box_stats, mean
from repro.analysis.timeseries import render_table
from repro.pipeline.context import RunContext, WorkerContext
from repro.pipeline.runner import run_in_memory
from repro.pipeline.scenario import Scenario, register


@dataclass
class Fig9Result:
    switch_counts: List[int]
    chronus_boxes: Dict[int, BoxStats]
    tp_means: Dict[int, float]

    def render(self) -> str:
        rows = []
        for count in self.switch_counts:
            box = self.chronus_boxes[count]
            tp = self.tp_means[count]
            saving = 100.0 * (1 - box.mean / tp) if tp else 0.0
            rows.append(
                [count, f"{box.mean:.0f}", box.row(), f"{tp:.0f}", f"{saving:.0f}%"]
            )
        return render_table(
            ["switches", "chronus mean", "chronus box", "tp mean", "saving"],
            rows,
            title="Fig. 9 -- number of forwarding-rule operations",
        )


def _rule_operations_chronus(instance) -> int:
    """Chronus' rule footprint without running the scheduler.

    The operation count depends only on the instance (one operation per
    switch needing an update), so Fig. 9 avoids the scheduling cost.
    """
    return len(instance.switches_to_update)


def _items(params: Mapping) -> List[Dict[str, object]]:
    base_seed = int(params["base_seed"])
    return [
        {
            "key": f"n{count}-i{index}",
            "switch_count": int(count),
            "index": index,
            "seed": base_seed * 7_000_003 + int(count) * 101 + index,
        }
        for count in params["switch_counts"]
        for index in range(int(params["instances_per_size"]))
    ]


def _evaluate(item: Mapping, params: Mapping, ctx: WorkerContext) -> Dict[str, object]:
    from repro.core.instance import random_instance
    from repro.updates import TwoPhaseProtocol

    instance = random_instance(
        int(item["switch_count"]),
        seed=int(item["seed"]),
        detour_fraction=float(params["detour_fraction"]),
    )
    return {
        "key": item["key"],
        "switch_count": item["switch_count"],
        "seed": item["seed"],
        "chronus_ops": _rule_operations_chronus(instance),
        "tp_ops": TwoPhaseProtocol().plan(instance).rules.operations,
    }


def _aggregate(records: Sequence[Mapping], params: Mapping) -> Fig9Result:
    counts = [int(count) for count in params["switch_counts"]]
    chronus_boxes: Dict[int, BoxStats] = {}
    tp_means: Dict[int, float] = {}
    for count in counts:
        relevant = [r for r in records if int(r["switch_count"]) == count]
        chronus_boxes[count] = box_stats([float(r["chronus_ops"]) for r in relevant])
        tp_means[count] = mean([float(r["tp_ops"]) for r in relevant])
    return Fig9Result(
        switch_counts=counts, chronus_boxes=chronus_boxes, tp_means=tp_means
    )


SCENARIO = register(
    Scenario(
        name="fig9",
        title="Forwarding-rule operations, Chronus vs. two-phase",
        paper="Fig. 9",
        description=(
            "One record per (size, instance) with both protocols' rule "
            "operation counts; aggregation builds the box statistics."
        ),
        defaults={
            "switch_counts": (100, 200, 300, 400, 500, 600),
            "instances_per_size": 20,
            "base_seed": 3,
            "detour_fraction": 0.6,
        },
        items=_items,
        evaluate=_evaluate,
        aggregate=_aggregate,
        paper_params={"instances_per_size": 500},
    )
)


def run_fig9(
    switch_counts: Sequence[int] = (100, 200, 300, 400, 500, 600),
    instances_per_size: int = 20,
    base_seed: int = 3,
    detour_fraction: float = 0.6,
) -> Fig9Result:
    """Measure rule operations per protocol across instance sizes.

    ``detour_fraction`` controls how much of the network the random final
    path traverses; 0.6 reproduces the paper's ratio (~190 Chronus vs ~596
    TP rule operations at 300 switches).
    """
    return run_in_memory(
        "fig9",
        overrides={
            "switch_counts": tuple(switch_counts),
            "instances_per_size": instances_per_size,
            "base_seed": base_seed,
            "detour_fraction": detour_fraction,
        },
        ctx=RunContext(),
    )


def main() -> str:
    result = run_fig9()
    text = result.render()
    print(text)
    return text


if __name__ == "__main__":
    main()
