"""Fig. 9: forwarding-rule overhead, Chronus (box plot) vs. two-phase.

Paper: with 300 switches the average rule count is 596 for TP and 190 for
Chronus -- over 60% savings -- and TP's curve grows much faster with the
network size (TP is not even plotted beyond 400 switches because it leaves
the axis).  What is counted are the rule operations each protocol issues:
TP installs a full versioned rule set and later deletes the old one, while
Chronus sends one in-place modification per rerouted switch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.stats import BoxStats, box_stats, mean
from repro.analysis.timeseries import render_table
from repro.core.instance import random_instance
from repro.updates import ChronusProtocol, TwoPhaseProtocol


@dataclass
class Fig9Result:
    switch_counts: List[int]
    chronus_boxes: Dict[int, BoxStats]
    tp_means: Dict[int, float]

    def render(self) -> str:
        rows = []
        for count in self.switch_counts:
            box = self.chronus_boxes[count]
            tp = self.tp_means[count]
            saving = 100.0 * (1 - box.mean / tp) if tp else 0.0
            rows.append(
                [count, f"{box.mean:.0f}", box.row(), f"{tp:.0f}", f"{saving:.0f}%"]
            )
        return render_table(
            ["switches", "chronus mean", "chronus box", "tp mean", "saving"],
            rows,
            title="Fig. 9 -- number of forwarding-rule operations",
        )


def run_fig9(
    switch_counts: Sequence[int] = (100, 200, 300, 400, 500, 600),
    instances_per_size: int = 20,
    base_seed: int = 3,
    detour_fraction: float = 0.6,
) -> Fig9Result:
    """Measure rule operations per protocol across instance sizes.

    ``detour_fraction`` controls how much of the network the random final
    path traverses; 0.6 reproduces the paper's ratio (~190 Chronus vs ~596
    TP rule operations at 300 switches).
    """
    chronus = ChronusProtocol()
    tp = TwoPhaseProtocol()
    chronus_boxes: Dict[int, BoxStats] = {}
    tp_means: Dict[int, float] = {}
    for count in switch_counts:
        chronus_ops: List[float] = []
        tp_ops: List[float] = []
        for index in range(instances_per_size):
            seed = base_seed * 7_000_003 + count * 101 + index
            instance = random_instance(
                count, seed=seed, detour_fraction=detour_fraction
            )
            chronus_ops.append(_rule_operations_chronus(instance))
            tp_ops.append(tp.plan(instance).rules.operations)
        chronus_boxes[count] = box_stats(chronus_ops)
        tp_means[count] = mean(tp_ops)
    return Fig9Result(
        switch_counts=list(switch_counts),
        chronus_boxes=chronus_boxes,
        tp_means=tp_means,
    )


def _rule_operations_chronus(instance) -> int:
    """Chronus' rule footprint without running the scheduler.

    The operation count depends only on the instance (one operation per
    switch needing an update), so Fig. 9 avoids the scheduling cost.
    """
    return len(instance.switches_to_update)


def main() -> str:
    result = run_fig9()
    text = result.render()
    print(text)
    return text


if __name__ == "__main__":
    main()
