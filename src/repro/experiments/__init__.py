"""The evaluation harness: one module per table/figure of the paper.

Every experiment exposes ``run_*`` returning structured results and a
``main``-style entry point printing the paper's rows/series.  Default
parameters are scaled so the whole harness finishes in minutes on a laptop;
each module documents the paper's original scale and the knobs to reach it.

| Module    | Reproduces                                                    |
|-----------|---------------------------------------------------------------|
| table2    | Table II -- flow tables at source and destination switches    |
| fig6      | Fig. 6 -- bandwidth consumption over time during an update    |
| fig7      | Fig. 7 -- percentage of congestion cases vs. network size     |
| fig8      | Fig. 8 -- congested time-extended links vs. network size      |
| fig9      | Fig. 9 -- forwarding-rule overhead, Chronus vs. two-phase     |
| fig10     | Fig. 10 -- scheduler running time vs. network size            |
| fig11     | Fig. 11 -- CDF of the update time, Chronus vs. OPT            |
| walkthrough | Figs. 1/2/5 -- the Section II motivating example            |
| faults_ablation | Beyond the paper: consistency vs. control-plane faults  |
"""

from repro.experiments import (
    faults_ablation,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    table2,
    walkthrough,
)

__all__ = [
    "table2",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "walkthrough",
    "faults_ablation",
]
