"""The evaluation harness: one module per table/figure of the paper.

Every experiment registers a declarative :class:`repro.pipeline.Scenario`
(run them with ``python -m repro.experiments run <name>``) and keeps its
legacy ``run_*`` entry point returning the same structured result.
Default parameters are scaled so the whole harness finishes in minutes on
a laptop; each scenario carries ``paper_params`` with the knobs of the
paper's original scale (``run --paper``).

| Scenario      | Reproduces                                                  |
|---------------|-------------------------------------------------------------|
| table2        | Table II -- flow tables at source and destination switches  |
| fig6          | Fig. 6 -- bandwidth consumption over time during an update  |
| fig7          | Fig. 7 -- percentage of congestion cases vs. network size   |
| fig8          | Fig. 8 -- congested time-extended links vs. network size    |
| fig9          | Fig. 9 -- forwarding-rule overhead, Chronus vs. two-phase   |
| fig10         | Fig. 10 -- scheduler running time vs. network size          |
| fig10-greedy  | Fig. 10's Chronus-only large-scale variant                  |
| fig11         | Fig. 11 -- CDF of the update time, Chronus vs. OPT          |
| walkthrough   | Figs. 1/2/5 -- the Section II motivating example            |
| faults        | Beyond the paper: consistency vs. control-plane faults      |
| service       | Beyond the paper: the long-running update-service loop      |
| sweep         | Section V-B's raw instance sweep with every knob exposed    |

Importing this package populates the scenario registry; the registry's
``_ensure_loaded`` does exactly that, so library users never import the
experiment modules directly just to resolve a name.
"""

from repro.experiments import (
    faults_ablation,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    service,
    sweep,
    table2,
    walkthrough,
)

__all__ = [
    "table2",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "service",
    "sweep",
    "walkthrough",
    "faults_ablation",
]
