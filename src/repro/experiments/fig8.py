"""Fig. 8: number of congested links (time-extended network) vs. size.

Paper: same workload as Fig. 7; Chronus decreases the number of congested
time-extended links by ~70% relative to OR, increasingly so at larger
sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.timeseries import render_table
from repro.experiments.sweep import SweepRecord, run_sweep, total_congested_links

SCHEMES = ("chronus", "or")


@dataclass
class Fig8Result:
    switch_counts: List[int]
    congested: Dict[str, List[int]]

    def render(self) -> str:
        rows = []
        for index, count in enumerate(self.switch_counts):
            chronus = self.congested["chronus"][index]
            order = self.congested["or"][index]
            saving = 100.0 * (1 - chronus / order) if order else 0.0
            rows.append([count, chronus, order, f"{saving:.0f}%"])
        return render_table(
            ["switches", "chronus", "or", "reduction"],
            rows,
            title="Fig. 8 -- congested links of the time-extended network (sum)",
        )


def run_fig8(
    switch_counts: Sequence[int] = (10, 20, 30, 40, 50, 60),
    instances_per_size: int = 20,
    base_seed: int = 2,
    max_workers: int = 1,
) -> Fig8Result:
    """Run the sweep and sum congested time-extended links per scheme.

    ``max_workers > 1`` fans the sweep over a process pool; the records
    (and hence the figure) are identical to a serial run.
    """
    records = run_sweep(
        switch_counts,
        instances_per_size=instances_per_size,
        base_seed=base_seed,
        schemes=SCHEMES,
        max_workers=max_workers,
    )
    congested = {
        scheme: [
            total_congested_links(records, scheme, count) for count in switch_counts
        ]
        for scheme in SCHEMES
    }
    return Fig8Result(switch_counts=list(switch_counts), congested=congested)


def main() -> str:
    result = run_fig8()
    text = result.render()
    print(text)
    return text


if __name__ == "__main__":
    main()
