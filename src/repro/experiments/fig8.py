"""Fig. 8: number of congested links (time-extended network) vs. size.

Paper: same workload as Fig. 7; Chronus decreases the number of congested
time-extended links by ~70% relative to OR, increasingly so at larger
sizes.

Pipeline scenario ``fig8``: the same shared sweep grid as ``fig7`` (with
its own base seed and scheme pair); the figure sums congested
time-extended links per size from the stored records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from repro.analysis.timeseries import render_table
from repro.experiments.sweep import total_congested_links
from repro.pipeline.context import RunContext
from repro.pipeline.runner import run_in_memory
from repro.pipeline.scenario import Scenario, register
from repro.pipeline.stages import (
    sweep_evaluate,
    sweep_items,
    sweep_records_from_dicts,
)

SCHEMES = ("chronus", "or")


@dataclass
class Fig8Result:
    switch_counts: List[int]
    congested: Dict[str, List[int]]

    def render(self) -> str:
        rows = []
        for index, count in enumerate(self.switch_counts):
            chronus = self.congested["chronus"][index]
            order = self.congested["or"][index]
            saving = 100.0 * (1 - chronus / order) if order else 0.0
            rows.append([count, chronus, order, f"{saving:.0f}%"])
        return render_table(
            ["switches", "chronus", "or", "reduction"],
            rows,
            title="Fig. 8 -- congested links of the time-extended network (sum)",
        )


def _aggregate(records: Sequence[Mapping], params: Mapping) -> Fig8Result:
    swept = sweep_records_from_dicts(records)
    counts = [int(count) for count in params["switch_counts"]]
    congested = {
        scheme: [total_congested_links(swept, scheme, count) for count in counts]
        for scheme in params["schemes"]
    }
    return Fig8Result(switch_counts=counts, congested=congested)


SCENARIO = register(
    Scenario(
        name="fig8",
        title="Congested links of the time-extended network vs. network size",
        paper="Fig. 8",
        description=(
            "Shared mixed-reroute sweep over chronus/or; the figure sums "
            "each size's congested time-extended links from the records."
        ),
        defaults={
            "switch_counts": (10, 20, 30, 40, 50, 60),
            "instances_per_size": 20,
            "base_seed": 2,
            "schemes": SCHEMES,
            "opt_budget": 1.0,
            "or_budget": 0.5,
            "opt_node_budget": None,
            "or_node_budget": None,
            "workload": "mixed",
            "verify": False,
        },
        items=sweep_items,
        evaluate=sweep_evaluate,
        aggregate=_aggregate,
        paper_params={"instances_per_size": 500},
    )
)


def run_fig8(
    switch_counts: Sequence[int] = (10, 20, 30, 40, 50, 60),
    instances_per_size: int = 20,
    base_seed: int = 2,
    max_workers: int = 1,
) -> Fig8Result:
    """Run the ``fig8`` scenario in memory and sum congested links.

    ``max_workers > 1`` fans the sweep over a process pool; the records
    (and hence the figure) are identical to a serial run.
    """
    return run_in_memory(
        "fig8",
        overrides={
            "switch_counts": tuple(switch_counts),
            "instances_per_size": instances_per_size,
            "base_seed": base_seed,
        },
        ctx=RunContext(workers=max_workers),
    )


def main() -> str:
    result = run_fig8()
    text = result.render()
    print(text)
    return text


if __name__ == "__main__":
    main()
