"""Fig. 10: scheduler running time vs. network size.

Paper: sizes 1K..6K; OR and OPT stay under 600 s up to ~2K switches but
blow past the 600-second cutoff beyond 4K (orders of magnitude slower),
while Chronus stays below 600 s even at 6K.  The *shape* -- Chronus
polynomial, OR/OPT exponential-with-cutoff -- is what matters; both the
sizes and the cutoff scale down proportionally here so the harness runs in
minutes (pass the paper's values to reproduce the original axes).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.timeseries import render_table
from repro.core.greedy import greedy_schedule
from repro.core.instance import segmented_instance
from repro.core.optimal import optimal_schedule
from repro.runtime import ParallelRunner
from repro.updates.order_replacement import minimize_rounds


SCHEMES = ("chronus", "or", "opt")


@dataclass(frozen=True)
class _TimingItem:
    """One (size, run) scheduler-timing measurement."""

    switch_count: int
    seed: int
    segments: int
    cutoff: float
    schemes: Sequence[str] = SCHEMES


@dataclass(frozen=True)
class _TimingResult:
    chronus_elapsed: float
    or_elapsed: float
    or_proven: bool
    opt_elapsed: float
    opt_proven: bool


def _time_one(item: _TimingItem) -> _TimingResult:
    """Worker: time the selected schedulers on one instance.

    Every run of a size is always measured (the serial loop short-circuits
    once a scheme blows the cutoff, but the aggregation below reproduces
    that outcome from the per-run proofs, so the reported numbers match).
    Deselected schemes report zero elapsed and a failed proof.
    """
    instance = segmented_instance(
        item.switch_count, seed=item.seed, segments=item.segments
    )
    chronus_elapsed = 0.0
    if "chronus" in item.schemes:
        started = time.monotonic()
        greedy_schedule(instance)
        chronus_elapsed = time.monotonic() - started
    or_elapsed, or_proven = 0.0, False
    if "or" in item.schemes:
        or_result = minimize_rounds(instance, time_budget=item.cutoff)
        or_elapsed, or_proven = or_result.elapsed, or_result.proven
    opt_elapsed, opt_proven = 0.0, False
    if "opt" in item.schemes:
        opt_result = optimal_schedule(instance, time_budget=item.cutoff)
        opt_elapsed, opt_proven = opt_result.elapsed, opt_result.proven
    return _TimingResult(
        chronus_elapsed=chronus_elapsed,
        or_elapsed=or_elapsed,
        or_proven=or_proven,
        opt_elapsed=opt_elapsed,
        opt_proven=opt_proven,
    )


@dataclass
class Fig10Result:
    switch_counts: List[int]
    seconds: Dict[str, List[Optional[float]]]  # None = exceeded the cutoff
    cutoff: float

    def render(self) -> str:
        schemes = [s for s in SCHEMES if s in self.seconds]
        rows = []
        for index, count in enumerate(self.switch_counts):
            row: List[object] = [count]
            for scheme in schemes:
                value = self.seconds[scheme][index]
                row.append(f">{self.cutoff:.0f} (cutoff)" if value is None else f"{value:.3f}")
            rows.append(row)
        return render_table(
            ["switches"] + [f"{scheme} (s)" for scheme in schemes],
            rows,
            title=f"Fig. 10 -- scheduler running time (cutoff {self.cutoff:.0f} s)",
        )


def run_fig10(
    switch_counts: Sequence[int] = (100, 250, 500, 1000, 2000, 4000),
    cutoff: float = 5.0,
    base_seed: int = 4,
    runs_per_size: int = 1,
    max_workers: int = 1,
    schemes: Sequence[str] = SCHEMES,
) -> Fig10Result:
    """Time the three schedulers per size, honouring a cutoff.

    The exact solvers (OR's branch and bound and OPT) receive ``cutoff`` as
    their anytime budget: exceeding it without a *proven* result counts as a
    cutoff, matching the paper's ">600 s" treatment.  The workload is the
    locally-rerouted (segmented reversal) distribution -- at the paper's
    1K-6K scale a full random permutation would make every scheduler's
    output linear in ``n``, contradicting the paper's ~15-time-unit updates
    (Fig. 11).

    ``max_workers > 1`` measures the (size, run) grid concurrently.  Each
    measurement still runs single-threaded inside its worker, but
    concurrent workers do contend for cores -- use parallel timing for the
    shape of the curves, serial for publishable absolute numbers.

    ``schemes`` restricts which schedulers run (subset of ``SCHEMES``);
    the paper-scale ``fig10-greedy`` preset uses ``("chronus",)`` to get
    the 6K-switch Chronus point without hours of exact-solver cutoffs.
    """
    unknown = set(schemes) - set(SCHEMES)
    if unknown:
        raise ValueError(f"unknown Fig. 10 schemes {sorted(unknown)!r}")
    items = [
        # Rerouted regions grow with the fabric: one detour on small
        # networks, several on large ones (keeps the exact solvers'
        # completing-then-cutoff shape of the paper's figure).
        _TimingItem(
            switch_count=count,
            seed=base_seed * 31 + count + run,
            segments=max(1, min(6, count // 250)),
            cutoff=cutoff,
            schemes=tuple(schemes),
        )
        for count in switch_counts
        for run in range(runs_per_size)
    ]
    runner = ParallelRunner(max_workers=max_workers, chunk_size=1)
    results = runner.map(_time_one, items)

    seconds: Dict[str, List[Optional[float]]] = {
        scheme: [] for scheme in SCHEMES if scheme in schemes
    }
    for offset in range(0, len(results), runs_per_size):
        per_size = results[offset : offset + runs_per_size]
        if "chronus" in seconds:
            chronus_total = sum(r.chronus_elapsed for r in per_size)
            seconds["chronus"].append(chronus_total / runs_per_size)
        if "or" in seconds:
            or_value: Optional[float] = None
            if all(r.or_proven for r in per_size):
                or_value = sum(r.or_elapsed for r in per_size) / runs_per_size
            seconds["or"].append(or_value)
        if "opt" in seconds:
            opt_value: Optional[float] = None
            if all(r.opt_proven for r in per_size):
                opt_value = sum(r.opt_elapsed for r in per_size) / runs_per_size
            seconds["opt"].append(opt_value)
    return Fig10Result(
        switch_counts=list(switch_counts), seconds=seconds, cutoff=cutoff
    )


def main() -> str:
    result = run_fig10()
    text = result.render()
    print(text)
    return text


if __name__ == "__main__":
    main()
