"""Fig. 10: scheduler running time vs. network size.

Paper: sizes 1K..6K; OR and OPT stay under 600 s up to ~2K switches but
blow past the 600-second cutoff beyond 4K (orders of magnitude slower),
while Chronus stays below 600 s even at 6K.  The *shape* -- Chronus
polynomial, OR/OPT exponential-with-cutoff -- is what matters; both the
sizes and the cutoff scale down proportionally here so the harness runs in
minutes (pass the paper's values to reproduce the original axes).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.timeseries import render_table
from repro.core.greedy import greedy_schedule
from repro.core.instance import segmented_instance
from repro.core.optimal import optimal_schedule
from repro.updates.order_replacement import minimize_rounds


@dataclass
class Fig10Result:
    switch_counts: List[int]
    seconds: Dict[str, List[Optional[float]]]  # None = exceeded the cutoff
    cutoff: float

    def render(self) -> str:
        rows = []
        for index, count in enumerate(self.switch_counts):
            row: List[object] = [count]
            for scheme in ("chronus", "or", "opt"):
                value = self.seconds[scheme][index]
                row.append(f">{self.cutoff:.0f} (cutoff)" if value is None else f"{value:.3f}")
            rows.append(row)
        return render_table(
            ["switches", "chronus (s)", "or (s)", "opt (s)"],
            rows,
            title=f"Fig. 10 -- scheduler running time (cutoff {self.cutoff:.0f} s)",
        )


def run_fig10(
    switch_counts: Sequence[int] = (100, 250, 500, 1000, 2000, 4000),
    cutoff: float = 5.0,
    base_seed: int = 4,
    runs_per_size: int = 1,
) -> Fig10Result:
    """Time the three schedulers per size, honouring a cutoff.

    The exact solvers (OR's branch and bound and OPT) receive ``cutoff`` as
    their anytime budget: exceeding it without a *proven* result counts as a
    cutoff, matching the paper's ">600 s" treatment.  The workload is the
    locally-rerouted (segmented reversal) distribution -- at the paper's
    1K-6K scale a full random permutation would make every scheduler's
    output linear in ``n``, contradicting the paper's ~15-time-unit updates
    (Fig. 11).
    """
    seconds: Dict[str, List[Optional[float]]] = {"chronus": [], "or": [], "opt": []}
    for count in switch_counts:
        chronus_total = 0.0
        or_value: Optional[float] = 0.0
        opt_value: Optional[float] = 0.0
        for run in range(runs_per_size):
            # Rerouted regions grow with the fabric: one detour on small
            # networks, several on large ones (keeps the exact solvers'
            # completing-then-cutoff shape of the paper's figure).
            instance = segmented_instance(
                count,
                seed=base_seed * 31 + count + run,
                segments=max(1, min(6, count // 250)),
            )

            started = time.monotonic()
            greedy_schedule(instance)
            chronus_total += time.monotonic() - started

            if or_value is not None:
                result = minimize_rounds(instance, time_budget=cutoff)
                or_value = None if not result.proven else or_value + result.elapsed

            if opt_value is not None:
                opt = optimal_schedule(instance, time_budget=cutoff)
                opt_value = None if not opt.proven else opt_value + opt.elapsed
        seconds["chronus"].append(chronus_total / runs_per_size)
        seconds["or"].append(None if or_value is None else or_value / runs_per_size)
        seconds["opt"].append(None if opt_value is None else opt_value / runs_per_size)
    return Fig10Result(
        switch_counts=list(switch_counts), seconds=seconds, cutoff=cutoff
    )


def main() -> str:
    result = run_fig10()
    text = result.render()
    print(text)
    return text


if __name__ == "__main__":
    main()
