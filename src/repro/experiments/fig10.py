"""Fig. 10: scheduler running time vs. network size.

Paper: sizes 1K..6K; OR and OPT stay under 600 s up to ~2K switches but
blow past the 600-second cutoff beyond 4K (orders of magnitude slower),
while Chronus stays below 600 s even at 6K.  The *shape* -- Chronus
polynomial, OR/OPT exponential-with-cutoff -- is what matters; both the
sizes and the cutoff scale down proportionally here so the harness runs in
minutes (pass the paper's values to reproduce the original axes).

Pipeline scenarios ``fig10`` (all three schedulers) and ``fig10-greedy``
(Chronus alone at the paper's 1K-6K sizes): one record per (size, run)
timing measurement; the cutoff aggregation reads records only.  Timing
records are wall-clock measurements, so re-running never reproduces them
byte-for-byte -- resume, however, preserves completed records verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.timeseries import render_table
from repro.core.instance import segmented_instance
from repro.pipeline.context import RunContext, WorkerContext
from repro.pipeline.runner import run_in_memory
from repro.pipeline.scenario import Scenario, register
from repro.updates.registry import DEFAULT_SCHEMES, get_planner, planners_for


#: The legacy record columns (``*_elapsed`` / ``*_proven``) are always
#: emitted for this trio so stored runs resume cleanly; additional
#: registered schemes add their own columns when selected.
SCHEMES = DEFAULT_SCHEMES


@dataclass(frozen=True)
class _TimingItem:
    """One (size, run) scheduler-timing measurement."""

    switch_count: int
    seed: int
    segments: int
    cutoff: float
    schemes: Sequence[str] = SCHEMES


def _record_schemes(selected: Sequence[str]) -> List[str]:
    """Scheme column order: the legacy trio first, then extra selections."""
    return list(dict.fromkeys((*SCHEMES, *selected)))


def _time_one(item: _TimingItem) -> Dict[str, object]:
    """Worker: time the selected schedulers on one instance.

    Every run of a size is always measured (the serial loop short-circuits
    once a scheme blows the cutoff, but the aggregation below reproduces
    that outcome from the per-run proofs, so the reported numbers match).
    Deselected schemes report zero elapsed and a failed proof.  Each
    planner's :meth:`~repro.updates.registry.Planner.timed_run` decides
    its measurement: exact searches take the cutoff as an anytime budget
    and report their own elapsed/proven pair, heuristics are wall-clocked.
    """
    instance = segmented_instance(
        item.switch_count, seed=item.seed, segments=item.segments
    )
    fields: Dict[str, object] = {}
    for name in _record_schemes(item.schemes):
        planner = get_planner(name)
        if name in item.schemes:
            elapsed, proven = planner.timed_run(instance, item.cutoff)
        else:
            elapsed, proven = 0.0, False
        fields[f"{name}_elapsed"] = elapsed
        if planner.exact:
            fields[f"{name}_proven"] = proven
    return fields


@dataclass
class Fig10Result:
    switch_counts: List[int]
    seconds: Dict[str, List[Optional[float]]]  # None = exceeded the cutoff
    cutoff: float

    def render(self) -> str:
        schemes = list(self.seconds)
        rows = []
        for index, count in enumerate(self.switch_counts):
            row: List[object] = [count]
            for scheme in schemes:
                value = self.seconds[scheme][index]
                row.append(f">{self.cutoff:.0f} (cutoff)" if value is None else f"{value:.3f}")
            rows.append(row)
        return render_table(
            ["switches"] + [f"{scheme} (s)" for scheme in schemes],
            rows,
            title=f"Fig. 10 -- scheduler running time (cutoff {self.cutoff:.0f} s)",
        )


def _segments_for(count: int) -> int:
    """Rerouted regions grow with the fabric: one detour on small networks,
    several on large ones (keeps the exact solvers' completing-then-cutoff
    shape of the paper's figure)."""
    return max(1, min(6, count // 250))


def _items(params: Mapping) -> List[Dict[str, object]]:
    planners_for(params["schemes"])  # fail fast on unregistered names
    base_seed = int(params["base_seed"])
    return [
        {
            "key": f"n{count}-r{run}",
            "switch_count": int(count),
            "run": run,
            "seed": base_seed * 31 + int(count) + run,
            "segments": _segments_for(int(count)),
        }
        for count in params["switch_counts"]
        for run in range(int(params["runs_per_size"]))
    ]


def _evaluate(item: Mapping, params: Mapping, ctx: WorkerContext) -> Dict[str, object]:
    fields = _time_one(
        _TimingItem(
            switch_count=int(item["switch_count"]),
            seed=int(item["seed"]),
            segments=int(item["segments"]),
            cutoff=float(params["cutoff"]),
            schemes=tuple(params["schemes"]),
        )
    )
    return {
        "key": item["key"],
        "switch_count": item["switch_count"],
        "run": item["run"],
        "seed": item["seed"],
        **fields,
    }


def _aggregate(records: Sequence[Mapping], params: Mapping) -> Fig10Result:
    schemes = tuple(params["schemes"])
    counts = [int(count) for count in params["switch_counts"]]
    seconds: Dict[str, List[Optional[float]]] = {
        scheme: [] for scheme in _record_schemes(schemes) if scheme in schemes
    }
    for count in counts:
        per_size = [r for r in records if int(r["switch_count"]) == count]
        runs = max(1, len(per_size))
        for scheme in seconds:
            if get_planner(scheme).exact:
                # Anytime search: the mean counts only when every run
                # finished with a proof within the cutoff.
                value: Optional[float] = None
                if per_size and all(r[f"{scheme}_proven"] for r in per_size):
                    value = sum(float(r[f"{scheme}_elapsed"]) for r in per_size) / runs
                seconds[scheme].append(value)
            else:
                total = sum(float(r[f"{scheme}_elapsed"]) for r in per_size)
                seconds[scheme].append(total / runs)
    return Fig10Result(
        switch_counts=counts, seconds=seconds, cutoff=float(params["cutoff"])
    )


_FIG10_DESCRIPTION = (
    "One timing record per (size, run); the exact solvers' anytime budgets "
    "receive the cutoff, and budget exhaustion without a proof renders as "
    "'>cutoff', matching the paper's >600 s treatment."
)

SCENARIO = register(
    Scenario(
        name="fig10",
        title="Scheduler running time vs. network size",
        paper="Fig. 10",
        description=_FIG10_DESCRIPTION,
        defaults={
            "switch_counts": (100, 250, 500, 1000, 2000, 4000),
            "cutoff": 5.0,
            "base_seed": 4,
            "runs_per_size": 1,
            "schemes": SCHEMES,
        },
        items=_items,
        evaluate=_evaluate,
        aggregate=_aggregate,
        paper_params={
            "switch_counts": (1000, 2000, 3000, 4000, 5000, 6000),
            "cutoff": 600.0,
            "runs_per_size": 3,
        },
    )
)

GREEDY_SCENARIO = register(
    Scenario(
        name="fig10-greedy",
        title="Fig. 10's Chronus curve alone (affordable at the paper's sizes)",
        paper="Fig. 10",
        description=(
            "The Chronus scheduler only -- minutes instead of hours at the "
            "paper's 1K-6K sizes; " + _FIG10_DESCRIPTION
        ),
        defaults={
            "switch_counts": (100, 250, 500, 1000, 2000, 4000),
            "cutoff": 5.0,
            "base_seed": 4,
            "runs_per_size": 1,
            "schemes": ("chronus",),
        },
        items=_items,
        evaluate=_evaluate,
        aggregate=_aggregate,
        paper_params={
            "switch_counts": (1000, 2000, 3000, 4000, 5000, 6000),
            "cutoff": 600.0,
            "runs_per_size": 3,
        },
    )
)


def run_fig10(
    switch_counts: Sequence[int] = (100, 250, 500, 1000, 2000, 4000),
    cutoff: float = 5.0,
    base_seed: int = 4,
    runs_per_size: int = 1,
    max_workers: int = 1,
    schemes: Sequence[str] = SCHEMES,
) -> Fig10Result:
    """Time the three schedulers per size, honouring a cutoff.

    The exact solvers (OR's branch and bound and OPT) receive ``cutoff`` as
    their anytime budget: exceeding it without a *proven* result counts as a
    cutoff, matching the paper's ">600 s" treatment.  The workload is the
    locally-rerouted (segmented reversal) distribution -- at the paper's
    1K-6K scale a full random permutation would make every scheduler's
    output linear in ``n``, contradicting the paper's ~15-time-unit updates
    (Fig. 11).

    ``max_workers > 1`` measures the (size, run) grid concurrently.  Each
    measurement still runs single-threaded inside its worker, but
    concurrent workers do contend for cores -- use parallel timing for the
    shape of the curves, serial for publishable absolute numbers.

    ``schemes`` restricts which schedulers run (any registered planner
    names); the paper-scale ``fig10-greedy`` preset uses ``("chronus",)``
    to get the 6K-switch Chronus point without hours of exact-solver
    cutoffs.
    """
    return run_in_memory(
        "fig10",
        overrides={
            "switch_counts": tuple(switch_counts),
            "cutoff": cutoff,
            "base_seed": base_seed,
            "runs_per_size": runs_per_size,
            "schemes": tuple(schemes),
        },
        ctx=RunContext(workers=max_workers),
    )


def main() -> str:
    result = run_fig10()
    text = result.render()
    print(text)
    return text


if __name__ == "__main__":
    main()
