"""Faults ablation: consistency and completion time vs. fault severity.

The paper evaluates Chronus over a well-behaved control plane; this
experiment asks what each scheme's guarantees are *worth* when that
assumption degrades.  A :class:`repro.faults.FaultPlan` (message loss and
duplication, switch apply-failures, crash-stop, stragglers, optional clock
drift) is scaled by a single severity knob and applied to seeded reroute
instances from the figures' ``mixed_instance`` workload; each scheme runs
through the resilient executor (:mod:`repro.controller.resilient`) with
retries, idempotent resends and a deadline-triggered rollback.

Consistency is judged by the independent oracle of :mod:`repro.validate`:

* a run that **completes** has its realised update times read back off the
  integer time grid (all latencies are whole time steps, as in the
  differential replay) and re-verified with :func:`verify_schedule` /
  :func:`verify_two_phase` -- a violation means the *realised* schedule
  broke Definition 2/3 even though every switch acknowledged;
* a run that **aborts** (retries exhausted, crash, deadline) is judged by
  the fluid plane itself: any black-holed volume or over-capacity link
  after the update started counts as a violation.

Every record also cross-checks oracle and plane: a clean verdict with a
dirty plane (drops or congestion the verifier missed) sets
``oracle_agrees = False`` and fails ``scripts/faults.py``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.controller import Controller
from repro.controller.channel import ConstantDelayModel, StepDelayModel
from repro.controller.resilient import (
    ResilientTrace,
    perform_resilient_two_phase,
    perform_resilient_update,
)
from repro.core.instance import UpdateInstance
from repro.core.schedule import UpdateSchedule
from repro.core.verdict import Verdict
from repro.experiments.sweep import mixed_instance, sweep_seed
from repro.faults import FaultPlan, FaultyChannel, severity_spec
from repro.simulator.dataplane import build_dataplane, install_config
from repro.simulator.engine import Simulator
from repro.updates.registry import ROUNDS, TWO_PHASE, get_planner, planners_for
from repro.validate import verify_schedule, verify_two_phase

#: Default ablation trio; any registered scheme (e.g. ``aug``) can join
#: via ``schemes=`` / ``--set schemes=``.
SCHEMES = ("chronus", "or", "tp")

#: Fault-plan seed separator so the plan's streams never mirror the
#: channel's latency stream (both descend from the instance seed).
_FAULT_STREAM = 0xFA17

#: Default severity grid of the ablation axis (0 = perfect network).
DEFAULT_SEVERITIES = (0.0, 0.25, 0.5, 1.0)


@dataclass(frozen=True)
class FaultRunRecord:
    """One scheme's outcome on one faulted instance.

    Attributes:
        scheme: The registered scheme name that produced this run.
        severity: Fault severity of this run.
        seed: The instance seed (``sweep_seed`` contract).
        completed: Every switch acknowledged and the update finished.
        aborted: The resilient executor gave up and rolled back.
        violated: Consistency was lost -- by the oracle's verdict when the
            run completed, by fluid evidence (drops/congestion) otherwise.
        verdict_ok: The oracle's judgement of the realised schedule
            (``None`` for aborted or off-grid runs, where no realised
            schedule exists on the integer grid).
        oracle_agrees: ``False`` when a clean verdict coexists with a dirty
            fluid plane -- the cross-check :mod:`scripts.faults` gates on.
            ``None`` when the verdict does not apply.
        completion_steps: Update duration in schedule steps (completed
            runs; abort runs report the time until rollback finished).
        retries: Total FlowMod resends across switches.
        rolled_back: Switches rolled back during abort.
        late: Scheduled FlowMods that arrived after their execution time.
        dropped/duplicated/apply_failures: The fault plan's message tally.
        crashed: Crash-stopped switches.
        off_grid: A realised apply missed the integer time grid (clock
            drift); the verdict is then computed on rounded times.
        fluid_clean: The fluid plane saw no drops and no over-capacity
            link after the update began.
        abort_reason: Why the run aborted, when it did.
    """

    scheme: str
    severity: float
    seed: int
    completed: bool
    aborted: bool
    violated: bool
    verdict_ok: Optional[bool]
    oracle_agrees: Optional[bool]
    completion_steps: Optional[float]
    retries: int
    rolled_back: int
    late: int
    dropped: int
    duplicated: int
    apply_failures: int
    crashed: int
    off_grid: bool
    fluid_clean: bool
    abort_reason: str = ""


@dataclass
class FaultsAblationResult:
    """All runs of one ablation sweep plus the aggregate curves."""

    severities: Tuple[float, ...]
    schemes: Tuple[str, ...]
    instances_per_point: int
    records: List[FaultRunRecord] = field(default_factory=list)

    def _select(self, scheme: str, severity: float) -> List[FaultRunRecord]:
        return [
            r for r in self.records if r.scheme == scheme and r.severity == severity
        ]

    def violation_rate(self, scheme: str, severity: float) -> float:
        """Fraction of runs (completed or not) that lost consistency."""
        runs = self._select(scheme, severity)
        if not runs:
            return 0.0
        return sum(r.violated for r in runs) / len(runs)

    def abort_rate(self, scheme: str, severity: float) -> float:
        runs = self._select(scheme, severity)
        if not runs:
            return 0.0
        return sum(r.aborted for r in runs) / len(runs)

    def mean_completion(self, scheme: str, severity: float) -> Optional[float]:
        """Mean completion time (steps) over the runs that completed."""
        steps = [
            r.completion_steps
            for r in self._select(scheme, severity)
            if r.completed and r.completion_steps is not None
        ]
        if not steps:
            return None
        return sum(steps) / len(steps)

    def mean_retries(self, scheme: str, severity: float) -> float:
        runs = self._select(scheme, severity)
        if not runs:
            return 0.0
        return sum(r.retries for r in runs) / len(runs)

    @property
    def oracle_disagreements(self) -> List[FaultRunRecord]:
        return [r for r in self.records if r.oracle_agrees is False]

    @property
    def oracle_ok(self) -> bool:
        """No run where the verdict and the fluid plane told different stories."""
        return not self.oracle_disagreements

    def render(self) -> str:
        lines = [
            "Faults ablation -- consistency vs. control-plane fault severity",
            f"({self.instances_per_point} instances/point; violation = lost "
            "consistency, judged by repro.validate on completed runs and by "
            "the fluid plane on aborted ones)",
            "",
            f"{'scheme':<8} {'severity':>8} {'violation%':>10} {'abort%':>7} "
            f"{'mean steps':>10} {'retries':>8}",
        ]
        for scheme in self.schemes:
            for severity in self.severities:
                completion = self.mean_completion(scheme, severity)
                lines.append(
                    f"{scheme:<8} {severity:>8.2f} "
                    f"{100 * self.violation_rate(scheme, severity):>9.1f}% "
                    f"{100 * self.abort_rate(scheme, severity):>6.1f}% "
                    f"{completion if completion is not None else float('nan'):>10.2f} "
                    f"{self.mean_retries(scheme, severity):>8.2f}"
                )
            lines.append("")
        if self.oracle_ok:
            lines.append("oracle cross-check: verdict and fluid plane agree on every run")
        else:
            lines.append(
                f"oracle cross-check: {len(self.oracle_disagreements)} "
                "DISAGREEMENT(S) -- clean verdict over a dirty plane:"
            )
            for r in self.oracle_disagreements:
                lines.append(
                    f"  {r.scheme} severity={r.severity:g} seed={r.seed}"
                )
        return "\n".join(lines)


def run_faults_ablation(
    severities: Sequence[float] = DEFAULT_SEVERITIES,
    instances_per_point: int = 5,
    switch_count: int = 8,
    base_seed: int = 7,
    schemes: Sequence[str] = SCHEMES,
    time_unit: float = 1.0,
    deadline_steps: int = 60,
    max_retries: int = 3,
    drift_bound: float = 0.0,
    or_node_budget: int = 20_000,
    aug_epsilon: float = 0.0,
    progress: Optional[Callable[[FaultRunRecord], None]] = None,
) -> FaultsAblationResult:
    """Sweep every scheme over every severity on seeded reroute instances.

    Args:
        severities: Fault-severity grid (0 disables all faults).
        instances_per_point: Seeded instances per (scheme, severity) cell;
            the same instances are reused across cells so curves are
            paired.
        switch_count: Network size of every instance.
        base_seed: Base of the ``sweep_seed`` contract.
        schemes: Registered scheme names (see
            :func:`repro.updates.registry.available_schemes`).
        time_unit: True seconds per schedule step.
        deadline_steps: Abort-and-roll-back deadline, in steps after the
            update starts.
        max_retries: FlowMod resends per switch before giving up.
        drift_bound: Clock-drift magnitude bound in seconds (0 keeps every
            realised apply on the integer grid, so the oracle is exact).
        or_node_budget: Branch-and-bound budget of OR's round minimiser.
        aug_epsilon: AUG's transient capacity headroom.
        progress: Called with each finished :class:`FaultRunRecord`.
    """
    planners_for(schemes)  # fail fast on unregistered names
    result = FaultsAblationResult(
        severities=tuple(severities),
        schemes=tuple(schemes),
        instances_per_point=instances_per_point,
    )
    for index in range(instances_per_point):
        seed = sweep_seed(base_seed, switch_count, index)
        instance = mixed_instance(switch_count, seed)
        plans = _plan_schemes(instance, schemes, or_node_budget, aug_epsilon)
        for severity in severities:
            for scheme in schemes:
                record = _run_one(
                    scheme,
                    instance,
                    plans[scheme],
                    severity=severity,
                    seed=seed,
                    time_unit=time_unit,
                    deadline_steps=deadline_steps,
                    max_retries=max_retries,
                    drift_bound=drift_bound,
                )
                result.records.append(record)
                if progress is not None:
                    progress(record)
    return result


def _plan_schemes(
    instance: UpdateInstance,
    schemes: Sequence[str],
    or_node_budget: int,
    aug_epsilon: float = 0.0,
) -> Dict[str, Optional[UpdateSchedule]]:
    """Plan each scheme once per instance (plans are severity-independent).

    Each planner's :meth:`~repro.updates.registry.Planner.fault_schedule`
    decides its nominal schedule; ``None`` means the scheme plans nothing
    up front (two-phase: install shadow rules, flip the ingress).
    """
    return {
        planner.name: planner.fault_schedule(
            instance, node_budget=or_node_budget, epsilon=aug_epsilon
        )
        for planner in planners_for(schemes)
    }


def _run_one(
    scheme: str,
    instance: UpdateInstance,
    schedule: Optional[UpdateSchedule],
    *,
    severity: float,
    seed: int,
    time_unit: float,
    deadline_steps: int,
    max_retries: int,
    drift_bound: float,
) -> FaultRunRecord:
    """Execute one scheme on one instance under one fault severity."""
    sim = Simulator()
    plane = build_dataplane(sim, instance.network, delay_scale=time_unit)
    install_config(plane, instance)

    warmup_steps = instance.old_path_delay + 2
    start_true = warmup_steps * time_unit
    deadline_true = start_true + deadline_steps * time_unit

    spec = severity_spec(
        severity,
        crash_window=(start_true, start_true + 0.75 * deadline_steps * time_unit),
        drift_bound=drift_bound,
    )
    fault_plan = FaultPlan(spec, seed=seed ^ _FAULT_STREAM)
    channel = FaultyChannel(
        sim,
        fault_plan,
        network_delay=ConstantDelayModel(0.0),
        install_delay=StepDelayModel(time_unit=time_unit, max_steps=1),
        rng=random.Random(seed),
    )
    controller = Controller(sim, channel)
    for switch in plane.switches.values():
        controller.manage(switch)
    fault_plan.wire(controller)
    plane.inject_flow(
        instance.source, "h1", str(instance.destination), rate=instance.demand
    )

    retry_timeout = 4 * time_unit
    trace_holder: List[ResilientTrace] = []
    planner = get_planner(scheme)
    if planner.executor == TWO_PHASE:
        trace_holder.append(
            perform_resilient_two_phase(
                controller, plane, instance, start_true + 3 * time_unit,
                retry_timeout=retry_timeout, max_retries=max_retries,
                deadline=deadline_true,
            )
        )
    elif planner.executor == ROUNDS:
        assert schedule is not None
        round_schedule = schedule
        sim.schedule_at(
            start_true,
            lambda: trace_holder.append(
                perform_resilient_update(
                    controller, plane, instance, round_schedule,
                    strategy="rounds", time_unit=time_unit,
                    retry_timeout=retry_timeout, max_retries=max_retries,
                    deadline=deadline_true,
                )
            ),
        )
    else:
        assert schedule is not None
        trace_holder.append(
            perform_resilient_update(
                controller, plane, instance, schedule,
                strategy="timed", time_unit=time_unit, start_at=start_true,
                retry_timeout=retry_timeout, max_retries=max_retries,
                deadline=deadline_true,
            )
        )

    # The deadline guarantees the run resolves (finish or abort) by
    # ``deadline_true``; the extra margin lets rollback messages land and
    # the fluid plane settle before it is judged.
    sim.run(until=deadline_true + 10 * time_unit)

    trace = trace_holder[0] if trace_holder else ResilientTrace()
    completed = trace.finished_at is not None and not trace.aborted
    t0 = schedule.t0 if schedule is not None else 0

    verdict: Optional[Verdict] = None
    off_grid = False
    if completed:
        if planner.two_phase:
            flip_step, off_grid = _to_step(
                trace.applied.get(instance.source), start_true, time_unit, t0
            )
            if flip_step is not None:
                verdict = verify_two_phase(instance, flip_step, t0=t0)
        else:
            realized, off_grid = _realized_schedule(
                trace, schedule, start_true, time_unit
            )
            if realized is not None:
                verdict = verify_schedule(instance, realized)

    drop_tolerance = 1e-6 * time_unit * max(1.0, instance.demand)
    dropped_volume = plane.total_dropped_volume()
    congested = any(
        link.peak_utilization(since=start_true) > link.capacity + 1e-6
        for link in plane.links.values()
    )
    fluid_clean = dropped_volume <= drop_tolerance and not congested

    if verdict is not None and not off_grid:
        violated = not verdict.ok
        # One-directional cross-check: a clean verdict must mean a clean
        # plane.  (A dirty verdict may leave no fluid trace -- e.g. a loop
        # the rollback resolved before much volume circulated.)
        oracle_agrees: Optional[bool] = (not verdict.ok) or fluid_clean
    else:
        violated = not fluid_clean
        oracle_agrees = None

    completion_steps: Optional[float] = None
    if trace.finished_at is not None:
        completion_steps = (trace.finished_at - start_true) / time_unit

    return FaultRunRecord(
        scheme=scheme,
        severity=severity,
        seed=seed,
        completed=completed,
        aborted=trace.aborted,
        violated=violated,
        verdict_ok=None if verdict is None or off_grid else verdict.ok,
        oracle_agrees=oracle_agrees,
        completion_steps=completion_steps,
        retries=trace.total_retries,
        rolled_back=len(trace.rolled_back),
        late=len(trace.late),
        dropped=fault_plan.stats.dropped,
        duplicated=fault_plan.stats.duplicated,
        apply_failures=fault_plan.stats.apply_failures,
        crashed=len(fault_plan.stats.crashed),
        off_grid=off_grid,
        fluid_clean=fluid_clean,
        abort_reason=trace.abort_reason,
    )


def _realized_schedule(
    trace: ResilientTrace,
    schedule: UpdateSchedule,
    start_true: float,
    time_unit: float,
) -> Tuple[Optional[UpdateSchedule], bool]:
    """Map the trace's apply times back onto integer schedule steps."""
    t0 = schedule.t0
    times: Dict = {}
    off_grid = False
    for node in schedule.times:
        step, off = _to_step(trace.applied.get(node), start_true, time_unit, t0)
        if step is None:
            return None, off_grid
        off_grid = off_grid or off
        times[node] = step
    return UpdateSchedule(times=times, start_time=min([t0, *times.values()])), off_grid


def _to_step(
    applied: Optional[float], start_true: float, time_unit: float, t0: int
) -> Tuple[Optional[int], bool]:
    """One apply time as an integer step; flags off-grid applies."""
    if applied is None:
        return None, False
    exact = (applied - start_true) / time_unit
    step = round(exact)
    return t0 + step, abs(exact - step) > 1e-6


# --- pipeline scenario -------------------------------------------------

def _scenario_items(params: Mapping) -> List[Dict[str, object]]:
    """One item per (instance index, severity, scheme), legacy loop order."""
    planners_for(params["schemes"])  # fail fast on unregistered names
    base_seed = int(params["base_seed"])
    switch_count = int(params["switch_count"])
    return [
        {
            "key": f"i{index}-sev{severity:g}-{scheme}",
            "index": index,
            "severity": float(severity),
            "scheme": scheme,
            "seed": sweep_seed(base_seed, switch_count, index),
        }
        for index in range(int(params["instances_per_point"]))
        for severity in params["severities"]
        for scheme in params["schemes"]
    ]


def _scenario_evaluate(item: Mapping, params: Mapping, ctx) -> Dict[str, object]:
    """Re-plan and execute one (instance, severity, scheme) cell.

    Plans are severity-independent and deterministic, so planning per cell
    (rather than once per instance, as the legacy loop does) produces
    records identical to the legacy runner's.
    """
    from dataclasses import asdict

    scheme = str(item["scheme"])
    instance = mixed_instance(int(params["switch_count"]), int(item["seed"]))
    plan = _plan_schemes(
        instance,
        [scheme],
        int(params["or_node_budget"]),
        float(params.get("aug_epsilon", 0.0) or 0.0),
    )[scheme]
    record = _run_one(
        scheme,
        instance,
        plan,
        severity=float(item["severity"]),
        seed=int(item["seed"]),
        time_unit=float(params["time_unit"]),
        deadline_steps=int(params["deadline_steps"]),
        max_retries=int(params["max_retries"]),
        drift_bound=float(params["drift_bound"]),
    )
    return {"key": item["key"], "index": item["index"], **asdict(record)}


def _scenario_aggregate(records: Sequence[Mapping], params: Mapping) -> FaultsAblationResult:
    result = FaultsAblationResult(
        severities=tuple(float(s) for s in params["severities"]),
        schemes=tuple(params["schemes"]),
        instances_per_point=int(params["instances_per_point"]),
    )
    field_names = {f.name for f in FaultRunRecord.__dataclass_fields__.values()}
    for record in records:
        result.records.append(
            FaultRunRecord(**{k: v for k, v in record.items() if k in field_names})
        )
    return result


def _register_scenario():
    from repro.pipeline.scenario import Scenario, register

    return register(
        Scenario(
            name="faults",
            title="Consistency and completion time vs. control-plane fault severity",
            paper="beyond the paper (fault ablation)",
            description=(
                "Every scheme runs seeded reroute instances under a "
                "deterministic fault plan through the resilient executor; "
                "each record is one judged run (violation, abort, retries, "
                "oracle cross-check)."
            ),
            defaults={
                "severities": DEFAULT_SEVERITIES,
                "instances_per_point": 5,
                "switch_count": 8,
                "base_seed": 7,
                "schemes": SCHEMES,
                "time_unit": 1.0,
                "deadline_steps": 60,
                "max_retries": 3,
                "drift_bound": 0.0,
                "or_node_budget": 20_000,
                "aug_epsilon": 0.0,
            },
            items=_scenario_items,
            evaluate=_scenario_evaluate,
            aggregate=_scenario_aggregate,
            paper_params={"instances_per_point": 30, "switch_count": 12},
        )
    )


SCENARIO = _register_scenario()


def main() -> str:
    result = run_faults_ablation()
    text = result.render()
    print(text)
    return text


if __name__ == "__main__":
    main()
