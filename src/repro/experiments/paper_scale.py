"""Paper-scale presets: run the evaluation at the original magnitudes.

The default harness is laptop-scaled (minutes).  This module re-runs every
figure with the paper's own parameters -- 500 instances per point, sizes up
to 6 000 switches, the 600-second cutoff -- which takes hours, exactly as
the original evaluation did.

Run:  python -m repro.experiments.paper_scale [fig7|fig8|fig9|fig10|fig10-greedy|fig11]

``fig10-greedy`` is the affordable slice of the Fig. 10 preset: only the
Chronus scheduler, at the full 1K-6K sizes, minutes instead of hours.

These presets are the ``paper_params`` of each registered scenario, so
``python -m repro.experiments run --paper <name>`` runs the same grids
while also streaming records into the artifact store (resumable -- which
matters at these magnitudes).  This module remains the no-store wrapper.
"""

from __future__ import annotations

import sys
import time

from repro.experiments import fig7, fig8, fig9, fig10, fig11

PAPER_SIZES_SMALL = (10, 20, 30, 40, 50, 60)
PAPER_SIZES_LARGE = (1000, 2000, 3000, 4000, 5000, 6000)
PAPER_INSTANCES = 500
PAPER_CUTOFF = 600.0


def run_fig7_paper():
    return fig7.run_fig7(
        switch_counts=PAPER_SIZES_SMALL,
        instances_per_size=PAPER_INSTANCES,
        opt_budget=2.0,
    )


def run_fig8_paper():
    return fig8.run_fig8(
        switch_counts=PAPER_SIZES_SMALL,
        instances_per_size=PAPER_INSTANCES,
    )


def run_fig9_paper():
    return fig9.run_fig9(
        switch_counts=(100, 200, 300, 400, 500, 600),
        instances_per_size=PAPER_INSTANCES,
    )


def run_fig10_paper():
    return fig10.run_fig10(
        switch_counts=PAPER_SIZES_LARGE,
        cutoff=PAPER_CUTOFF,
        runs_per_size=3,
    )


def run_fig10_greedy_paper():
    """Fig. 10's Chronus curve alone, at the paper's sizes and cutoff.

    Runs only the greedy scheduler over 1K-6K switches (3 runs per size),
    skipping the exact solvers whose cutoffs make the full ``fig10`` preset
    an hours-long affair.  With the incremental engine the 6 000-switch
    point completes in about a second -- far below the 600 s cutoff the
    paper reports Chronus staying under.
    """
    return fig10.run_fig10(
        switch_counts=PAPER_SIZES_LARGE,
        cutoff=PAPER_CUTOFF,
        runs_per_size=3,
        schemes=("chronus",),
    )


def run_fig11_paper():
    return fig11.run_fig11(
        switch_count=400,
        instances=PAPER_INSTANCES,
        opt_budget=10.0,
    )


RUNNERS = {
    "fig7": run_fig7_paper,
    "fig8": run_fig8_paper,
    "fig9": run_fig9_paper,
    "fig10": run_fig10_paper,
    "fig10-greedy": run_fig10_greedy_paper,
    "fig11": run_fig11_paper,
}


def main(argv=None) -> int:
    wanted = (argv or sys.argv[1:]) or list(RUNNERS)
    for name in wanted:
        runner = RUNNERS.get(name)
        if runner is None:
            print(f"unknown experiment {name!r}; choose from {sorted(RUNNERS)}")
            return 2
        print("=" * 72)
        print(f"{name} at paper scale (this can take a long time)")
        print("=" * 72)
        started = time.monotonic()
        result = runner()
        print(result.render())
        print(f"[{name} finished in {time.monotonic() - started:.0f} s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
