"""The process-global trace recorder: an in-memory tape of TraceRecords.

Ownership follows the fundloads kernel spec: **the pipeline runner, the
executors, and the exact-search engines emit trace records** (the
engines emit ``opt.search``/``or.search`` spans) -- nothing else talks
to sinks, and nothing on the planning side ever reads the tape.
The recorder is the kernel-owned middleman: instrumented call sites
append to its buffer, and whoever owns the sink (the
:class:`~repro.trace.session.TraceSession` in the parent process, the
chunk sidecar in pool workers) drains the buffer in execution order.

Like :data:`repro.perf.perf`, the recorder is process-local, disabled by
default, and near-free when disabled (one attribute check per call
site).  Pool workers inherit an *enabled* recorder -- trace id, open
span stack and all -- through ``fork``; the chunk hooks in
:mod:`repro.trace.worker` drain the inherited buffer before running so
parent records are never duplicated, then ship the worker's own records
back with the chunk results.

Span ids are **deterministic**: derived from the trace id, the parent
span and a per-``(parent, name)`` sequence number (see
:func:`repro.trace.record.derive_span_id`), never from time or
randomness.  A serial run and a pool run of the same run id therefore
produce identical trees -- the property the lockstep tests pin.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.trace.record import (
    EVENT,
    SPAN,
    TraceRecord,
    derive_span_id,
    utc_now_iso,
)


def _clean_attributes(attributes: Optional[Mapping[str, object]]) -> Dict[str, object]:
    """Drop ``None`` values; everything else must be JSON-serialisable."""
    if not attributes:
        return {}
    return {key: value for key, value in attributes.items() if value is not None}


class _NullSpanHandle:
    """Shared do-nothing handle for the disabled fast path."""

    __slots__ = ()
    span_id: Optional[str] = None

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def close(self, status: str = "ok") -> None:
        return None


_NULL_SPAN = _NullSpanHandle()


class SpanHandle:
    """One open span; closing it appends the span record to the tape."""

    __slots__ = (
        "_recorder",
        "span_id",
        "parent_id",
        "name",
        "attributes",
        "_start_iso",
        "_started",
        "_closed",
    )

    def __init__(
        self,
        recorder: "TraceRecorder",
        span_id: str,
        parent_id: Optional[str],
        name: str,
        attributes: Dict[str, object],
    ) -> None:
        self._recorder = recorder
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attributes = attributes
        self._start_iso = utc_now_iso()
        self._started = time.perf_counter()
        self._closed = False

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(self, exc_type, *exc) -> bool:
        self.close(status="error" if exc_type is not None else "ok")
        return False

    def close(self, status: str = "ok") -> None:
        if self._closed:
            return
        self._closed = True
        recorder = self._recorder
        if recorder._stack and recorder._stack[-1] == self.span_id:
            recorder._stack.pop()
        elapsed_ms = (time.perf_counter() - self._started) * 1000.0
        recorder._records.append(
            TraceRecord(
                kind=SPAN,
                trace_id=recorder.trace_id,
                span_id=self.span_id,
                parent_id=self.parent_id,
                name=self.name,
                scenario=recorder.scenario,
                start_time=self._start_iso,
                end_time=utc_now_iso(),
                duration_ms=round(elapsed_ms, 3),
                status=status,
                attributes=self.attributes,
            )
        )


class TraceRecorder:
    """The per-process tape plus the dynamic span stack.

    All state is process-local and single-threaded by design (the
    schedulers are single-threaded; the pool parallelism is process
    level, reconciled by the chunk hooks).
    """

    __slots__ = ("enabled", "trace_id", "scenario", "_records", "_stack", "_seq")

    def __init__(self) -> None:
        self.enabled = False
        self.trace_id = ""
        self.scenario = ""
        self._records: List[TraceRecord] = []
        self._stack: List[str] = []
        self._seq: Dict[Tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def configure(self, trace_id: str, scenario: str) -> None:
        """Start recording one trace (clears any previous tape)."""
        self.trace_id = trace_id
        self.scenario = scenario
        self._records = []
        self._stack = []
        self._seq = {}
        self.enabled = True

    def deactivate(self) -> None:
        """Stop recording and drop all state."""
        self.enabled = False
        self.trace_id = ""
        self.scenario = ""
        self._records = []
        self._stack = []
        self._seq = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def current_span_id(self) -> Optional[str]:
        return self._stack[-1] if self._stack else None

    def _next_id(self, parent_id: Optional[str], name: str) -> str:
        key = (parent_id or "", name)
        seq = self._seq.get(key, 0)
        self._seq[key] = seq + 1
        return derive_span_id(self.trace_id, parent_id, name, seq)

    def span(self, name: str, attributes: Optional[Mapping[str, object]] = None):
        """Open a span under the current one; a context manager."""
        if not self.enabled:
            return _NULL_SPAN
        parent_id = self.current_span_id()
        span_id = self._next_id(parent_id, name)
        handle = SpanHandle(
            self, span_id, parent_id, name, _clean_attributes(attributes)
        )
        self._stack.append(span_id)
        return handle

    def event(self, name: str, attributes: Optional[Mapping[str, object]] = None) -> None:
        """Record a point event on the current span (no-op when disabled)."""
        if not self.enabled:
            return
        owner = self.current_span_id()
        event_id = self._next_id(owner, f"event:{name}")
        self._records.append(
            TraceRecord(
                kind=EVENT,
                trace_id=self.trace_id,
                span_id=event_id,
                parent_id=owner,
                name=name,
                scenario=self.scenario,
                start_time=utc_now_iso(),
                attributes=_clean_attributes(attributes),
            )
        )

    def perf_spans(self, delta: Mapping[str, Mapping], strip_prefix: str = "") -> None:
        """Stream one item's :mod:`repro.perf` delta as aggregate spans.

        ``delta`` is a ``PerfRegistry.snapshot()``-shaped dict holding
        only the item's contribution.  Every span path becomes one
        aggregate span (attributes ``calls``/``seconds``, duration =
        total seconds) parented under its nearest recorded prefix, or
        the current span when none; counters become ``counter:<name>``
        events on the current span.
        """
        if not self.enabled:
            return
        owner = self.current_span_id()
        spans: Mapping[str, Mapping] = delta.get("spans", {})  # type: ignore[assignment]
        ids: Dict[str, str] = {}
        for path in sorted(spans):
            stat = spans[path]
            rel = path[len(strip_prefix):] if strip_prefix and path.startswith(strip_prefix) else path
            parent_rel = rel
            parent_id = owner
            while "." in parent_rel:
                parent_rel = parent_rel.rsplit(".", 1)[0]
                if parent_rel in ids:
                    parent_id = ids[parent_rel]
                    break
            span_id = self._next_id(parent_id, rel)
            ids[rel] = span_id
            seconds = float(stat["seconds"])
            self._records.append(
                TraceRecord(
                    kind=SPAN,
                    trace_id=self.trace_id,
                    span_id=span_id,
                    parent_id=parent_id,
                    name=rel,
                    scenario=self.scenario,
                    start_time=utc_now_iso(),
                    duration_ms=round(seconds * 1000.0, 3),
                    attributes={
                        "source": "perf",
                        "calls": int(stat["calls"]),
                        "seconds": seconds,
                    },
                )
            )
        counters: Mapping[str, int] = delta.get("counters", {})  # type: ignore[assignment]
        for counter in sorted(counters):
            self.event(
                f"counter:{counter}",
                {"source": "perf", "value": int(counters[counter])},
            )

    # ------------------------------------------------------------------
    # tape transfer (sink flushes and pool-worker merges)
    # ------------------------------------------------------------------
    def drain(self) -> List[TraceRecord]:
        """Hand over (and clear) the buffered records; keeps the stack."""
        records = self._records
        self._records = []
        return records

    def absorb(self, records: Iterable[TraceRecord]) -> None:
        """Append records drained from a pool worker, in arrival order."""
        self._records.extend(records)


#: The process-wide recorder every instrumented module shares.
recorder = TraceRecorder()


def trace_event(name: str, **attributes: object) -> None:
    """Record an event on the current span -- the executors' one-liner.

    Free when tracing is off (a single attribute check); the executors
    call this for per-switch evidence (``apply``, ``late``, ``retry``)
    without ever touching a sink.
    """
    if not recorder.enabled:
        return
    recorder.event(name, attributes)


def perf_delta(before: Mapping[str, Mapping], after: Mapping[str, Mapping]) -> Dict[str, Dict]:
    """The spans/counters ``after`` adds over ``before`` (snapshot shape)."""
    spans: Dict[str, Dict[str, float]] = {}
    before_spans: Mapping[str, Mapping] = before.get("spans", {})  # type: ignore[assignment]
    for path, stat in after.get("spans", {}).items():  # type: ignore[union-attr]
        prior = before_spans.get(path, {"calls": 0, "seconds": 0.0})
        calls = int(stat["calls"]) - int(prior["calls"])
        seconds = float(stat["seconds"]) - float(prior["seconds"])
        if calls > 0 or seconds > 1e-9:
            spans[path] = {"calls": calls, "seconds": round(max(seconds, 0.0), 6)}
    counters: Dict[str, int] = {}
    before_counters: Mapping[str, int] = before.get("counters", {})  # type: ignore[assignment]
    for name, value in after.get("counters", {}).items():  # type: ignore[union-attr]
        gained = int(value) - int(before_counters.get(name, 0))
        if gained > 0:
            counters[name] = gained
    return {"spans": spans, "counters": counters}


def worker_attributes() -> Dict[str, object]:
    """The process-identity attributes stamped on item spans."""
    return {"pid": os.getpid()}
