"""The trace query CLI: ``python -m repro.trace``.

Subcommands over a trace file (JSONL or SQLite, auto-detected)::

    python -m repro.trace list                       # traces in the file
    python -m repro.trace show [TRACE_ID]            # tree view
    python -m repro.trace spans --name greedy --json # filtered records
    python -m repro.trace spans --switch s3          # per-switch evidence
    python -m repro.trace slowest -n 15              # slowest-span report

Without ``--path`` the newest ``trace.db``/``trace.jsonl`` under the
runs root (``$REPRO_RUNS_DIR`` or ``./runs``) is used, i.e. the trace of
the most recent ``--trace sqlite``/``--trace jsonl`` run.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.trace.query import (
    TraceQueryError,
    default_trace_path,
    filter_records,
    read_trace,
    render_slowest,
    render_traces,
    render_tree,
)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--path",
        default=None,
        metavar="FILE",
        help="trace file, JSONL or SQLite (default: newest under the runs root)",
    )
    parser.add_argument(
        "--runs-dir",
        default=None,
        metavar="DIR",
        help="runs root searched when --path is omitted "
        "(default: $REPRO_RUNS_DIR or ./runs)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Query the trace a scenario run emitted.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    listing = sub.add_parser("list", help="one line per trace in the file")
    _add_common(listing)

    show = sub.add_parser("show", help="tree view of one trace")
    show.add_argument(
        "trace_id", nargs="?", default=None,
        help="trace id (prefix ok; default: every trace in the file)",
    )
    _add_common(show)

    spans = sub.add_parser("spans", help="filtered flat listing")
    spans.add_argument("--scenario", default=None, help="exact scenario name")
    spans.add_argument("--name", default=None, help="substring of the span/event name")
    spans.add_argument(
        "--switch", default=None, help="switch attribute match (per-switch evidence)"
    )
    spans.add_argument(
        "--kind", default=None, choices=("span", "event"), help="record kind"
    )
    spans.add_argument("--trace-id", default=None, help="trace id (prefix ok)")
    spans.add_argument(
        "--json", action="store_true", help="emit records as JSON lines"
    )
    _add_common(spans)

    slowest = sub.add_parser("slowest", help="slowest-span report")
    slowest.add_argument("-n", type=int, default=10, help="rows (default 10)")
    slowest.add_argument("--scenario", default=None, help="exact scenario name")
    _add_common(slowest)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        path = args.path or default_trace_path(args.runs_dir)
        records = read_trace(path)
    except TraceQueryError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.command == "list":
        print(render_traces(records))
        return 0

    if args.command == "show":
        if args.trace_id:
            records = filter_records(records, trace_id=args.trace_id)
            if not records:
                print(f"no records of trace {args.trace_id!r} in {path}", file=sys.stderr)
                return 2
        print(render_tree(records))
        return 0

    if args.command == "spans":
        records = filter_records(
            records,
            trace_id=args.trace_id,
            scenario=args.scenario,
            name=args.name,
            switch=args.switch,
            kind=args.kind,
        )
        if args.json:
            from repro.trace.record import record_to_line

            for record in records:
                print(record_to_line(record))
        else:
            print(render_tree(records))
        return 0

    # slowest
    if args.scenario:
        records = filter_records(records, scenario=args.scenario)
    print(render_slowest(records, limit=args.n))
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # Piped into `head` etc.; suppress the useless traceback.
        sys.stderr.close()
        raise SystemExit(0)
