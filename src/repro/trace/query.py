"""Read traces back: loading, filtering and the report renderers.

Every function here is sink-agnostic: :func:`read_trace` sniffs whether
a path is a SQLite database or a JSONL file and returns the same
``List[TraceRecord]`` either way (pinned by the round-trip tests), and
the renderers operate on records only.  The CLI in
:mod:`repro.trace.__main__` is a thin argparse shell over this module.
"""

from __future__ import annotations

import json
import os
import sqlite3
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.trace.record import TraceRecord, record_from_line

_SQLITE_MAGIC = b"SQLite format 3\x00"


class TraceQueryError(RuntimeError):
    """A trace file that cannot be located or read."""


def is_sqlite_file(path) -> bool:
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            return handle.read(len(_SQLITE_MAGIC)) == _SQLITE_MAGIC
    except OSError:
        return False


def read_trace(path) -> List[TraceRecord]:
    """All records of one trace file (JSONL or SQLite), emission order."""
    path = Path(path)
    if not path.exists():
        raise TraceQueryError(f"no trace file at {path}")
    if is_sqlite_file(path):
        return _read_sqlite(path)
    return _read_jsonl(path)


def _read_jsonl(path: Path) -> List[TraceRecord]:
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(record_from_line(line))
    return records


def _read_sqlite(path: Path) -> List[TraceRecord]:
    conn = sqlite3.connect(str(path))
    try:
        rows = conn.execute(
            "SELECT kind, trace_id, span_id, parent_id, name, scenario, "
            "start_time, end_time, duration_ms, status, attributes "
            "FROM records ORDER BY seq"
        ).fetchall()
    finally:
        conn.close()
    return [
        TraceRecord(
            kind=row[0],
            trace_id=row[1],
            span_id=row[2],
            parent_id=row[3],
            name=row[4],
            scenario=row[5],
            start_time=row[6],
            end_time=row[7],
            duration_ms=row[8],
            status=row[9],
            attributes=json.loads(row[10]),
        )
        for row in rows
    ]


def default_trace_path(runs_root: Optional[str] = None) -> Path:
    """The newest ``trace.db`` / ``trace.jsonl`` under the runs root."""
    root = Path(
        runs_root
        if runs_root is not None
        else os.environ.get("REPRO_RUNS_DIR", "runs")
    )
    candidates = sorted(
        list(root.glob("*/*/trace.db")) + list(root.glob("*/*/trace.jsonl")),
        key=lambda p: p.stat().st_mtime,
    )
    if not candidates:
        raise TraceQueryError(
            f"no trace.db or trace.jsonl under {root}; run a scenario with "
            f"--trace sqlite (or jsonl), or pass --path explicitly"
        )
    return candidates[-1]


def filter_records(
    records: Sequence[TraceRecord],
    trace_id: Optional[str] = None,
    scenario: Optional[str] = None,
    name: Optional[str] = None,
    switch: Optional[str] = None,
    kind: Optional[str] = None,
) -> List[TraceRecord]:
    """Subset by trace, scenario, name substring, switch attribute, kind."""
    out = []
    for record in records:
        if trace_id is not None and not record.trace_id.startswith(trace_id):
            continue
        if scenario is not None and record.scenario != scenario:
            continue
        if name is not None and name not in record.name:
            continue
        if switch is not None and str(record.attributes.get("switch")) != switch:
            continue
        if kind is not None and record.kind != kind:
            continue
        out.append(record)
    return out


# ----------------------------------------------------------------------
# renderers
# ----------------------------------------------------------------------

def _span_line(record: TraceRecord, depth: int) -> str:
    duration = (
        f" {record.duration_ms:.1f}ms" if record.duration_ms is not None else ""
    )
    status = "" if record.status == "ok" else f" !{record.status}"
    extras = []
    for key in ("key", "switch", "calls", "value", "run_id"):
        if key in record.attributes:
            extras.append(f"{key}={record.attributes[key]}")
    tag = "" if record.kind == "span" else "* "
    extra = f"  [{' '.join(extras)}]" if extras else ""
    return f"{'  ' * depth}{tag}{record.name}{duration}{status}{extra}"


def render_tree(records: Sequence[TraceRecord]) -> str:
    """Indent records under their parent spans, one trace after another."""
    by_parent: Dict[Optional[str], List[TraceRecord]] = {}
    span_ids = {r.span_id for r in records}
    for record in records:
        parent = record.parent_id if record.parent_id in span_ids else None
        by_parent.setdefault(parent, []).append(record)

    lines: List[str] = []

    def emit(record: TraceRecord, depth: int) -> None:
        lines.append(_span_line(record, depth))
        for child in by_parent.get(record.span_id, ()):  # emission order
            emit(child, depth + 1)

    for root in by_parent.get(None, ()):  # orphans render at the top level
        emit(root, 0)
    return "\n".join(lines) if lines else "(no records)"


def slowest_spans(records: Sequence[TraceRecord], limit: int = 10) -> List[TraceRecord]:
    spans = [r for r in records if r.kind == "span" and r.duration_ms is not None]
    spans.sort(key=lambda r: (-r.duration_ms, r.name))  # type: ignore[operator]
    return spans[:limit]


def render_slowest(records: Sequence[TraceRecord], limit: int = 10) -> str:
    rows = slowest_spans(records, limit)
    if not rows:
        return "(no spans with durations)"
    name_width = max(len(r.name) for r in rows)
    lines = [f"{'span':<{name_width}}  {'ms':>10}  {'calls':>6}  scenario"]
    for record in rows:
        calls = record.attributes.get("calls", 1)
        lines.append(
            f"{record.name:<{name_width}}  {record.duration_ms:>10.1f}  "
            f"{calls!s:>6}  {record.scenario}"
        )
    return "\n".join(lines)


def render_traces(records: Sequence[TraceRecord]) -> str:
    """One line per trace id: scenario, run id, span/event counts."""
    traces: Dict[str, Dict[str, object]] = {}
    for record in records:
        info = traces.setdefault(
            record.trace_id,
            {"scenario": record.scenario, "spans": 0, "events": 0,
             "run_id": "?", "start": record.start_time},
        )
        info["spans" if record.kind == "span" else "events"] += 1  # type: ignore[operator]
        if record.name == "run" and "run_id" in record.attributes:
            info["run_id"] = record.attributes["run_id"]
        info["start"] = min(str(info["start"]), record.start_time)
    if not traces:
        return "(no traces)"
    lines = []
    for trace_id, info in sorted(traces.items(), key=lambda kv: str(kv[1]["start"])):
        lines.append(
            f"{trace_id}  {info['scenario']:<12} run={info['run_id']}  "
            f"{info['spans']} span(s) {info['events']} event(s)  "
            f"since {info['start']}"
        )
    return "\n".join(lines)
