"""TraceSession: one run's binding of recorder, trace id and sink.

The pipeline executor owns the session: ``begin`` configures the
process-global recorder (and turns the perf registry on, since perf
spans are one of the trace's three unified views), ``flush`` drains the
tape into the sink after every checkpointed batch, and ``finish``
closes the root span, flushes the remainder and restores prior state.

The trace id is :func:`~repro.trace.record.derive_trace_id` of the
``(scenario, run_id)`` pair, so resuming an interrupted run appends to
the same trace and a pool run is id-identical to a serial one.
"""

from __future__ import annotations

import os
from typing import Mapping, Optional

from repro.perf import perf
from repro.trace.record import derive_trace_id
from repro.trace.recorder import recorder
from repro.trace.sinks import TraceSink


class TraceSession:
    """Lifecycle manager for one traced run."""

    def __init__(
        self,
        sink: TraceSink,
        scenario: str,
        run_id: str,
        trace_id: Optional[str] = None,
    ) -> None:
        self.sink = sink
        self.scenario = scenario
        self.run_id = run_id
        self.trace_id = trace_id or derive_trace_id(scenario, run_id)
        self._root = None
        self._perf_was_enabled = False
        self._active = False

    @property
    def sink_path(self) -> Optional[str]:
        path = getattr(self.sink, "path", None)
        return str(path) if path is not None else None

    def begin(self, params: Optional[Mapping[str, object]] = None) -> None:
        """Configure the recorder and open the run root span."""
        self._perf_was_enabled = perf.enabled
        perf.enable()
        recorder.configure(self.trace_id, self.scenario)
        attributes = {
            "run_id": self.run_id,
            "scenario": self.scenario,
            "pid": os.getpid(),
        }
        if params:
            attributes["params"] = {
                key: value
                for key, value in sorted(params.items())
                if isinstance(value, (int, float, str, bool))
            }
        self._root = recorder.span("run", attributes)
        self._root.__enter__()
        self._active = True

    def flush(self) -> None:
        """Drain buffered records (own and absorbed) into the sink."""
        if not self._active:
            return
        for record in recorder.drain():
            self.sink.emit(record)

    def finish(self, status: str = "ok") -> None:
        """Close the root span, flush everything, release the recorder."""
        if not self._active:
            return
        self._active = False
        if self._root is not None:
            self._root.close(status)
            self._root = None
        for record in recorder.drain():
            self.sink.emit(record)
        recorder.deactivate()
        if not self._perf_was_enabled:
            perf.disable()
        self.sink.close()
