"""``repro.trace``: the unified observability layer (spans, events, sinks).

Before this package the harness had three disjoint views of one run:
:mod:`repro.perf` counters/spans, the pipeline's ``records.jsonl`` and
the executors' :class:`~repro.controller.executor.ExecutionTrace`.
They now meet on a single OTel-shaped record stream
(:class:`TraceRecord`), produced by the **pipeline runner and the
executors only** and consumed through a pluggable :class:`TraceSink`
(console / JSONL / SQLite):

* the runner opens a ``run`` root span and one ``item:<key>`` span per
  evaluated item (attributes: key, seed, pid);
* each item's :mod:`repro.perf` delta streams as aggregate child spans
  and ``counter:*`` events;
* the executors' per-switch ``apply`` / ``late`` / retry evidence
  lands as span events (:func:`trace_event`);
* pipeline records gain a ``trace`` field linking them to their span --
  only when a sink is enabled, so untraced records stay byte-identical.

Tracing is observability-only: nothing on the planning side reads it.
Pool workers buffer records in the process-global :data:`recorder` and
ship them back with their chunk results (see :mod:`repro.trace.worker`),
so sinks only ever run in the parent process.

Quick tour::

    python -m repro.experiments run sweep --workers 2 --trace sqlite
    python -m repro.trace show                # tree view of the run
    python -m repro.trace spans --switch s3   # one switch's evidence
    python -m repro.trace slowest -n 15       # where the time went
"""

from repro.trace.record import TraceRecord, derive_trace_id, utc_now_iso
from repro.trace.recorder import TraceRecorder, recorder, trace_event
from repro.trace.session import TraceSession
from repro.trace.sinks import (
    ConsoleSink,
    JsonlSink,
    SqliteSink,
    TraceSink,
    open_sink,
)
from repro.trace.query import read_trace

__all__ = [
    "ConsoleSink",
    "JsonlSink",
    "SqliteSink",
    "TraceRecord",
    "TraceRecorder",
    "TraceSession",
    "TraceSink",
    "derive_trace_id",
    "open_sink",
    "read_trace",
    "recorder",
    "trace_event",
    "utc_now_iso",
]
