"""The one trace record schema every sink and query shares.

OTel-shaped on purpose: ``trace_id`` / ``span_id`` / ``parent_id`` /
``attributes`` map one-to-one onto an OpenTelemetry span (an OTLP
exporter is a thin adapter over :class:`TraceRecord`), but the schema
stays plain data -- a frozen dataclass round-trippable through JSON --
so the JSONL and SQLite sinks, the pool-worker pickle path and the
query CLI all speak the same language.

Determinism contract: every *identity* field (ids, names, parent links,
attributes apart from ``pid``) is derived from the run's configuration
alone, so a serial run and a pool run of the same ``(scenario,
run_id)`` produce records whose :meth:`TraceRecord.stable_view` are
identical.  Only wall-clock fields (``start_time``, ``end_time``,
``duration_ms``, the ``seconds`` attribute of perf-derived spans) and
the recording ``pid`` vary between runs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from datetime import datetime, timezone
from typing import Dict, Mapping, Optional

#: Fields that vary run-to-run (wall clock, process identity); everything
#: else is deterministic given the run configuration.
VOLATILE_FIELDS = ("start_time", "end_time", "duration_ms")
VOLATILE_ATTRIBUTES = ("pid", "seconds")

SPAN = "span"
EVENT = "event"


def utc_now_iso() -> str:
    """Timezone-aware UTC ISO-8601, the only timestamp format traces use."""
    return datetime.now(timezone.utc).isoformat(timespec="microseconds")


def derive_trace_id(scenario: str, run_id: str) -> str:
    """Deterministic 32-hex trace id of one ``(scenario, run_id)`` run.

    Resuming a run therefore appends to the *same* trace, and a serial
    and a pool run of the same run id carry identical ids throughout.
    """
    digest = hashlib.sha256(f"{scenario}/{run_id}".encode("utf-8"))
    return digest.hexdigest()[:32]


def derive_span_id(trace_id: str, parent_id: Optional[str], name: str, seq: int) -> str:
    """Deterministic 16-hex span id: position in the trace tree, not time."""
    payload = f"{trace_id}:{parent_id or ''}:{name}:{seq}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class TraceRecord:
    """One span or span event.

    Attributes:
        kind: ``"span"`` (has a duration) or ``"event"`` (a point on its
            parent span's timeline, e.g. one switch's rule apply).
        trace_id: The run's trace (see :func:`derive_trace_id`).
        span_id: This record's id (events get their own id too).
        parent_id: Enclosing span, ``None`` for the run root.
        name: Span path (``"run"``, ``"item:n10-i0"``, ``"greedy.select"``)
            or event name (``"apply"``, ``"late"``, ``"counter:..."``).
        scenario: The scenario the run executed.
        start_time: UTC ISO-8601 (:func:`utc_now_iso`).
        end_time: UTC ISO-8601; ``None`` for events and aggregate spans.
        duration_ms: Wall-clock milliseconds (``None`` for events).
        status: ``"ok"``, ``"error"`` or ``"interrupted"``.
        attributes: JSON-serialisable key/values (switch names, seeds,
            perf call counts, the recording pid, ...).
    """

    kind: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    scenario: str
    start_time: str
    end_time: Optional[str] = None
    duration_ms: Optional[float] = None
    status: str = "ok"
    attributes: Mapping[str, object] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        data = asdict(self)
        data["attributes"] = dict(self.attributes)
        return data

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "TraceRecord":
        return cls(**{**data, "attributes": dict(data.get("attributes") or {})})  # type: ignore[arg-type]

    def stable_view(self) -> Dict[str, object]:
        """The record minus wall-clock and process identity.

        Two runs of the same ``(scenario, run_id)`` -- serial, pooled,
        or resumed -- agree on this projection record for record; the
        lockstep tests compare exactly this.
        """
        data = self.to_json()
        for volatile in VOLATILE_FIELDS:
            data.pop(volatile, None)
        attributes = dict(data["attributes"])  # type: ignore[arg-type]
        for volatile in VOLATILE_ATTRIBUTES:
            attributes.pop(volatile, None)
        data["attributes"] = attributes
        return data


def record_to_line(record: TraceRecord) -> str:
    """Canonical JSON line (sorted keys, compact) of one record."""
    return json.dumps(record.to_json(), sort_keys=True, separators=(",", ":"))


def record_from_line(line: str) -> TraceRecord:
    return TraceRecord.from_json(json.loads(line))
