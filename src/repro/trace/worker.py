"""Pool-worker state collection: the plumbing that survives a fork.

Before this module, a ``fork`` pool worker accumulated perf spans and
trace records in its *own* process-global registries and threw them away
on exit -- with ``REPRO_PERF=1`` the parent's report showed only the
in-process first-item probe.  These hooks close the loop:

* :func:`worker_prepare` runs in the worker at the start of every chunk
  and drains whatever the fork inherited from the parent (the parent
  still owns those records), keeping the inherited span *stacks* so
  worker spans nest under ``pipeline.<scenario>`` / the run root span
  exactly as serial spans do;
* :func:`worker_collect` runs after the chunk and returns the worker's
  own contribution as plain JSON-ready data (picklable, version-stable);
* :func:`merge_payload` runs in the parent, in chunk submission order,
  adding worker perf totals into the parent registry and appending
  worker trace records to the parent tape (which the session then
  flushes to the sink).

:func:`collection_hooks` is the :class:`~repro.runtime.ParallelRunner`'s
entry point: it returns the triple only when there is state to collect,
so untraced, unprofiled runs pay nothing.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.perf import perf
from repro.trace.record import TraceRecord
from repro.trace.recorder import recorder

Payload = Dict[str, object]
Hooks = Tuple[Callable[[], None], Callable[[], Payload], Callable[[Payload], None]]


def worker_prepare() -> None:
    """Discard fork-inherited perf/trace data (the parent still has it)."""
    perf.drain()
    recorder.drain()


def worker_collect() -> Payload:
    """The worker's own contribution since :func:`worker_prepare`."""
    return {
        "perf": perf.drain(),
        "trace": [record.to_json() for record in recorder.drain()],
    }


def merge_payload(payload: Payload) -> None:
    """Fold one worker chunk's contribution into the parent process."""
    perf.merge(payload.get("perf") or {})
    trace = payload.get("trace") or []
    recorder.absorb(TraceRecord.from_json(data) for data in trace)


def collection_hooks() -> Optional[Hooks]:
    """The (prepare, collect, merge) triple, or ``None`` when idle."""
    if not (perf.enabled or recorder.enabled):
        return None
    return worker_prepare, worker_collect, merge_payload
