"""TraceSink implementations: console, JSONL and SQLite.

The protocol is two methods -- ``emit(record)`` and ``close()`` -- so a
sink swap never touches the emitting side (the illumo-flow tracer
shape).  Sinks are owned by the parent process only: pool workers buffer
records in the recorder and ship them back with their chunk results, so
no sink ever sees concurrent writers.

``open_sink`` parses the CLI-facing spec::

    console            human lines on stderr
    jsonl              <run directory>/trace.jsonl
    jsonl:PATH         explicit file
    sqlite             <run directory>/trace.db
    sqlite:PATH        explicit database
"""

from __future__ import annotations

import sqlite3
import sys
from pathlib import Path
from typing import IO, Optional, Protocol

from repro.trace.record import TraceRecord, record_to_line

JSONL_NAME = "trace.jsonl"
SQLITE_NAME = "trace.db"

#: SQLite rows mirror the record schema; ``attributes`` is a JSON blob.
_SCHEMA = """
CREATE TABLE IF NOT EXISTS records (
    seq         INTEGER PRIMARY KEY AUTOINCREMENT,
    kind        TEXT NOT NULL,
    trace_id    TEXT NOT NULL,
    span_id     TEXT NOT NULL,
    parent_id   TEXT,
    name        TEXT NOT NULL,
    scenario    TEXT NOT NULL,
    start_time  TEXT NOT NULL,
    end_time    TEXT,
    duration_ms REAL,
    status      TEXT NOT NULL,
    attributes  TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_records_trace ON records (trace_id);
CREATE INDEX IF NOT EXISTS idx_records_name ON records (name);
"""


class TraceSink(Protocol):
    """Anything that can consume trace records, one at a time."""

    def emit(self, record: TraceRecord) -> None: ...

    def close(self) -> None: ...


class ConsoleSink:
    """Human-readable lines, one per record, on stderr by default."""

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr

    def emit(self, record: TraceRecord) -> None:
        duration = (
            f" {record.duration_ms:.1f}ms" if record.duration_ms is not None else ""
        )
        attributes = " ".join(
            f"{key}={value}" for key, value in sorted(record.attributes.items())
        )
        tag = "SPAN" if record.kind == "span" else "EVNT"
        status = "" if record.status == "ok" else f" !{record.status}"
        print(
            f"[{tag}] {record.name}{duration}{status}"
            f"{'  ' + attributes if attributes else ''}",
            file=self.stream,
        )

    def close(self) -> None:
        self.stream.flush()


class JsonlSink:
    """Canonical JSON lines, appended and flushed per record."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._file: Optional[IO[str]] = None

    def emit(self, record: TraceRecord) -> None:
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "a", encoding="utf-8")
        self._file.write(record_to_line(record) + "\n")
        self._file.flush()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


class SqliteSink:
    """One ``records`` table; commits are batched, ``close`` is final."""

    COMMIT_EVERY = 64

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._conn: Optional[sqlite3.Connection] = None
        self._pending = 0

    def _connection(self) -> sqlite3.Connection:
        if self._conn is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._conn = sqlite3.connect(str(self.path))
            self._conn.executescript(_SCHEMA)
            self._conn.commit()
        return self._conn

    def emit(self, record: TraceRecord) -> None:
        import json

        conn = self._connection()
        conn.execute(
            "INSERT INTO records (kind, trace_id, span_id, parent_id, name, "
            "scenario, start_time, end_time, duration_ms, status, attributes) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                record.kind,
                record.trace_id,
                record.span_id,
                record.parent_id,
                record.name,
                record.scenario,
                record.start_time,
                record.end_time,
                record.duration_ms,
                record.status,
                json.dumps(dict(record.attributes), sort_keys=True),
            ),
        )
        self._pending += 1
        if self._pending >= self.COMMIT_EVERY:
            conn.commit()
            self._pending = 0

    def close(self) -> None:
        if self._conn is not None:
            self._conn.commit()
            self._conn.close()
            self._conn = None
            self._pending = 0


def open_sink(spec: str, directory=None) -> TraceSink:
    """Build the sink a ``--trace`` spec names (see module docstring)."""
    kind, _, path = spec.partition(":")
    kind = kind.strip().lower()
    base = Path(directory) if directory is not None else Path(".")
    if kind == "console":
        return ConsoleSink()
    if kind == "jsonl":
        return JsonlSink(Path(path) if path else base / JSONL_NAME)
    if kind == "sqlite":
        return SqliteSink(Path(path) if path else base / SQLITE_NAME)
    raise ValueError(
        f"unknown trace sink {spec!r}; expected console, jsonl[:PATH] or "
        f"sqlite[:PATH]"
    )
