"""Rendering helpers for time series and result tables (text output).

Every experiment prints the exact rows/series the paper plots; these
helpers keep the formatting consistent.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence, Tuple


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """A fixed-width text table."""
    columns = [list(map(_fmt, col)) for col in zip(*([headers] + [list(r) for r in rows]))]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(map(_fmt, headers), widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(_fmt(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    time_label: str = "time (s)",
    value_label: str = "Mbps",
    title: str = "",
) -> str:
    """Align several ``(time, value)`` series on their time axis."""
    times: List[float] = sorted({t for points in series.values() for t, _ in points})
    headers = [time_label] + [f"{name} {value_label}" for name in series]
    lookup = {name: dict(points) for name, points in series.items()}
    rows: List[List[object]] = []
    for t in times:
        row: List[object] = [round(t, 2)]
        for name in series:
            value = lookup[name].get(t)
            row.append("-" if value is None else round(value, 2))
        rows.append(row)
    return render_table(headers, rows, title=title)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
