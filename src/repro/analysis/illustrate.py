"""Text renderings of the paper's illustrative figures (Figs. 1, 2 and 5).

The evaluation figures live in :mod:`repro.experiments`; this module covers
the *explanatory* ones: the per-time-step flow state during an update (the
time-extended network of Fig. 2) and the evolution of Algorithm 3's
dependency relation sets (Fig. 5).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.greedy import greedy_schedule
from repro.core.instance import UpdateInstance
from repro.core.schedule import UpdateSchedule
from repro.core.trace import trace_schedule
from repro.network.graph import Node


def render_flow_timeline(
    instance: UpdateInstance,
    schedule: UpdateSchedule,
    t_start: Optional[int] = None,
    t_end: Optional[int] = None,
) -> str:
    """The dynamic flow as the time-extended network shows it.

    One row per time step: the switches updating at that step and every
    link carrying flow, marked ``=`` when the departing switch already runs
    its new rule and ``-`` while it still runs the old one.  Congested links
    are flagged with ``!``.

    Args:
        instance: The update instance.
        schedule: The timed update schedule being illustrated.
        t_start: First rendered step (default: one old-path delay before
            ``t0``, the history window of Fig. 2).
        t_end: Last rendered step (default: until the new path's steady
            state).
    """
    result = trace_schedule(instance, schedule)
    times = schedule.as_dict()
    if t_start is None:
        t_start = schedule.t0 - instance.old_path_delay
    if t_end is None:
        t_end = schedule.last_time + instance.new_path_delay + 1

    congested = {(event.link, event.time) for event in result.congestion}
    lines: List[str] = []
    header = (
        f"time-extended flow state of {instance.flow.name!r} "
        f"({instance.source} -> {instance.destination}, demand {instance.demand:g})"
    )
    lines.append(header)
    lines.append("=" * len(header))
    for t in range(t_start, t_end + 1):
        updates = sorted(node for node, when in times.items() if when == t)
        loaded: List[str] = []
        for (src, dst), series in sorted(result.loads.items()):
            load = series.get(t, 0.0)
            if load <= 0.0:
                continue
            when = times.get(src)
            marker = "=" if when is not None and when <= t else "-"
            flag = "!" if ((src, dst), t) in congested else ""
            loaded.append(f"{src}{marker}>{dst}{flag}")
        update_note = f"  update: {', '.join(updates)}" if updates else ""
        lines.append(f"t{t:>3}: {' '.join(loaded) or '(idle)'}{update_note}")
    summary = []
    if result.loops:
        summary.append(f"{len(result.loops)} loop event(s)")
    if result.congestion:
        summary.append(f"{len(result.congestion)} congestion event(s)")
    lines.append("verdict: " + (", ".join(summary) if summary else "consistent"))
    return "\n".join(lines)


def render_dependency_evolution(instance: UpdateInstance) -> str:
    """Fig. 5: the dependency relation set at every greedy time step."""
    result = greedy_schedule(instance, keep_dependency_log=True)
    lines = ["dependency relation sets (Algorithm 3) per time step"]
    rounds = {when: nodes for when, nodes in result.schedule.rounds()}
    for t, deps in result.dependency_log:
        chains = ", ".join("(" + " -> ".join(chain) + ")" for chain in deps.chains)
        updated = rounds.get(t, ())
        suffix = f"   updated: {', '.join(updated)}" if updated else ""
        deferred = f"   deferred: {', '.join(sorted(deps.deferred))}" if deps.deferred else ""
        lines.append(f"t{t}: {{{chains or 'empty'}}}{suffix}{deferred}")
    lines.append(f"schedule: {result.schedule}")
    return "\n".join(lines)
