"""Metrics and statistics for the evaluation harness."""

from repro.analysis.metrics import (
    ScheduleMetrics,
    evaluate_schedule,
    congested_timed_links,
)
from repro.analysis.illustrate import (
    render_dependency_evolution,
    render_flow_timeline,
)
from repro.analysis.stats import (
    BoxStats,
    box_stats,
    cdf_points,
    mean,
    percentile,
)

__all__ = [
    "ScheduleMetrics",
    "evaluate_schedule",
    "congested_timed_links",
    "render_dependency_evolution",
    "render_flow_timeline",
    "BoxStats",
    "box_stats",
    "cdf_points",
    "mean",
    "percentile",
]
