"""Schedule-level consistency metrics.

Fig. 7 counts *congestion cases* (update instances with at least one
capacity violation during the transition), Fig. 8 counts *congested links
of the time-extended network* (distinct ``(link, time step)`` pairs over
capacity), and Fig. 11 measures *update time* in time units (the schedule
makespan).  All three derive from one replay of the schedule through the
interval tracker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.instance import UpdateInstance
from repro.core.intervals import CongestionSpan, replay_schedule
from repro.core.schedule import UpdateSchedule


@dataclass(frozen=True)
class ScheduleMetrics:
    """Consistency outcome of one executed schedule.

    Attributes:
        makespan: Update time in time units (``|T|``).
        congestion_spans: Capacity-violation spans.
        congested_timed_links: Distinct over-capacity ``(link, time)`` pairs.
        loop_events: Forwarding-loop occurrences.
        blackhole_events: Dropped-traffic occurrences.
    """

    makespan: int
    congestion_spans: int
    congested_timed_links: int
    loop_events: int
    blackhole_events: int

    @property
    def congestion_free(self) -> bool:
        return self.congestion_spans == 0

    @property
    def loop_free(self) -> bool:
        return self.loop_events == 0

    @property
    def consistent(self) -> bool:
        return (
            self.congestion_free and self.loop_free and self.blackhole_events == 0
        )


def evaluate_schedule(instance: UpdateInstance, schedule: UpdateSchedule) -> ScheduleMetrics:
    """Replay ``schedule`` and measure every consistency metric."""
    tracker = replay_schedule(instance, schedule)
    spans = tracker.congestion_spans()
    return ScheduleMetrics(
        makespan=schedule.makespan,
        congestion_spans=len(spans),
        congested_timed_links=sum(span.timed_link_count for span in spans),
        loop_events=len(tracker.loops),
        blackhole_events=len(tracker.blackholes),
    )


def congested_timed_links(instance: UpdateInstance, schedule: UpdateSchedule) -> int:
    """Fig. 8's unit for one instance/schedule pair."""
    return evaluate_schedule(instance, schedule).congested_timed_links
