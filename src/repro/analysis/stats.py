"""Small statistics helpers (means, percentiles, CDFs, box plots)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for empty input."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, ``q`` in [0, 100]."""
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be within [0, 100]")
    data = sorted(values)
    if not data:
        raise ValueError("percentile of empty data")
    if len(data) == 1:
        return float(data[0])
    rank = (q / 100.0) * (len(data) - 1)
    low = int(rank)
    high = min(low + 1, len(data) - 1)
    frac = rank - low
    return data[low] * (1.0 - frac) + data[high] * frac


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as ``(value, probability)`` steps (Fig. 11)."""
    data = sorted(values)
    n = len(data)
    if n == 0:
        return []
    points: List[Tuple[float, float]] = []
    for index, value in enumerate(data, start=1):
        if points and points[-1][0] == value:
            points[-1] = (value, index / n)
        else:
            points.append((value, index / n))
    return points


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary for box plots (Fig. 9)."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float

    def row(self) -> str:
        return (
            f"min={self.minimum:.0f} q1={self.q1:.0f} med={self.median:.0f} "
            f"q3={self.q3:.0f} max={self.maximum:.0f} mean={self.mean:.1f}"
        )


def box_stats(values: Sequence[float]) -> BoxStats:
    """Five-number summary plus mean."""
    if not values:
        raise ValueError("box stats of empty data")
    return BoxStats(
        minimum=min(values),
        q1=percentile(values, 25),
        median=percentile(values, 50),
        q3=percentile(values, 75),
        maximum=max(values),
        mean=mean(values),
    )
