"""Discrete-event fluid-flow data plane (the Mininet/Open vSwitch analogue).

The paper's prototype measures link bandwidth consumption on Mininet while
update protocols run.  This package reproduces that substrate: switches with
OpenFlow-style match-action flow tables, links with capacity and propagation
delay, constant-rate traffic sources, and a byte-counter monitor sampled
like the Floodlight statistics module.  Traffic is modelled as fluid rates
whose changes propagate along links with their delays -- exactly the
quantity (Mbps over time) that Fig. 6 plots.
"""

from repro.simulator.engine import Simulator
from repro.simulator.flowtable import FlowRule, FlowTable, Match, PacketContext
from repro.simulator.link import DataLink
from repro.simulator.switch import DataSwitch
from repro.simulator.dataplane import DataPlane, build_dataplane
from repro.simulator.monitor import BandwidthMonitor

__all__ = [
    "Simulator",
    "FlowRule",
    "FlowTable",
    "Match",
    "PacketContext",
    "DataLink",
    "DataSwitch",
    "DataPlane",
    "build_dataplane",
    "BandwidthMonitor",
]
