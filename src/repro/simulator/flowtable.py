"""OpenFlow-style match-action flow tables.

Reproduces the rule structure of Table II: rules match on input port,
source/destination prefixes and a version tag (the paper uses VLAN IDs for
two-phase updates), and act by outputting on a port, optionally re-stamping
the tag.  Priorities break ties the OpenFlow way (highest wins; insertion
order among equals).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

ANY = "*"


@dataclass(frozen=True)
class Match:
    """Rule match fields; ``None``/``"*"`` are wildcards.

    Attributes:
        in_port: Input port number.
        src_prefix: Source prefix string (exact-match semantics; the paper
            notes wildcard rules are increasingly replaced by exact match).
        dst_prefix: Destination prefix string.
        tag: Version tag (VLAN ID) for two-phase updates.
    """

    in_port: Optional[int] = None
    src_prefix: str = ANY
    dst_prefix: str = ANY
    tag: Optional[int] = None

    def covers(self, context: "PacketContext") -> bool:
        """Whether this match admits ``context``."""
        if self.in_port is not None and self.in_port != context.in_port:
            return False
        if self.src_prefix != ANY and self.src_prefix != context.src_prefix:
            return False
        if self.dst_prefix != ANY and self.dst_prefix != context.dst_prefix:
            return False
        if self.tag is not None and self.tag != context.tag:
            return False
        return True


@dataclass(frozen=True)
class PacketContext:
    """The header fields a switch matches on (fluid traffic descriptor)."""

    in_port: int
    src_prefix: str
    dst_prefix: str
    tag: Optional[int] = None

    def with_tag(self, tag: Optional[int]) -> "PacketContext":
        return replace(self, tag=tag)

    def with_in_port(self, in_port: int) -> "PacketContext":
        return replace(self, in_port=in_port)


@dataclass(frozen=True)
class FlowRule:
    """A match-action rule.

    Attributes:
        name: Identifier (unique within a table) used for modify/delete.
        match: Match fields.
        out_port: Output port; ``None`` drops.
        set_tag: When not ``None``, stamp this tag before output (two-phase
            ingress stamping).
        priority: Higher wins.
    """

    name: str
    match: Match
    out_port: Optional[int]
    set_tag: Optional[int] = None
    priority: int = 0


class FlowTable:
    """A switch's rule set with OpenFlow lookup semantics."""

    def __init__(self) -> None:
        self._rules: Dict[str, FlowRule] = {}
        self._order: List[str] = []

    # ------------------------------------------------------------------
    # mutation (the three FlowMod flavours)
    # ------------------------------------------------------------------
    def add(self, rule: FlowRule) -> None:
        """Install a rule; names must be unique."""
        if rule.name in self._rules:
            raise ValueError(f"duplicate rule {rule.name!r}")
        self._rules[rule.name] = rule
        self._order.append(rule.name)

    def modify(self, name: str, out_port: Optional[int] = None, set_tag: Optional[int] = None) -> FlowRule:
        """Rewrite a rule's action in place (Chronus' only operation)."""
        if name not in self._rules:
            raise KeyError(f"no rule {name!r}")
        old = self._rules[name]
        new = replace(old, out_port=out_port if out_port is not None else old.out_port, set_tag=set_tag)
        self._rules[name] = new
        return new

    def delete(self, name: str) -> None:
        """Remove a rule."""
        if name not in self._rules:
            raise KeyError(f"no rule {name!r}")
        del self._rules[name]
        self._order.remove(name)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def lookup(self, context: PacketContext) -> Optional[FlowRule]:
        """Highest-priority matching rule, or ``None`` (table miss)."""
        best: Optional[FlowRule] = None
        best_key: Tuple[int, int] = (-1, -1)
        for index, name in enumerate(self._order):
            rule = self._rules[name]
            if not rule.match.covers(context):
                continue
            key = (rule.priority, -index)  # priority first, then earliest
            if best is None or key > best_key:
                best = rule
                best_key = key
        return best

    @property
    def occupancy(self) -> int:
        """Number of resident rules (the flow-table-space metric)."""
        return len(self._rules)

    @property
    def rules(self) -> List[FlowRule]:
        return [self._rules[name] for name in self._order]

    def __contains__(self, name: str) -> bool:
        return name in self._rules

    def render(self) -> List[str]:
        """Human-readable rows in Table II's column layout."""
        rows = ["InPort  SrcPfx  DstPfx  Tag   Action"]
        for rule in self.rules:
            match = rule.match
            action = "Drop" if rule.out_port is None else f"Output:{rule.out_port}"
            if rule.set_tag is not None:
                action = f"SetTag:{rule.set_tag}," + action
            rows.append(
                "{:<7} {:<7} {:<7} {:<5} {}".format(
                    match.in_port if match.in_port is not None else ANY,
                    match.src_prefix,
                    match.dst_prefix,
                    match.tag if match.tag is not None else ANY,
                    action,
                )
            )
        return rows
