"""Data-plane switches: flow-table forwarding of fluid streams.

A switch keeps the set of currently arriving streams per input port.  On
every arrival-rate change or flow-table change it re-evaluates all streams
against the table and pushes the aggregated per-output rates onto its
links.  Table misses black-hole traffic (counted); rules outputting on the
host port deliver traffic (counted too).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.simulator.engine import Simulator
from repro.simulator.flowtable import FlowRule, FlowTable, PacketContext
from repro.simulator.link import DataLink, StreamKey

HOST_PORT = 0

_EPS = 1e-12

InKey = Tuple[int, str, str, Optional[int]]  # (in_port, src, dst, tag)


class DataSwitch:
    """One switch of the emulated data plane."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self._sim = sim
        self.name = name
        self.table = FlowTable()
        self._out_links: Dict[int, DataLink] = {}
        self._in_rates: Dict[InKey, Tuple[PacketContext, float]] = {}
        self.delivered = 0.0  # Mbps currently leaving through the host port
        self.blackholed = 0.0  # Mbps currently dropped by table misses
        self._volume_accrued_at = sim.now  # last time the volume integrals advanced
        self._dropped_volume = 0.0  # megabits dropped up to _volume_accrued_at
        self._delivered_volume = 0.0  # megabits delivered up to _volume_accrued_at

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach_link(self, port: int, link: DataLink) -> None:
        """Connect an output ``port`` to a link."""
        if port == HOST_PORT:
            raise ValueError("port 0 is reserved for the host")
        if port in self._out_links:
            raise ValueError(f"port {port} already attached on {self.name}")
        self._out_links[port] = link

    @property
    def ports(self) -> List[int]:
        return sorted(self._out_links)

    # ------------------------------------------------------------------
    # traffic
    # ------------------------------------------------------------------
    def receive(self, context: PacketContext, rate: float) -> None:
        """A stream's arrival rate changed (link delivery or host inject)."""
        key: InKey = (context.in_port, context.src_prefix, context.dst_prefix, context.tag)
        if rate < _EPS:
            self._in_rates.pop(key, None)
        else:
            self._in_rates[key] = (context, rate)
        self.reevaluate()

    def inject(self, context: PacketContext, rate: float) -> None:
        """Host-side traffic source (must use the host port)."""
        if context.in_port != HOST_PORT:
            raise ValueError("host traffic enters on port 0")
        self.receive(context, rate)

    def on_table_changed(self) -> None:
        """Re-forward everything after a FlowMod took effect."""
        self.reevaluate()

    def dropped_volume(self) -> float:
        """Megabits black-holed so far (the drop analogue of a byte counter)."""
        return self._dropped_volume + self.blackholed * (
            self._sim.now - self._volume_accrued_at
        )

    def delivered_volume(self) -> float:
        """Megabits delivered through the host port so far."""
        return self._delivered_volume + self.delivered * (
            self._sim.now - self._volume_accrued_at
        )

    def _accrue_volumes(self) -> None:
        elapsed = self._sim.now - self._volume_accrued_at
        if elapsed > 0.0:
            self._dropped_volume += self.blackholed * elapsed
            self._delivered_volume += self.delivered * elapsed
        self._volume_accrued_at = self._sim.now

    def reevaluate(self) -> None:
        """Recompute all output rates from the current inputs and table."""
        self._accrue_volumes()
        per_port: Dict[int, Dict[StreamKey, Tuple[PacketContext, float]]] = {
            port: {} for port in self._out_links
        }
        delivered = 0.0
        blackholed = 0.0
        for context, rate in self._in_rates.values():
            rule = self.table.lookup(context)
            if rule is None or rule.out_port is None:
                blackholed += rate
                continue
            out_tag = rule.set_tag if rule.set_tag is not None else context.tag
            out_context = context.with_tag(out_tag)
            if rule.out_port == HOST_PORT:
                delivered += rate
                continue
            if rule.out_port not in self._out_links:
                blackholed += rate
                continue
            bucket = per_port[rule.out_port]
            key = (out_context.src_prefix, out_context.dst_prefix, out_context.tag)
            if key in bucket:
                bucket[key] = (bucket[key][0], bucket[key][1] + rate)
            else:
                bucket[key] = (out_context, rate)
        self.delivered = delivered
        self.blackholed = blackholed
        for port, streams in per_port.items():
            link = self._out_links[port]
            for context, rate in streams.values():
                link.set_stream_rate(context, rate)
            link.clear_absent_streams(set(streams))
