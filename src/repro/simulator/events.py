"""Event queue for the discrete-event simulator."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

Callback = Callable[[], None]


@dataclass(order=True)
class _Event:
    time: float
    sequence: int
    callback: Callback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventQueue:
    """A cancellable min-heap of timed callbacks.

    Events at equal times fire in scheduling order (FIFO), which keeps the
    simulation deterministic.
    """

    def __init__(self) -> None:
        self._heap: List[_Event] = []
        self._counter = itertools.count()

    def push(self, time: float, callback: Callback) -> _Event:
        """Schedule ``callback`` at ``time``; returns a cancellable handle."""
        event = _Event(time=time, sequence=next(self._counter), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: _Event) -> None:
        """Mark an event as cancelled (lazily discarded on pop)."""
        event.cancelled = True

    def pop(self) -> Optional[_Event]:
        """Remove and return the earliest live event, or ``None``."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or ``None``."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None
