"""Assembling a data plane from a :class:`repro.network.graph.Network`.

The builder instantiates one :class:`DataSwitch` per switch and one
:class:`DataLink` per directed link, assigns port numbers (port 0 is the
host port), and installs the initial routing configuration as destination-
prefix rules -- the layout of Table II.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.instance import UpdateInstance
from repro.network.graph import Network, Node
from repro.simulator.engine import Simulator
from repro.simulator.flowtable import FlowRule, Match, PacketContext
from repro.simulator.link import DataLink
from repro.simulator.switch import HOST_PORT, DataSwitch


@dataclass
class DataPlane:
    """The emulated network: switches, links and port maps.

    Attributes:
        sim: The driving simulator.
        switches: Switch objects by name.
        links: Links by ``(src, dst)``.
        out_port: Port number of each directed link at its tail switch.
    """

    sim: Simulator
    switches: Dict[Node, DataSwitch]
    links: Dict[Tuple[Node, Node], DataLink]
    out_port: Dict[Tuple[Node, Node], int]

    def link(self, src: Node, dst: Node) -> DataLink:
        return self.links[(src, dst)]

    def switch(self, name: Node) -> DataSwitch:
        return self.switches[name]

    def port_of(self, src: Node, dst: Node) -> int:
        """The tail-side port of the directed link ``src -> dst``."""
        return self.out_port[(src, dst)]

    def inject_flow(
        self,
        source: Node,
        src_prefix: str,
        dst_prefix: str,
        rate: float,
        tag: Optional[int] = None,
    ) -> PacketContext:
        """Start a constant-rate flow at ``source``'s host port."""
        context = PacketContext(
            in_port=HOST_PORT, src_prefix=src_prefix, dst_prefix=dst_prefix, tag=tag
        )
        self.switches[source].inject(context, rate)
        return context

    def total_blackholed(self) -> float:
        """Current rate dropped by table misses across the plane."""
        return sum(sw.blackholed for sw in self.switches.values())

    def total_dropped_volume(self) -> float:
        """Megabits black-holed across the plane since the simulation began."""
        return sum(sw.dropped_volume() for sw in self.switches.values())


def build_dataplane(
    sim: Simulator,
    network: Network,
    delay_scale: float = 1.0,
) -> DataPlane:
    """Instantiate switches and links for ``network``.

    Args:
        sim: Simulator that will drive the plane.
        network: Topology; link delays (integer steps) are multiplied by
            ``delay_scale`` to obtain seconds.
        delay_scale: Seconds per delay step.
    """
    switches: Dict[Node, DataSwitch] = {
        name: DataSwitch(sim, name) for name in network.switches
    }
    links: Dict[Tuple[Node, Node], DataLink] = {}
    out_port: Dict[Tuple[Node, Node], int] = {}
    next_port: Dict[Node, int] = {name: 1 for name in network.switches}
    in_port: Dict[Tuple[Node, Node], int] = {}

    # Assign an input port at the head and an output port at the tail for
    # every directed link.
    for link in network.links:
        tail_port = next_port[link.src]
        next_port[link.src] += 1
        head_port = next_port[link.dst]
        next_port[link.dst] += 1
        out_port[(link.src, link.dst)] = tail_port
        in_port[(link.src, link.dst)] = head_port

    for link in network.links:
        head_switch = switches[link.dst]
        data_link = DataLink(
            sim=sim,
            name=f"{link.src}->{link.dst}",
            capacity=link.capacity,
            delay=link.delay * delay_scale,
            deliver=head_switch.receive,
            dst_in_port=in_port[(link.src, link.dst)],
        )
        links[(link.src, link.dst)] = data_link
        switches[link.src].attach_link(out_port[(link.src, link.dst)], data_link)

    return DataPlane(sim=sim, switches=switches, links=links, out_port=out_port)


def install_config(
    plane: DataPlane,
    instance: UpdateInstance,
    flow_prefix: Optional[str] = None,
    tag: Optional[int] = None,
    rule_suffix: str = "",
) -> None:
    """Install a routing configuration as destination-prefix rules.

    One rule per old-config switch (``Match(dst_prefix=...) -> Output``),
    plus the delivery rule at the destination -- the Table II layout.

    Args:
        plane: The data plane.
        instance: Supplies the old configuration and flow endpoints.
        flow_prefix: Destination prefix to match (defaults to
            ``instance.destination``).
        tag: Version tag the rules should match (two-phase updates).
        rule_suffix: Appended to rule names (to keep versions distinct).
    """
    dst_prefix = flow_prefix if flow_prefix is not None else str(instance.destination)
    for node, nxt in instance.old_config.items():
        plane.switch(node).table.add(
            FlowRule(
                name=f"{instance.flow.name}{rule_suffix}",
                match=Match(dst_prefix=dst_prefix, tag=tag),
                out_port=plane.port_of(node, nxt),
            )
        )
        plane.switch(node).on_table_changed()
    destination = plane.switch(instance.destination)
    destination.table.add(
        FlowRule(
            name=f"{instance.flow.name}{rule_suffix}",
            match=Match(dst_prefix=dst_prefix, tag=tag),
            out_port=HOST_PORT,
        )
    )
    destination.on_table_changed()
