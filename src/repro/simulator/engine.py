"""The discrete-event simulation engine."""

from __future__ import annotations

from typing import Optional

from repro.simulator.events import Callback, EventQueue


class Simulator:
    """A minimal deterministic discrete-event simulator.

    Components schedule callbacks at absolute times or after delays; the
    engine fires them in time order.  Time is in seconds (float).

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule_at(1.5, lambda: fired.append(sim.now))
        >>> sim.run(until=2.0)
        >>> fired
        [1.5]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._queue = EventQueue()

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule_at(self, time: float, callback: Callback):
        """Schedule ``callback`` at absolute ``time`` (>= now)."""
        if time < self._now - 1e-12:
            raise ValueError(f"cannot schedule in the past ({time} < {self._now})")
        return self._queue.push(max(time, self._now), callback)

    def schedule_after(self, delay: float, callback: Callback):
        """Schedule ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self._queue.push(self._now + delay, callback)

    def cancel(self, handle) -> None:
        """Cancel a previously scheduled event."""
        self._queue.cancel(handle)

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> int:
        """Process events until the queue drains or ``until`` is reached.

        Args:
            until: Stop once the next event lies beyond this time (the clock
                is advanced to ``until``).
            max_events: Safety valve against runaway event storms.

        Returns:
            Number of events processed.
        """
        processed = 0
        while processed < max_events:
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            event = self._queue.pop()
            assert event is not None
            self._now = event.time
            event.callback()
            processed += 1
        else:
            raise RuntimeError(f"simulation exceeded {max_events} events")
        if until is not None and until > self._now:
            self._now = until
        return processed
