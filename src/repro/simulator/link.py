"""Fluid links: rate propagation with delay, plus byte counters.

A link carries a set of *streams* (flow descriptors) at given rates; rate
changes imposed at the tail take effect at the head after the propagation
delay.  The link records a breakpoint timeline of its total utilisation,
from which byte counters -- the quantity the Floodlight statistics module
exposes and Fig. 6 derives bandwidth from -- are integrals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.simulator.engine import Simulator
from repro.simulator.flowtable import PacketContext

StreamKey = Tuple[str, str, Optional[int]]  # (src_prefix, dst_prefix, tag)

_EPS = 1e-12


def stream_key(context: PacketContext) -> StreamKey:
    return (context.src_prefix, context.dst_prefix, context.tag)


@dataclass
class UtilizationSample:
    time: float
    rate: float


class DataLink:
    """A directed link between two data-plane switches.

    Attributes:
        name: ``"src->dst"``.
        capacity: Capacity in Mbps.
        delay: Propagation delay in seconds.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        capacity: float,
        delay: float,
        deliver: Callable[[PacketContext, float], None],
        dst_in_port: int,
    ) -> None:
        self._sim = sim
        self.name = name
        self.capacity = capacity
        self.delay = delay
        self._deliver = deliver
        self._dst_in_port = dst_in_port
        self._rates: Dict[StreamKey, Tuple[PacketContext, float]] = {}
        self._timeline: List[UtilizationSample] = [UtilizationSample(sim.now, 0.0)]
        self._transferred = 0.0  # megabits accumulated up to _timeline[-1]

    # ------------------------------------------------------------------
    # tail side: impose rates
    # ------------------------------------------------------------------
    def set_stream_rate(self, context: PacketContext, rate: float) -> None:
        """Set a stream's rate at the tail; propagates after the delay."""
        key = stream_key(context)
        current = self._rates.get(key, (None, 0.0))[1]
        if abs(current - rate) < _EPS:
            return
        arriving = context.with_in_port(self._dst_in_port)
        if rate < _EPS:
            self._rates.pop(key, None)
        else:
            self._rates[key] = (arriving, rate)
        self._record_breakpoint()
        self._sim.schedule_after(self.delay, lambda: self._deliver(arriving, rate))

    def clear_absent_streams(self, live_keys) -> None:
        """Zero every stream not present in ``live_keys``."""
        for key in list(self._rates):
            if key not in live_keys:
                context, _ = self._rates[key]
                self._rates.pop(key)
                self._record_breakpoint()
                self._sim.schedule_after(
                    self.delay, lambda ctx=context: self._deliver(ctx, 0.0)
                )

    # ------------------------------------------------------------------
    # measurements
    # ------------------------------------------------------------------
    @property
    def utilization(self) -> float:
        """Current total rate in Mbps."""
        return sum(rate for _, rate in self._rates.values())

    def byte_counter(self, at: Optional[float] = None) -> float:
        """Megabits transferred up to ``at`` (default: now).

        The OpenFlow byte counter analogue: monotone, sampled by the
        monitor, bandwidth = counter delta / interval.
        """
        when = self._sim.now if at is None else at
        total = 0.0
        timeline = self._timeline
        for sample, nxt in zip(timeline, timeline[1:]):
            if nxt.time >= when:
                total += sample.rate * max(0.0, when - sample.time)
                return total
            total += sample.rate * (nxt.time - sample.time)
        last = timeline[-1]
        total += last.rate * max(0.0, when - last.time)
        return total

    def utilization_timeline(self) -> List[UtilizationSample]:
        """Breakpoints of total utilisation over time."""
        return list(self._timeline)

    def peak_utilization(self, since: float = 0.0) -> float:
        """Maximum total rate observed over ``[since, now]``.

        Each breakpoint's rate holds over ``[sample.time, next.time)``; the
        last sample's segment is clipped to the current simulation time, so
        a query window that starts in the future (``since > now``) is empty
        and reports zero instead of the open-ended final rate.
        """
        now = self._sim.now
        if since > now:
            return 0.0
        peak = 0.0
        timeline = self._timeline
        for index, sample in enumerate(timeline):
            if index + 1 < len(timeline) and timeline[index + 1].time <= since:
                continue  # segment over before the window; straddlers stay in
            peak = max(peak, sample.rate)
        return peak

    def utilization_at(self, when: float) -> float:
        """Total rate active at time ``when`` (from the breakpoint timeline)."""
        rate = 0.0
        for sample in self._timeline:
            if sample.time > when:
                break
            rate = sample.rate
        return rate

    def congested_seconds(self, tolerance: float = 1e-9) -> float:
        """Total time the link spent above capacity."""
        total = 0.0
        timeline = self._timeline
        for sample, nxt in zip(timeline, timeline[1:]):
            if sample.rate > self.capacity + tolerance:
                total += nxt.time - sample.time
        last = timeline[-1]
        if last.rate > self.capacity + tolerance:
            total += max(0.0, self._sim.now - last.time)
        return total

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _record_breakpoint(self) -> None:
        now = self._sim.now
        last = self._timeline[-1]
        rate = self.utilization
        if abs(now - last.time) < _EPS:
            last.rate = rate
        else:
            self._timeline.append(UtilizationSample(now, rate))
