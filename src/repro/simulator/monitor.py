"""Bandwidth monitoring à la the Floodlight statistics module.

The paper measures bandwidth by querying byte counters every second and
dividing counter deltas by the interval ("The difference between these two
counters divided by the time intervals yields the bandwidth consumption").
:class:`BandwidthMonitor` does exactly that against the fluid links' byte
counters, producing the per-link Mbps series of Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.simulator.dataplane import DataPlane
from repro.simulator.engine import Simulator
from repro.network.graph import Node

LinkId = Tuple[Node, Node]


@dataclass
class BandwidthSample:
    """One polling-interval measurement."""

    time: float
    mbps: float


class BandwidthMonitor:
    """Polls link byte counters at a fixed interval.

    Args:
        plane: Data plane under observation.
        interval: Polling period in seconds (the paper uses one second).
        links: Links to watch (default: all).
    """

    def __init__(
        self,
        plane: DataPlane,
        interval: float = 1.0,
        links: Optional[List[LinkId]] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("polling interval must be positive")
        self._plane = plane
        self._sim = plane.sim
        self.interval = interval
        self._links = list(links) if links is not None else list(plane.links)
        self._last_counter: Dict[LinkId, float] = {}
        self.series: Dict[LinkId, List[BandwidthSample]] = {
            link: [] for link in self._links
        }
        self._running = False
        self._pending = None

    def start(self) -> None:
        """Begin polling at the next interval boundary."""
        if self._running:
            raise RuntimeError("monitor already started")
        self._running = True
        for link in self._links:
            self._last_counter[link] = self._plane.links[link].byte_counter()
        self._pending = self._sim.schedule_after(self.interval, self._poll)

    def stop(self) -> None:
        """Stop polling and cancel the pending poll event.

        Without this the poll loop reschedules itself forever and an
        open-ended ``sim.run()`` never drains its event queue.  Stopping is
        idempotent; ``start`` may be called again afterwards.
        """
        if not self._running:
            return
        self._running = False
        if self._pending is not None:
            self._sim.cancel(self._pending)
            self._pending = None

    def _poll(self) -> None:
        if not self._running:
            return
        now = self._sim.now
        for link in self._links:
            counter = self._plane.links[link].byte_counter()
            delta = counter - self._last_counter[link]
            self._last_counter[link] = counter
            self.series[link].append(BandwidthSample(time=now, mbps=delta / self.interval))
        self._pending = self._sim.schedule_after(self.interval, self._poll)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def link_series(self, src: Node, dst: Node) -> List[BandwidthSample]:
        """The sampled series of one link."""
        return list(self.series[(src, dst)])

    def peak_series(self) -> List[BandwidthSample]:
        """Per-interval maximum across all watched links.

        Fig. 6 plots the consumption of the congestion-prone link; taking
        the per-interval maximum avoids hand-picking it.
        """
        if not self._links:
            return []
        length = min(len(s) for s in self.series.values())
        out: List[BandwidthSample] = []
        for index in range(length):
            time = self.series[self._links[0]][index].time
            mbps = max(self.series[link][index].mbps for link in self._links)
            out.append(BandwidthSample(time=time, mbps=mbps))
        return out

    def most_utilized_link(self) -> Optional[LinkId]:
        """The link with the highest single-interval sample."""
        best: Optional[LinkId] = None
        best_mbps = -1.0
        for link, samples in self.series.items():
            for sample in samples:
                if sample.mbps > best_mbps:
                    best_mbps = sample.mbps
                    best = link
        return best
