"""A compact integer linear program representation.

Kept deliberately small: named variables with bounds and integrality, linear
constraints with ``<=``/``>=``/``==`` senses, and a minimisation objective.
:func:`ILPModel.to_standard_form` lowers the model onto the matrix form that
``scipy.optimize.linprog`` consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

LEQ = "<="
GEQ = ">="
EQ = "=="
_SENSES = (LEQ, GEQ, EQ)


@dataclass(frozen=True)
class Variable:
    """One decision variable.

    Attributes:
        name: Unique identifier.
        lower: Lower bound (default 0).
        upper: Upper bound (``None`` = unbounded above).
        integer: Whether branch-and-bound must drive it integral.
    """

    name: str
    lower: float = 0.0
    upper: Optional[float] = None
    integer: bool = False


@dataclass(frozen=True)
class Constraint:
    """``sum(coeffs[v] * v) sense rhs``."""

    coeffs: Mapping[str, float]
    sense: str
    rhs: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.sense not in _SENSES:
            raise ValueError(f"unknown constraint sense {self.sense!r}")


@dataclass
class ILPModel:
    """A minimisation ILP assembled incrementally."""

    variables: Dict[str, Variable] = field(default_factory=dict)
    constraints: List[Constraint] = field(default_factory=list)
    objective: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_variable(
        self,
        name: str,
        lower: float = 0.0,
        upper: Optional[float] = None,
        integer: bool = False,
    ) -> Variable:
        """Register a variable; names must be unique."""
        if name in self.variables:
            raise ValueError(f"duplicate variable {name!r}")
        var = Variable(name=name, lower=lower, upper=upper, integer=integer)
        self.variables[name] = var
        return var

    def add_binary(self, name: str) -> Variable:
        """A 0/1 integer variable."""
        return self.add_variable(name, lower=0.0, upper=1.0, integer=True)

    def add_constraint(
        self, coeffs: Mapping[str, float], sense: str, rhs: float, name: str = ""
    ) -> Constraint:
        """Add a linear constraint over registered variables."""
        for var in coeffs:
            if var not in self.variables:
                raise KeyError(f"constraint references unknown variable {var!r}")
        constraint = Constraint(coeffs=dict(coeffs), sense=sense, rhs=rhs, name=name)
        self.constraints.append(constraint)
        return constraint

    def set_objective(self, coeffs: Mapping[str, float]) -> None:
        """Minimise ``sum(coeffs[v] * v)``."""
        for var in coeffs:
            if var not in self.variables:
                raise KeyError(f"objective references unknown variable {var!r}")
        self.objective = dict(coeffs)

    # ------------------------------------------------------------------
    # lowering
    # ------------------------------------------------------------------
    def to_standard_form(
        self,
        extra_bounds: Optional[Mapping[str, Tuple[float, Optional[float]]]] = None,
    ) -> Tuple[np.ndarray, Optional[np.ndarray], Optional[np.ndarray], Optional[np.ndarray], Optional[np.ndarray], List[Tuple[float, Optional[float]]], List[str]]:
        """Lower to ``(c, A_ub, b_ub, A_eq, b_eq, bounds, order)`` for scipy.

        Args:
            extra_bounds: Per-variable bound overrides used by the
                branch-and-bound search (tightened on branching).
        """
        order = list(self.variables)
        index = {name: i for i, name in enumerate(order)}
        n = len(order)

        c = np.zeros(n)
        for name, coeff in self.objective.items():
            c[index[name]] = coeff

        ub_rows: List[np.ndarray] = []
        ub_rhs: List[float] = []
        eq_rows: List[np.ndarray] = []
        eq_rhs: List[float] = []
        for constraint in self.constraints:
            row = np.zeros(n)
            for name, coeff in constraint.coeffs.items():
                row[index[name]] = coeff
            if constraint.sense == LEQ:
                ub_rows.append(row)
                ub_rhs.append(constraint.rhs)
            elif constraint.sense == GEQ:
                ub_rows.append(-row)
                ub_rhs.append(-constraint.rhs)
            else:
                eq_rows.append(row)
                eq_rhs.append(constraint.rhs)

        bounds: List[Tuple[float, Optional[float]]] = []
        for name in order:
            var = self.variables[name]
            lower, upper = var.lower, var.upper
            if extra_bounds and name in extra_bounds:
                extra_lower, extra_upper = extra_bounds[name]
                lower = max(lower, extra_lower)
                if extra_upper is not None:
                    upper = extra_upper if upper is None else min(upper, extra_upper)
            bounds.append((lower, upper))

        a_ub = np.vstack(ub_rows) if ub_rows else None
        b_ub = np.asarray(ub_rhs) if ub_rhs else None
        a_eq = np.vstack(eq_rows) if eq_rows else None
        b_eq = np.asarray(eq_rhs) if eq_rhs else None
        return c, a_ub, b_ub, a_eq, b_eq, bounds, order

    @property
    def integer_variables(self) -> List[str]:
        """Names of variables that must be integral."""
        return [name for name, var in self.variables.items() if var.integer]
