"""Branch-and-bound over scipy LP relaxations.

The classic scheme the paper refers to as "the branch and bound method":
solve the LP relaxation; if some integer variable is fractional, branch into
``x <= floor`` and ``x >= ceil`` subproblems; prune subproblems whose bound
cannot beat the incumbent.  Depth-first with best-bound child ordering keeps
memory flat, and a wall-clock budget turns the solver into an anytime one
(needed to reproduce the paper's Fig. 10 cutoffs).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.solver.ilp import ILPModel

OPTIMAL = "optimal"
FEASIBLE = "feasible"  # budget hit with an incumbent
INFEASIBLE = "infeasible"
UNKNOWN = "unknown"  # budget hit without an incumbent

_INT_TOL = 1e-6


@dataclass
class BranchAndBoundResult:
    """Solver outcome.

    Attributes:
        status: ``optimal`` / ``feasible`` / ``infeasible`` / ``unknown``.
        objective: Incumbent objective value (``None`` without incumbent).
        solution: Incumbent assignment by variable name.
        nodes: Number of branch-and-bound nodes explored.
        elapsed: Wall-clock seconds spent.
    """

    status: str
    objective: Optional[float] = None
    solution: Optional[Dict[str, float]] = None
    nodes: int = 0
    elapsed: float = 0.0

    @property
    def proven_optimal(self) -> bool:
        return self.status == OPTIMAL


def solve_ilp(
    model: ILPModel,
    time_budget: Optional[float] = None,
    node_budget: Optional[int] = None,
) -> BranchAndBoundResult:
    """Solve ``model`` to optimality (or until a budget runs out).

    Args:
        model: The ILP to minimise.
        time_budget: Wall-clock seconds; ``None`` = unlimited.
        node_budget: Maximum explored nodes; ``None`` = unlimited.
    """
    started = time.monotonic()
    c, a_ub, b_ub, a_eq, b_eq, base_bounds, order = model.to_standard_form()
    integer_index = [
        i for i, name in enumerate(order) if model.variables[name].integer
    ]

    incumbent: Optional[np.ndarray] = None
    incumbent_value = math.inf
    nodes = 0
    exhausted = True

    # Each stack entry is a bounds list (branching tightens variable bounds).
    stack: List[List[Tuple[float, Optional[float]]]] = [list(base_bounds)]

    while stack:
        if time_budget is not None and time.monotonic() - started > time_budget:
            exhausted = False
            break
        if node_budget is not None and nodes >= node_budget:
            exhausted = False
            break
        bounds = stack.pop()
        nodes += 1

        result = linprog(
            c,
            A_ub=a_ub,
            b_ub=b_ub,
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=bounds,
            method="highs",
        )
        if not result.success:
            continue  # infeasible or unbounded subproblem
        if result.fun >= incumbent_value - 1e-9:
            continue  # bound cannot beat the incumbent

        x = result.x
        fractional = _most_fractional(x, integer_index)
        if fractional is None:
            incumbent = x.copy()
            incumbent_value = result.fun
            continue

        index, value = fractional
        floor_bounds = list(bounds)
        lo, hi = floor_bounds[index]
        floor_bounds[index] = (lo, math.floor(value))
        ceil_bounds = list(bounds)
        ceil_bounds[index] = (math.ceil(value), hi)
        # DFS: push the child whose bound is likely better last (explored
        # first); rounding toward the LP value tends to find incumbents fast.
        if value - math.floor(value) < 0.5:
            stack.append(ceil_bounds)
            stack.append(floor_bounds)
        else:
            stack.append(floor_bounds)
            stack.append(ceil_bounds)

    elapsed = time.monotonic() - started
    if incumbent is None:
        status = INFEASIBLE if exhausted else UNKNOWN
        return BranchAndBoundResult(status=status, nodes=nodes, elapsed=elapsed)
    solution = {name: float(incumbent[i]) for i, name in enumerate(order)}
    for name in model.integer_variables:
        solution[name] = round(solution[name])
    status = OPTIMAL if exhausted else FEASIBLE
    return BranchAndBoundResult(
        status=status,
        objective=float(incumbent_value),
        solution=solution,
        nodes=nodes,
        elapsed=elapsed,
    )


def _most_fractional(
    x: np.ndarray, integer_index: List[int]
) -> Optional[Tuple[int, float]]:
    """The integer variable farthest from integrality, or ``None``."""
    best: Optional[Tuple[int, float]] = None
    best_distance = _INT_TOL
    for i in integer_index:
        value = x[i]
        distance = abs(value - round(value))
        if distance > best_distance:
            best_distance = distance
            best = (i, value)
    return best
