"""Optimisation substrate: a small ILP model plus branch-and-bound solver.

The paper solves the MUTP integer program (3) "using the branch and bound
method".  No external MILP solver is available offline, so this package
implements the pieces from scratch: :mod:`repro.solver.ilp` holds a compact
model representation, and :mod:`repro.solver.branch_and_bound` solves it
exactly by branching on fractional variables of scipy LP relaxations.
"""

from repro.solver.ilp import Constraint, ILPModel, Variable
from repro.solver.branch_and_bound import BranchAndBoundResult, solve_ilp

__all__ = [
    "Constraint",
    "ILPModel",
    "Variable",
    "BranchAndBoundResult",
    "solve_ilp",
]
