"""Reactive planning helpers built on the Chronus scheduler.

The introduction motivates timed consistent updates with four operational
scenarios; this module packages the most latency-critical one -- reaction to
link failures -- as a one-call planner: given a failed link, compute a
backup path, decide whether a congestion- and loop-free transition exists
(Algorithm 1), and produce the timed schedule (Algorithm 2).
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.greedy import GreedyResult, greedy_schedule
from repro.core.instance import UpdateInstance, instance_from_paths
from repro.core.tree import FeasibilityResult, check_update_feasibility
from repro.network.graph import Network, Node


@dataclass
class FailoverPlan:
    """Everything needed to react to one link failure.

    Attributes:
        instance: The update instance (old path -> backup path).
        feasibility: Algorithm 1's verdict on a consistent transition.
        result: The Chronus schedule (best-effort when infeasible).
    """

    instance: UpdateInstance
    feasibility: FeasibilityResult
    result: GreedyResult

    @property
    def consistent(self) -> bool:
        """Whether the planned transition is congestion- and loop-free."""
        return self.result.feasible

    @property
    def backup_path(self) -> Tuple[Node, ...]:
        return self.instance.new_path


def shortest_delay_path(
    network: Network,
    source: Node,
    destination: Node,
    forbidden_links: Sequence[Tuple[Node, Node]] = (),
    forbidden_nodes: Sequence[Node] = (),
) -> Optional[List[Node]]:
    """Dijkstra over link delays, avoiding the given links/switches."""
    banned_links = set(forbidden_links)
    banned_nodes = set(forbidden_nodes) - {source, destination}
    distances: Dict[Node, int] = {source: 0}
    previous: Dict[Node, Node] = {}
    heap: List[Tuple[int, Node]] = [(0, source)]
    visited = set()
    while heap:
        dist, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if node == destination:
            path = [node]
            while node in previous:
                node = previous[node]
                path.append(node)
            return list(reversed(path))
        for link in network.out_links(node):
            if (link.src, link.dst) in banned_links or link.dst in banned_nodes:
                continue
            candidate = dist + link.delay
            if candidate < distances.get(link.dst, float("inf")):
                distances[link.dst] = candidate
                previous[link.dst] = node
                heapq.heappush(heap, (candidate, link.dst))
    return None


def random_reroute_instance(
    network: Network,
    source: Node,
    destination: Node,
    rng: Optional[random.Random] = None,
    demand: float = 1.0,
    flow_name: str = "f",
) -> Optional[UpdateInstance]:
    """An update instance on an *arbitrary* graph (not just chain workloads).

    The old route is the delay-shortest path; the new route avoids one
    randomly chosen transit switch of it (a maintenance-style reroute).
    This is how operators produce instances on real fabrics (fat trees,
    Waxman WANs) -- the chain-based generators in
    :mod:`repro.network.topology` model the paper's simulation workload.

    Returns:
        The instance, or ``None`` when no alternative route exists or the
        shortest path has no transit switch to avoid.
    """
    if rng is None:
        rng = random.Random()
    old_path = shortest_delay_path(network, source, destination)
    if old_path is None or len(old_path) < 3:
        return None
    victim = rng.choice(old_path[1:-1])
    new_path = shortest_delay_path(
        network, source, destination, forbidden_nodes=[victim]
    )
    if new_path is None or list(new_path) == list(old_path):
        return None
    return instance_from_paths(
        network, old_path, new_path, demand=demand, flow_name=flow_name
    )


def plan_link_failover(
    network: Network,
    current_path: Sequence[Node],
    failed_link: Tuple[Node, Node],
    demand: float = 1.0,
    flow_name: str = "f",
) -> Optional[FailoverPlan]:
    """React to a link failure with a consistent timed reroute.

    The backup route keeps the longest prefix of the current path before the
    failure and continues over the delay-shortest detour that avoids the
    failed link; the transition is then checked (Algorithm 1) and scheduled
    (Algorithm 2).

    Args:
        network: The topology (the failed link is avoided, not removed).
        current_path: The flow's current route.
        failed_link: The ``(src, dst)`` link reported down; must lie on
            ``current_path``.
        demand: Flow rate.
        flow_name: Identifier for flow-table rules.

    Returns:
        A :class:`FailoverPlan`, or ``None`` when no backup route exists.

    Raises:
        ValueError: if the failed link is not on the current path.
    """
    path = list(current_path)
    links = list(zip(path, path[1:]))
    if failed_link not in links:
        raise ValueError(f"link {failed_link} is not on the current path")

    branch_index = links.index(failed_link)
    source, destination = path[0], path[-1]

    # Prefer detours that rejoin cleanly: branch at the failure point and
    # avoid re-entering the already-travelled prefix.
    prefix = path[: branch_index + 1]
    detour = shortest_delay_path(
        network,
        prefix[-1],
        destination,
        forbidden_links=[failed_link],
        forbidden_nodes=prefix[:-1],
    )
    if detour is None:
        # Fall back to a fully fresh route from the source.
        fresh = shortest_delay_path(
            network, source, destination, forbidden_links=[failed_link]
        )
        if fresh is None:
            return None
        backup = fresh
    else:
        backup = prefix[:-1] + detour

    instance = instance_from_paths(
        network, path, backup, demand=demand, flow_name=flow_name
    )
    feasibility = check_update_feasibility(instance)
    result = greedy_schedule(instance)
    return FailoverPlan(instance=instance, feasibility=feasibility, result=result)
