"""A virtual-time asyncio event loop for deterministic service runs.

The update service is an ordinary asyncio program -- arrival tasks,
planner workers, a simulator pump -- but wall-clock scheduling would
make every run nondeterministic and make a 10-minute workload take 10
minutes.  :class:`VirtualTimeLoop` replaces the clock: ``loop.time()``
returns a virtual timestamp, and whenever the loop has no ready
callbacks it jumps the virtual clock straight to the earliest pending
timer instead of sleeping.  ``await asyncio.sleep(3600)`` costs
microseconds of wall time and always lands on exactly the same virtual
instant, so the whole service run is a deterministic function of the
workload seed -- the property the lockstep tests pin.

The loop refuses to idle: if there are no ready callbacks *and* no
timers, real asyncio would block on the selector forever (nothing can
ever wake a loop with no I/O sources).  In a virtual-time program that
is always a bug -- a coroutine awaiting an event nobody will set -- so
``_run_once`` raises instead of deadlocking.
"""

from __future__ import annotations

import asyncio
import heapq
from typing import Any, Coroutine, TypeVar

T = TypeVar("T")


class VirtualTimeLoop(asyncio.SelectorEventLoop):
    """A selector loop whose clock only moves when timers fire."""

    def __init__(self) -> None:
        super().__init__()
        self._virtual_now = 0.0

    def time(self) -> float:  # noqa: D102 - inherited contract
        return self._virtual_now

    def _run_once(self) -> None:
        if not self._ready:
            # Discard cancelled timers so they cannot pin the clock.
            while self._scheduled and self._scheduled[0]._cancelled:
                handle = heapq.heappop(self._scheduled)
                handle._scheduled = False
            if self._scheduled:
                when = self._scheduled[0]._when
                if when > self._virtual_now:
                    self._virtual_now = when
            elif not self._stopping:
                raise RuntimeError(
                    "virtual-time loop is idle: no ready callbacks and no "
                    "timers -- some coroutine awaits an event that will "
                    "never be set"
                )
        super()._run_once()


def run_virtual(main: Coroutine[Any, Any, T]) -> T:
    """Run ``main`` to completion on a fresh :class:`VirtualTimeLoop`.

    The virtual-time equivalent of :func:`asyncio.run`; the loop is
    closed (and the policy left untouched) before returning.
    """
    loop = VirtualTimeLoop()
    try:
        asyncio.set_event_loop(loop)
        return loop.run_until_complete(main)
    finally:
        try:
            loop.run_until_complete(loop.shutdown_asyncgens())
        finally:
            asyncio.set_event_loop(None)
            loop.close()
