"""Multi-tenant service workloads: a shared topology plus a request stream.

The topology is a set of *pods* -- one tenant flow each -- living in one
shared :class:`~repro.network.graph.Network`.  Each pod has two
alternative paths between its endpoints (the chain ``path_a`` and a
seeded detour ``path_b``, mirroring
:func:`repro.network.topology.two_path_topology`), and every update
request is an intent to move the pod's flow onto one of them.

Pods are pairwise link-disjoint *except* for deliberate crossover edges:
pods ``2k`` and ``2k+1`` both route their detour through the shared
directed edge ``x{k}a -> x{k}b`` (provisioned at double capacity), so
concurrent detour updates of paired tenants genuinely conflict on a
link -- the case the admission controller and batch merging exist for.

Node names are namespaced (``p3s5``), so destination-prefix rule
matching on the shared data plane can never alias across tenants.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.network.graph import Network
from repro.service.requests import UpdateRequest

LinkKey = Tuple[str, str]


@dataclass(frozen=True)
class PodSpec:
    """One tenant: its two paths and the links any update can touch."""

    name: str
    source: str
    destination: str
    path_a: Tuple[str, ...]
    path_b: Tuple[str, ...]
    demand: float
    footprint: FrozenSet[LinkKey]

    def path(self, target: str) -> Tuple[str, ...]:
        if target == "a":
            return self.path_a
        if target == "b":
            return self.path_b
        raise ValueError(f"unknown target {target!r}")


@dataclass
class ServiceWorkload:
    """A shared network, its pods, and the deterministic request stream."""

    network: Network
    pods: List[PodSpec]
    requests: List[UpdateRequest]

    @property
    def pod_by_name(self) -> Dict[str, PodSpec]:
        return {pod.name: pod for pod in self.pods}


def _links_of(path: Sequence[str]) -> List[LinkKey]:
    return [(path[i], path[i + 1]) for i in range(len(path) - 1)]


def build_workload(
    pods: int,
    pod_size: int,
    requests: int,
    mean_interarrival: float,
    seed: int,
    demand: float = 1.0,
    capacity: float = 2.0,
    delay: int = 1,
    share_links: bool = True,
) -> ServiceWorkload:
    """Build the shared topology and a seeded Poisson request stream.

    Args:
        pods: Number of tenants (each one flow, two paths).
        pod_size: Switches on each pod's chain path (``>= 4``).
        requests: Length of the request stream.
        mean_interarrival: Mean of the exponential inter-arrival gap
            (virtual seconds).
        seed: Master seed; every derived draw is a function of it.
        demand: Per-flow rate.
        capacity: Per-link capacity for private links; crossover edges
            get ``2 * capacity`` so paired tenants fit together.  Keep
            ``capacity >= 2 * demand``: a detour can share middle links
            with the chain, and during a move the flow's old and new
            traffic transiently coexist there -- with a single
            traffic-affecting switch no schedule can avoid that overlap,
            so tighter capacities make such intents genuinely
            infeasible (the service then aborts them, which is handled
            but not the default regime).
        delay: Integer link delay steps.
        share_links: Route paired pods' detours over a shared edge so
            cross-tenant conflicts actually occur.
    """
    if pod_size < 4:
        raise ValueError("pod_size must be >= 4 (need detour middle nodes)")
    rng = random.Random(seed)
    network = Network()
    pod_specs: List[PodSpec] = []

    if share_links:
        for k in range((pods + 1) // 2):
            head, tail = f"x{k}a", f"x{k}b"
            network.add_switch(head)
            network.add_switch(tail)
            network.add_link(head, tail, capacity=2.0 * capacity, delay=delay)

    for index in range(pods):
        chain = tuple(f"p{index}s{j}" for j in range(1, pod_size + 1))
        for node in chain:
            network.add_switch(node)
        for src, dst in _links_of(chain):
            network.add_link(src, dst, capacity=capacity, delay=delay)

        middle = list(chain[1:-1])
        crossover: Tuple[str, ...] = ()
        if share_links:
            k = index // 2
            crossover = (f"x{k}a", f"x{k}b")
        path_b: Tuple[str, ...] = chain
        for _ in range(16):
            keep = max(1, len(middle) // 2)
            detour_mid = rng.sample(middle, keep)
            candidate = (chain[0],) + crossover + tuple(detour_mid) + (chain[-1],)
            if candidate != chain:
                path_b = candidate
                break
        if path_b == chain:  # pragma: no cover - 16 identical draws
            raise RuntimeError("could not derive a distinct detour path")
        for src, dst in _links_of(path_b):
            if not network.has_link(src, dst):
                network.add_link(src, dst, capacity=capacity, delay=delay)

        footprint = frozenset(_links_of(chain)) | frozenset(_links_of(path_b))
        pod_specs.append(
            PodSpec(
                name=f"p{index}",
                source=chain[0],
                destination=chain[-1],
                path_a=chain,
                path_b=path_b,
                demand=demand,
                footprint=footprint,
            )
        )

    # Seeded Poisson arrivals; per-tenant intents alternate away from the
    # initially-installed path "a".  A rejected request does not flip the
    # live state, so the follow-up intent legitimately plans to a noop.
    toggle = {pod.name: "b" for pod in pod_specs}
    stream: List[UpdateRequest] = []
    now = 0.0
    for rid in range(requests):
        now += rng.expovariate(1.0 / mean_interarrival)
        pod = pod_specs[rng.randrange(len(pod_specs))]
        target = toggle[pod.name]
        toggle[pod.name] = "a" if target == "b" else "b"
        stream.append(
            UpdateRequest(id=rid, tenant=pod.name, arrival=round(now, 6), target=target)
        )

    return ServiceWorkload(network=network, pods=pod_specs, requests=stream)
