"""Deterministic service metrics: percentiles and the summary block.

Everything here is computed from *virtual* timestamps, so the summary
is byte-identical across runs of the same seed.  Wall-clock throughput
(real updates/sec) is measured only by the bench harness, never inside
pipeline records.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def percentile(values: Sequence[float], q: float) -> Optional[float]:
    """Linear-interpolation percentile (``q`` in [0, 100]); None if empty."""
    if not values:
        return None
    ordered = sorted(values)
    if len(ordered) == 1:
        return round(float(ordered[0]), 9)
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return round(ordered[low] * (1.0 - frac) + ordered[high] * frac, 9)


def latency_summary(latencies: Sequence[float]) -> Dict[str, Optional[float]]:
    """The p50/p95/p99 block the scenario and bench both report."""
    return {
        "p50": percentile(latencies, 50.0),
        "p95": percentile(latencies, 95.0),
        "p99": percentile(latencies, 99.0),
        "max": round(max(latencies), 9) if latencies else None,
    }


def queue_summary(samples: Sequence[int]) -> Dict[str, Optional[float]]:
    """Queue-depth behaviour over the run (sampled once per tick)."""
    if not samples:
        return {"max": None, "mean": None}
    return {
        "max": max(samples),
        "mean": round(sum(samples) / len(samples), 6),
    }
