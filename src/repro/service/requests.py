"""Update requests and their lifecycle state.

A request is an *intent* -- "move tenant ``p3``'s flow onto its detour
path" -- not a concrete :class:`~repro.core.instance.UpdateInstance`.
The service rebases the intent against the tenant's live rule state at
planning time, so a rejected or superseded earlier request can never
corrupt a later one.

Lifecycle::

    pending -> admitted  -> planning -> executing -> completed | aborted
            -> queued    -> (admitted on release) | superseded
            -> rejected
    planning -> noop          (target already installed)

Terminal statuses: ``completed``, ``superseded``, ``noop``,
``rejected``, ``aborted``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

#: Terminal request statuses.
TERMINAL = frozenset({"completed", "superseded", "noop", "rejected", "aborted"})


@dataclass(frozen=True)
class UpdateRequest:
    """One immutable tenant intent in the arrival stream."""

    id: int
    tenant: str
    arrival: float
    target: str  # "a" | "b" -- which of the tenant's two paths to install


@dataclass
class RequestState:
    """Mutable per-request bookkeeping owned by the service."""

    request: UpdateRequest
    status: str = "pending"
    admitted_at: Optional[float] = None
    planned_at: Optional[float] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    batch: Optional[int] = None
    makespan: Optional[float] = None
    switches: Optional[int] = None
    conformant: Optional[bool] = None

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL

    @property
    def latency(self) -> Optional[float]:
        """Arrival-to-terminal virtual latency (None until terminal)."""
        if self.finished_at is None:
            return None
        return round(self.finished_at - self.request.arrival, 9)

    def to_record(self) -> Dict[str, object]:
        """A canonical, deterministic dict for pipeline records."""
        return {
            "id": self.request.id,
            "tenant": self.request.tenant,
            "target": self.request.target,
            "arrival": round(self.request.arrival, 6),
            "status": self.status,
            "batch": self.batch,
            "latency": self.latency,
            "makespan": self.makespan,
            "switches": self.switches,
            "conformant": self.conformant,
        }
