"""The update service: an async controller loop over a shared live plane.

One :class:`UpdateService` owns a shared topology with many tenant
flows, a DES data plane carrying all of them, and an asyncio control
loop (run on the :class:`~repro.service.vclock.VirtualTimeLoop`) with
three kinds of tasks:

* the **arrival task** replays the workload's request stream in virtual
  time and submits each request to the admission controller;
* **planner workers** drain dispatched batches: rebase each tenant's
  intent against its live rule state, plan it with the incremental
  greedy engine (static background load from the other tenants' current
  paths), verify the plan with :mod:`repro.validate`, then execute it
  through the resilient timed executor on the shared plane;
* the **pump task** advances the DES simulator to the virtual clock
  once per time unit, so data-plane events (and executor ``on_finish``
  callbacks) fire at their exact simulated instants, and samples the
  queue depth.

The simulator and the asyncio loop share one time axis; nothing reads
the wall clock, so a cell run is a pure function of its seed.  Requests
are *intents* rebased at planning time, which is what makes rejected,
superseded and aborted requests harmless to later ones: stale off-path
rules simply remain in a tenant's live config (the executor modifies
rather than duplicates them on the next move).
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.controller.channel import (
    ConstantDelayModel,
    ControlChannel,
    StepDelayModel,
)
from repro.controller.controller import Controller
from repro.controller.resilient import perform_resilient_update
from repro.core.instance import UpdateInstance, config_from_path
from repro.network.flows import Flow
from repro.perf import perf
from repro.service.admission import AdmissionController, Batch
from repro.service.metrics import latency_summary, queue_summary
from repro.service.requests import RequestState, UpdateRequest
from repro.service.vclock import run_virtual
from repro.service.workload import (
    LinkKey,
    PodSpec,
    ServiceWorkload,
    _links_of,
    build_workload,
)
from repro.simulator.dataplane import DataPlane, build_dataplane
from repro.simulator.engine import Simulator
from repro.simulator.flowtable import FlowRule, Match
from repro.simulator.switch import HOST_PORT
from repro.trace.recorder import trace_event
from repro.updates.registry import get_planner


@dataclass(frozen=True)
class ServiceConfig:
    """Everything that parameterises one service cell."""

    pods: int = 6
    pod_size: int = 7
    requests: int = 40
    mean_interarrival: float = 3.0
    seed: int = 0
    demand: float = 1.0
    capacity: float = 2.0
    delay: int = 1
    share_links: bool = True
    planners: int = 2
    plan_ticks: int = 1
    max_queue: int = 32
    time_unit: float = 1.0
    lead_ticks: int = 1
    max_retries: int = 3
    verify: bool = True
    #: Registered planner that computes every tenant schedule; any
    #: timed-executor scheme works (``chronus`` default, ``aug``, ...).
    scheme: str = "chronus"


@dataclass
class CellReport:
    """Deterministic outcome of one service cell run."""

    seed: int
    requests: List[Dict[str, object]]
    summary: Dict[str, object]

    def to_record(self) -> Dict[str, object]:
        return {"seed": self.seed, "requests": self.requests, "summary": self.summary}


class UpdateService:
    """The controller service over one workload; see module docstring."""

    def __init__(self, workload: ServiceWorkload, config: ServiceConfig) -> None:
        self.workload = workload
        self.config = config
        self._scheme_planner = get_planner(config.scheme)
        self._sim = Simulator()
        self._plane: DataPlane = build_dataplane(
            self._sim, workload.network, delay_scale=config.time_unit
        )
        channel = ControlChannel(
            self._sim,
            network_delay=ConstantDelayModel(0.0),
            install_delay=StepDelayModel(
                time_unit=config.time_unit, max_steps=1
            ),
            rng=random.Random(config.seed ^ 0xC0FFEE),
        )
        self._controller = Controller(self._sim, channel)
        for switch in self._plane.switches.values():
            self._controller.manage(switch)

        # Live per-tenant state: which path is installed and the exact
        # rule map (including stale off-path rules from earlier moves).
        self._current: Dict[str, str] = {}
        self._rules: Dict[str, Dict[str, str]] = {}
        for pod in workload.pods:
            self._current[pod.name] = "a"
            self._rules[pod.name] = dict(config_from_path(pod.path_a))
            self._install_rules(pod)
            self._plane.inject_flow(
                pod.source, "h1", pod.destination, rate=pod.demand
            )

        self._admission: AdmissionController[RequestState] = AdmissionController(
            max_queue=config.max_queue
        )
        self._states: Dict[int, RequestState] = {
            request.id: RequestState(request=request)
            for request in workload.requests
        }
        self._plan_queue: "asyncio.Queue[Batch[RequestState]]" = asyncio.Queue()
        self._plan_backlog = 0
        self._batches = 0
        self._merged_batches = 0
        self._queue_samples: List[int] = []
        self._pending = len(workload.requests)
        self._all_done = asyncio.Event()

    # ------------------------------------------------------------------
    # plane helpers
    # ------------------------------------------------------------------
    def _install_rules(self, pod: PodSpec) -> None:
        """Install the pod's initial config as dst-prefix rules."""
        for node, nxt in self._rules[pod.name].items():
            switch = self._plane.switch(node)
            switch.table.add(
                FlowRule(
                    name=pod.name,
                    match=Match(dst_prefix=pod.destination),
                    out_port=self._plane.port_of(node, nxt),
                )
            )
            switch.on_table_changed()
        destination = self._plane.switch(pod.destination)
        destination.table.add(
            FlowRule(
                name=pod.name,
                match=Match(dst_prefix=pod.destination),
                out_port=HOST_PORT,
            )
        )
        destination.on_table_changed()

    def _background_for(self, pod: PodSpec) -> Optional[Dict[LinkKey, Tuple]]:
        """Static load other tenants put on this pod's footprint links.

        Admission guarantees no in-flight update touches these links, so
        every other tenant sits stably on its current path -- a constant
        background load, exactly the shape the tracker consumes.
        Restricted to the pod's own footprint so the incremental engine
        never sweeps unrelated links.
        """
        loads: Dict[LinkKey, float] = {}
        for other in self.workload.pods:
            if other.name == pod.name:
                continue
            path = other.path(self._current[other.name])
            for link in _links_of(path):
                if link in pod.footprint:
                    loads[link] = loads.get(link, 0.0) + other.demand
        if not loads:
            return None
        return {link: ((None, None, load),) for link, load in sorted(loads.items())}

    def _instance_for(self, pod: PodSpec, target: str) -> UpdateInstance:
        """Rebase the intent on the tenant's live rules."""
        return UpdateInstance(
            network=self.workload.network,
            flow=Flow(
                name=pod.name,
                source=pod.source,
                destination=pod.destination,
                demand=pod.demand,
            ),
            old_config=dict(self._rules[pod.name]),
            new_config=dict(config_from_path(pod.path(target))),
        )

    # ------------------------------------------------------------------
    # lifecycle bookkeeping
    # ------------------------------------------------------------------
    def _terminal(self, state: RequestState, status: str, when: float) -> None:
        state.status = status
        state.finished_at = when
        self._pending -= 1
        trace_event(
            "service.done",
            request=state.request.id,
            tenant=state.request.tenant,
            status=status,
        )
        if self._pending <= 0:
            self._all_done.set()

    def _dispatch(self, batch: Batch[RequestState], now: float) -> None:
        self._batches += 1
        if len(batch.items) > 1:
            self._merged_batches += 1
        for state in batch.items:
            state.status = "admitted"
            if state.admitted_at is None:
                state.admitted_at = now
        self._plan_backlog += len(batch.items)
        self._plan_queue.put_nowait(batch)

    # ------------------------------------------------------------------
    # tasks
    # ------------------------------------------------------------------
    async def _arrivals(self) -> None:
        loop = asyncio.get_running_loop()
        for request in self.workload.requests:
            delay = request.arrival - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            self._submit(self._states[request.id], loop.time())

    def _submit(self, state: RequestState, now: float) -> None:
        pod = self.workload.pod_by_name[state.request.tenant]
        decision, batch = self._admission.offer(state, pod.footprint)
        trace_event(
            "service.admit",
            request=state.request.id,
            tenant=state.request.tenant,
            decision=decision,
        )
        if decision == "admitted":
            assert batch is not None
            self._dispatch(batch, now)
        elif decision == "queued":
            state.status = "queued"
        else:
            self._terminal(state, "rejected", now)

    async def _pump(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            self._sim.run(until=loop.time())
            self._queue_samples.append(
                self._admission.queue_depth + self._plan_backlog
            )
            await asyncio.sleep(self.config.time_unit)

    async def _planner(self, worker: int) -> None:
        while True:
            batch = await self._plan_queue.get()
            try:
                await self._process_batch(batch)
            finally:
                self._plan_queue.task_done()

    async def _process_batch(self, batch: Batch[RequestState]) -> None:
        loop = asyncio.get_running_loop()
        config = self.config
        tick = config.time_unit
        self._plan_backlog -= len(batch.items)

        # Merge: per tenant, the *last* request in the batch wins; every
        # earlier one is superseded by it and shares its fate.
        by_tenant: Dict[str, List[RequestState]] = {}
        for state in batch.items:
            state.batch = batch.token
            state.status = "planning"
            by_tenant.setdefault(state.request.tenant, []).append(state)

        plans: List[Tuple[PodSpec, RequestState, List[RequestState], object, object, object]] = []
        noops: List[Tuple[RequestState, List[RequestState]]] = []
        with perf.span("service.plan"):
            for tenant, group in by_tenant.items():
                effective, superseded = group[-1], group[:-1]
                pod = self.workload.pod_by_name[tenant]
                target = effective.request.target
                if target == self._current[tenant]:
                    noops.append((effective, superseded))
                    continue
                instance = self._instance_for(pod, target)
                background = self._background_for(pod)
                result = self._scheme_planner.plan(instance, background=background)
                plans.append(
                    (pod, effective, superseded, instance, result, background)
                )
                trace_event(
                    "service.plan",
                    batch=batch.token,
                    tenant=tenant,
                    request=effective.request.id,
                    feasible=result.feasible,
                    makespan=result.schedule.makespan,
                    switches=len(instance.switches_to_update),
                )

        # Planning service time: one charge per planning call (batch).
        if config.plan_ticks > 0:
            await asyncio.sleep(config.plan_ticks * tick)
        planned_at = loop.time()
        for effective, superseded in noops:
            effective.planned_at = planned_at
            self._terminal(effective, "noop", planned_at)
            for state in superseded:
                state.planned_at = planned_at
                self._terminal(state, "superseded", planned_at)

        try:
            for pod, effective, superseded, instance, result, background in plans:
                group = superseded + [effective]
                for state in group:
                    state.planned_at = planned_at
                if not result.feasible:
                    now = loop.time()
                    for state in superseded:
                        self._terminal(state, "superseded", now)
                    self._terminal(effective, "aborted", now)
                    continue

                conformant: Optional[bool] = None
                if config.verify:
                    conformant = self._scheme_planner.verify(
                        instance, result.schedule, background=background
                    ).ok

                start_at = max(self._sim.now, loop.time()) + config.lead_ticks * tick
                deadline = start_at + (
                    result.schedule.makespan + 8 + 4 * config.max_retries
                ) * tick
                done = asyncio.Event()
                trace = perform_resilient_update(
                    self._controller,
                    self._plane,
                    instance,
                    result.schedule,
                    strategy="timed",
                    time_unit=tick,
                    start_at=start_at,
                    retry_timeout=4.0 * tick,
                    max_retries=config.max_retries,
                    deadline=deadline,
                    on_finish=lambda _trace, _event=done: _event.set(),
                )
                effective.started_at = start_at
                await done.wait()
                finished = loop.time()

                if trace.aborted:
                    status = "aborted"
                else:
                    status = "completed"
                    # Commit the live state: overlay the new next hops;
                    # stale off-path rules stay behind, as on real switches.
                    self._rules[pod.name].update(instance.new_config)
                    self._current[pod.name] = effective.request.target
                effective.makespan = result.schedule.makespan
                effective.switches = len(instance.switches_to_update)
                effective.conformant = conformant
                trace_event(
                    "service.execute",
                    batch=batch.token,
                    request=effective.request.id,
                    tenant=pod.name,
                    status=status,
                    makespan=result.schedule.makespan,
                )
                for state in superseded:
                    state.conformant = conformant
                    self._terminal(state, "superseded", finished)
                self._terminal(effective, status, finished)
        finally:
            now = loop.time()
            for ready in self._admission.release(batch.token):
                self._dispatch(ready, now)

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    async def run(self) -> CellReport:
        config = self.config
        loop = asyncio.get_running_loop()
        workers = [
            asyncio.ensure_future(self._planner(i)) for i in range(config.planners)
        ]
        pump = asyncio.ensure_future(self._pump())
        arrivals = asyncio.ensure_future(self._arrivals())

        # Generous virtual-time safety net: deterministic, never reached
        # in a healthy run.
        last_arrival = (
            self.workload.requests[-1].arrival if self.workload.requests else 0.0
        )
        horizon = last_arrival + (
            len(self.workload.requests) + 1
        ) * (config.plan_ticks + 40 + 4 * config.max_retries) * config.time_unit
        try:
            await asyncio.wait_for(self._all_done.wait(), timeout=horizon)
        except asyncio.TimeoutError:  # pragma: no cover - safety net
            now = loop.time()
            for state in self._states.values():
                if not state.terminal:
                    self._terminal(state, "aborted", now)
        finally:
            for task in [arrivals, pump, *workers]:
                task.cancel()
            await asyncio.gather(arrivals, pump, *workers, return_exceptions=True)

        # Drain in-flight data-plane traffic past the last control event.
        self._sim.run(until=self._sim.now + 5.0 * config.time_unit)
        return self._report()

    def _report(self) -> CellReport:
        states = [self._states[rid] for rid in sorted(self._states)]
        counts: Dict[str, int] = {}
        for state in states:
            counts[state.status] = counts.get(state.status, 0) + 1
        served = [
            state
            for state in states
            if state.status in ("completed", "superseded", "noop")
        ]
        latencies = [state.latency for state in served if state.latency is not None]
        finished = [
            state.finished_at for state in states if state.finished_at is not None
        ]
        first_arrival = states[0].request.arrival if states else 0.0
        duration = (max(finished) - first_arrival) if finished else 0.0
        throughput = (
            round(len(served) / duration, 6) if duration > 0 else None
        )
        summary: Dict[str, object] = {
            "requests": len(states),
            "completed": counts.get("completed", 0),
            "superseded": counts.get("superseded", 0),
            "noop": counts.get("noop", 0),
            "rejected": counts.get("rejected", 0),
            "aborted": counts.get("aborted", 0),
            "batches": self._batches,
            "merged_batches": self._merged_batches,
            "virtual_duration": round(duration, 6),
            "virtual_updates_per_sec": throughput,
            "latency": latency_summary(latencies),
            "queue": queue_summary(self._queue_samples),
            "conformant_all": all(
                state.conformant is not False for state in states
            ),
            "blackholed": round(self._plane.total_blackholed(), 9),
        }
        return CellReport(
            seed=self.config.seed,
            requests=[state.to_record() for state in states],
            summary=summary,
        )


def run_cell(config: ServiceConfig) -> CellReport:
    """Build the workload for ``config`` and run one full service cell."""
    workload = build_workload(
        pods=config.pods,
        pod_size=config.pod_size,
        requests=config.requests,
        mean_interarrival=config.mean_interarrival,
        seed=config.seed,
        demand=config.demand,
        capacity=config.capacity,
        delay=config.delay,
        share_links=config.share_links,
    )

    async def main() -> CellReport:
        service = UpdateService(workload, config)
        return await service.run()

    return run_virtual(main())
