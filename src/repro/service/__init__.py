"""``repro.service``: the long-running Timed-SDN update service.

Chronus' batch entry points plan one update at a time; a real
controller is a *service* -- requests arrive continuously against one
shared live topology.  This package provides that loop: a deterministic
virtual-time asyncio runtime (:mod:`repro.service.vclock`), a
footprint-based admission controller with FIFO queueing and batch
merging (:mod:`repro.service.admission`), a multi-tenant workload
generator (:mod:`repro.service.workload`) and the service itself
(:mod:`repro.service.service`), which plans with the incremental greedy
engine, verifies with :mod:`repro.validate` and executes through the
resilient timed executor on a shared DES data plane.

The registered pipeline scenario lives in
:mod:`repro.experiments.service`; run it with::

    python -m repro.experiments run service
"""

from repro.service.admission import AdmissionController, Batch
from repro.service.requests import TERMINAL, RequestState, UpdateRequest
from repro.service.service import (
    CellReport,
    ServiceConfig,
    UpdateService,
    run_cell,
)
from repro.service.vclock import VirtualTimeLoop, run_virtual
from repro.service.workload import PodSpec, ServiceWorkload, build_workload

__all__ = [
    "AdmissionController",
    "Batch",
    "CellReport",
    "PodSpec",
    "RequestState",
    "ServiceConfig",
    "ServiceWorkload",
    "TERMINAL",
    "UpdateRequest",
    "UpdateService",
    "VirtualTimeLoop",
    "build_workload",
    "run_cell",
    "run_virtual",
]
