"""Admission control and batch merging over link footprints.

Every request carries a *footprint*: the set of directed links its
tenant's update could touch (both paths -- the planner may move the flow
either way).  The controller is deliberately topology-agnostic: it only
intersects footprints, so it works unchanged for any workload shape.

Rules:

* A request whose footprint is disjoint from every in-flight update and
  every queued request is **admitted** immediately as its own batch.
* A conflicting request is **queued** (FIFO) -- including conflicts with
  *queued* requests, so overlapping requests can never leapfrog.
* When the queue is full the request is **rejected**.
* When an in-flight batch finishes (:meth:`release`), queued requests
  are grouped into maximal overlap-connected components (union-find) in
  arrival order; every component that no longer conflicts with anything
  in flight is dispatched as **one merged batch** -- one planning call
  for all the requests that touch those links.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Generic, List, Optional, Tuple, TypeVar

T = TypeVar("T")

Footprint = FrozenSet[Tuple[str, str]]


@dataclass
class Batch(Generic[T]):
    """A dispatched unit of work: one or more merged requests."""

    token: int
    items: List[T]
    footprint: Footprint


class AdmissionController(Generic[T]):
    """Footprint-intersection admission with FIFO queueing and merging."""

    def __init__(self, max_queue: int = 32) -> None:
        self.max_queue = max_queue
        self._in_flight: Dict[int, Footprint] = {}
        self._queue: List[Tuple[T, Footprint]] = []
        self._tokens = itertools.count()
        self.rejected = 0

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def in_flight_count(self) -> int:
        return len(self._in_flight)

    def _conflicts_in_flight(self, footprint: Footprint) -> bool:
        return any(footprint & held for held in self._in_flight.values())

    def _conflicts_queued(self, footprint: Footprint) -> bool:
        return any(footprint & queued for _, queued in self._queue)

    # ------------------------------------------------------------------
    def offer(self, item: T, footprint: Footprint) -> Tuple[str, Optional[Batch[T]]]:
        """Submit one request.

        Returns ``("admitted", batch)``, ``("queued", None)`` or
        ``("rejected", None)``.
        """
        if self._conflicts_in_flight(footprint) or self._conflicts_queued(footprint):
            if len(self._queue) >= self.max_queue:
                self.rejected += 1
                return "rejected", None
            self._queue.append((item, footprint))
            return "queued", None
        token = next(self._tokens)
        self._in_flight[token] = footprint
        return "admitted", Batch(token=token, items=[item], footprint=footprint)

    def release(self, token: int) -> List[Batch[T]]:
        """Finish an in-flight batch; dispatch every unblocked queue group."""
        self._in_flight.pop(token, None)
        if not self._queue:
            return []

        # Union-find over queue positions: connect overlapping footprints.
        parent = list(range(len(self._queue)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        for i in range(len(self._queue)):
            for j in range(i + 1, len(self._queue)):
                if self._queue[i][1] & self._queue[j][1]:
                    ri, rj = find(i), find(j)
                    if ri != rj:
                        parent[rj] = ri

        groups: Dict[int, List[int]] = {}
        for i in range(len(self._queue)):
            groups.setdefault(find(i), []).append(i)

        dispatched: List[Batch[T]] = []
        taken: set = set()
        # Components in arrival order of their earliest member; components
        # are pairwise disjoint, so dispatching one cannot block another.
        for root in sorted(groups, key=lambda r: min(groups[r])):
            members = groups[root]
            merged: Footprint = frozenset().union(
                *(self._queue[i][1] for i in members)
            )
            if self._conflicts_in_flight(merged):
                continue
            token = next(self._tokens)
            self._in_flight[token] = merged
            dispatched.append(
                Batch(
                    token=token,
                    items=[self._queue[i][0] for i in members],
                    footprint=merged,
                )
            )
            taken.update(members)
        if taken:
            self._queue = [
                entry for i, entry in enumerate(self._queue) if i not in taken
            ]
        return dispatched

    def reset(self) -> None:
        """Drop all state (topology change); queued items are abandoned."""
        self._in_flight.clear()
        self._queue.clear()
