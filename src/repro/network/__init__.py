"""Network substrate: directed graphs, paths, flows and topology generators.

This package provides the static network model that every Chronus algorithm
operates on: a directed graph whose links carry a *capacity* (how much flow
they can hold at one instant) and an integer *transmission delay* (how many
time steps a unit of flow needs to traverse the link).  It deliberately does
not know anything about updates or schedules -- that lives in
:mod:`repro.core`.
"""

from repro.network.graph import Link, Network
from repro.network.paths import Path, path_delay, path_links
from repro.network.flows import Flow
from repro.network import topology

__all__ = [
    "Link",
    "Network",
    "Path",
    "path_delay",
    "path_links",
    "Flow",
    "topology",
]
