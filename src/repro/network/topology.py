"""Topology and workload generators.

The paper's simulations fix the initial routing path and draw the final
routing path at random ("the final path is based on random routing"), with
both paths sharing source and destination.  :func:`two_path_topology`
reproduces that workload; the remaining generators provide classic fabrics
(linear, ring, Waxman, fat-tree) for the examples and for stress tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.network.graph import DEFAULT_CAPACITY, DEFAULT_DELAY, Network, Node
from repro.network.paths import Path, as_path, path_links


@dataclass(frozen=True)
class TwoPathTopology:
    """A network together with an initial and a final routing path.

    This is the raw material of one *update instance*: both paths share
    their first (source) and last (destination) node.
    """

    network: Network
    old_path: Path
    new_path: Path

    def __post_init__(self) -> None:
        if self.old_path[0] != self.new_path[0]:
            raise ValueError("old and new path must share their source")
        if self.old_path[-1] != self.new_path[-1]:
            raise ValueError("old and new path must share their destination")

    @property
    def source(self) -> Node:
        return self.old_path[0]

    @property
    def destination(self) -> Node:
        return self.old_path[-1]


def switch_names(count: int, prefix: str = "v") -> List[Node]:
    """``[v1, v2, ..., v<count>]`` -- the paper's switch naming."""
    if count < 2:
        raise ValueError("need at least two switches")
    return [f"{prefix}{i}" for i in range(1, count + 1)]


def linear_topology(
    count: int,
    capacity: float = DEFAULT_CAPACITY,
    delay: int = DEFAULT_DELAY,
) -> Tuple[Network, Path]:
    """A chain ``v1 -> v2 -> ... -> vn`` and the path along it."""
    nodes = switch_names(count)
    net = Network()
    for src, dst in zip(nodes, nodes[1:]):
        net.add_link(src, dst, capacity=capacity, delay=delay)
    return net, as_path(nodes)


def ring_topology(
    count: int,
    capacity: float = DEFAULT_CAPACITY,
    delay: int = DEFAULT_DELAY,
    bidirectional: bool = True,
) -> Network:
    """A ring over ``count`` switches, optionally with both directions."""
    nodes = switch_names(count)
    net = Network()
    for i, src in enumerate(nodes):
        dst = nodes[(i + 1) % count]
        net.add_link(src, dst, capacity=capacity, delay=delay)
        if bidirectional:
            net.add_link(dst, src, capacity=capacity, delay=delay)
    return net


def two_path_topology(
    count: int,
    rng: Optional[random.Random] = None,
    capacity: float = DEFAULT_CAPACITY,
    delay: int = DEFAULT_DELAY,
    max_delay: Optional[int] = None,
    detour_fraction: float = 1.0,
) -> TwoPathTopology:
    """The paper's simulation workload: fixed initial path, random final path.

    The initial path is the chain ``v1 -> ... -> vn``.  The final path starts
    and ends at the same source/destination and routes through a random
    subsequence (in random order) of the intermediate switches; links missing
    from the chain are added on demand.  With ``detour_fraction`` below 1.0
    only that fraction of intermediate switches appears on the final path.

    Args:
        count: Number of switches ``n``; the initial path spans all of them.
        rng: Random source; a fresh unseeded one is used when omitted.
        capacity: Uniform link capacity (the paper uses links as tight as the
            flow demand, e.g. 5 Mbps links carrying a 5 Mbps flow).
        delay: Uniform link delay, used when ``max_delay`` is ``None``.
        max_delay: When given, each link's delay is drawn uniformly from
            ``[1, max_delay]`` (the Mininet setup draws delays from a range).
        detour_fraction: Fraction of intermediate switches on the final path.

    Returns:
        A :class:`TwoPathTopology` with both paths present in the network.
    """
    if rng is None:
        rng = random.Random()
    if not 0.0 <= detour_fraction <= 1.0:
        raise ValueError("detour_fraction must be within [0, 1]")

    nodes = switch_names(count)
    source, destination = nodes[0], nodes[-1]
    middle = nodes[1:-1]

    def draw_delay() -> int:
        if max_delay is None:
            return delay
        return rng.randint(1, max_delay)

    net = Network()
    old_path = as_path(nodes)
    for src, dst in path_links(old_path):
        net.add_link(src, dst, capacity=capacity, delay=draw_delay())

    keep = max(0, round(len(middle) * detour_fraction))
    detour = rng.sample(middle, keep) if keep else []
    new_path = as_path([source, *detour, destination])
    for src, dst in path_links(new_path):
        if not net.has_link(src, dst):
            net.add_link(src, dst, capacity=capacity, delay=draw_delay())
    return TwoPathTopology(network=net, old_path=old_path, new_path=new_path)


def reversal_topology(
    count: int,
    capacity: float = DEFAULT_CAPACITY,
    delay: int = DEFAULT_DELAY,
) -> TwoPathTopology:
    """An adversarial instance: the final path reverses the chain's middle.

    Old path ``v1 -> v2 -> ... -> vn``; new path
    ``v1 -> v(n-1) -> v(n-2) -> ... -> v2 -> vn``.  Every middle link of the
    new path is the reversal of an old link, which maximises transient-loop
    hazards and forces a long sequential update schedule.
    """
    nodes = switch_names(count)
    net = Network()
    old_path = as_path(nodes)
    for src, dst in path_links(old_path):
        net.add_link(src, dst, capacity=capacity, delay=delay)
    new_nodes = [nodes[0], *reversed(nodes[1:-1]), nodes[-1]]
    new_path = as_path(new_nodes)
    for src, dst in path_links(new_path):
        if not net.has_link(src, dst):
            net.add_link(src, dst, capacity=capacity, delay=delay)
    return TwoPathTopology(network=net, old_path=old_path, new_path=new_path)


def segmented_reversal_topology(
    count: int,
    rng: Optional[random.Random] = None,
    segments: int = 4,
    max_segment_length: int = 12,
    capacity: float = DEFAULT_CAPACITY,
    delay: int = DEFAULT_DELAY,
) -> TwoPathTopology:
    """Locally rerouted final paths: a few reversed segments on a long chain.

    At the scale of the paper's Figs. 10 and 11 (hundreds to thousands of
    switches with update times of ~15 time units) the random final route
    must differ from the initial one only *locally*.  This generator
    reverses a handful of disjoint middle segments of the chain -- each a
    copy of the paper's Fig. 1 pattern, which needs a short sequential
    timed schedule -- leaving the rest of the path untouched.

    Args:
        count: Total switches (the chain spans all of them).
        rng: Random source.
        segments: Number of reversed segments (independent of ``count``).
        max_segment_length: Longest reversed segment (drives the makespan).
        capacity: Uniform link capacity.
        delay: Uniform link delay.
    """
    if rng is None:
        rng = random.Random()
    nodes = switch_names(count)
    net = Network()
    old_path = as_path(nodes)
    for src, dst in path_links(old_path):
        net.add_link(src, dst, capacity=capacity, delay=delay)

    # Choose disjoint segments [a, b] (indices into the chain's middle).
    chosen: List[Tuple[int, int]] = []
    occupied: set = set()
    attempts = 0
    while len(chosen) < segments and attempts < segments * 20:
        attempts += 1
        length = rng.randint(3, max(3, max_segment_length))
        start = rng.randint(1, max(1, count - length - 2))
        span = range(start, start + length)
        if any(i in occupied for i in span):
            continue
        occupied.update(span)
        chosen.append((start, start + length - 1))
    chosen.sort()

    new_nodes: List[Node] = []
    index = 0
    for a, b in chosen:
        new_nodes.extend(nodes[index:a])
        # The Fig. 1 pattern: enter at nodes[a], traverse the segment's
        # interior in reverse, exit to nodes[b + 1] via nodes[a]'s successor
        # order: a, b, b-1, ..., a+1, then continue at b+1.
        new_nodes.append(nodes[a])
        new_nodes.extend(reversed(nodes[a + 1: b + 1]))
        index = b + 1
    new_nodes.extend(nodes[index:])
    new_path = as_path(new_nodes)

    # New links spanning k old-path hops get delay k * delay: the detour is
    # at least as slow as the segment it replaces (phi(p) >= phi(q), the
    # feasibility condition of Algorithm 1), so a congestion-free timed
    # schedule exists -- an adjacent swap with equal delays provably has
    # none under tight capacities.
    position = {node: i for i, node in enumerate(nodes)}
    for src, dst in path_links(new_path):
        if not net.has_link(src, dst):
            span = max(1, abs(position[dst] - position[src]))
            net.add_link(src, dst, capacity=capacity, delay=span * delay)
    return TwoPathTopology(network=net, old_path=old_path, new_path=new_path)


def waxman_topology(
    count: int,
    rng: Optional[random.Random] = None,
    alpha: float = 0.4,
    beta: float = 0.6,
    capacity: float = DEFAULT_CAPACITY,
    max_delay: int = 3,
) -> Network:
    """A Waxman random graph: classic WAN-like topology generator.

    Switches are placed uniformly in the unit square; a bidirectional link
    between ``u`` and ``v`` at distance ``d`` exists with probability
    ``alpha * exp(-d / (beta * sqrt(2)))``.  Link delay grows with distance.
    """
    if rng is None:
        rng = random.Random()
    nodes = switch_names(count)
    coords = {node: (rng.random(), rng.random()) for node in nodes}
    net = Network()
    for node in nodes:
        net.add_switch(node)
    max_dist = 2 ** 0.5
    for i, u in enumerate(nodes):
        for v in nodes[i + 1:]:
            ux, uy = coords[u]
            vx, vy = coords[v]
            dist = ((ux - vx) ** 2 + (uy - vy) ** 2) ** 0.5
            prob = alpha * (2.718281828459045 ** (-dist / (beta * max_dist)))
            if rng.random() < prob:
                hop_delay = max(1, round(dist / max_dist * max_delay))
                net.add_link(u, v, capacity=capacity, delay=hop_delay)
                net.add_link(v, u, capacity=capacity, delay=hop_delay)
    return net


def fat_tree_topology(k: int, capacity: float = DEFAULT_CAPACITY, delay: int = DEFAULT_DELAY) -> Network:
    """A ``k``-ary fat-tree (``k`` even): the canonical data-center fabric.

    Switch naming: ``core<i>``, ``agg<pod>_<i>``, ``edge<pod>_<i>``.  All
    links are bidirectional.
    """
    if k % 2 != 0 or k < 2:
        raise ValueError("fat-tree arity k must be a positive even number")
    half = k // 2
    net = Network()
    cores = [f"core{i}" for i in range(half * half)]
    for pod in range(k):
        aggs = [f"agg{pod}_{i}" for i in range(half)]
        edges = [f"edge{pod}_{i}" for i in range(half)]
        for agg in aggs:
            for edge in edges:
                net.add_link(agg, edge, capacity=capacity, delay=delay)
                net.add_link(edge, agg, capacity=capacity, delay=delay)
        for i, agg in enumerate(aggs):
            for j in range(half):
                core = cores[i * half + j]
                net.add_link(core, agg, capacity=capacity, delay=delay)
                net.add_link(agg, core, capacity=capacity, delay=delay)
    return net


def emulation_topology(
    count: int = 10,
    capacity_mbps: float = 5.0,
    rng: Optional[random.Random] = None,
    max_delay: int = 4,
) -> TwoPathTopology:
    """The Mininet-experiment analogue: a small tight-capacity topology.

    Ten switches with 5 Mbps links, link delays drawn from a small integer
    range, fixed initial path, random final path -- mirroring Section V-A's
    setup (the paper draws delays between 5 ms and 1 s; we keep integer
    steps and let the simulator map steps to wall-clock seconds).
    """
    return two_path_topology(
        count,
        rng=rng,
        capacity=capacity_mbps,
        max_delay=max_delay,
    )
