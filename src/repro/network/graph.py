"""Directed network graph with per-link capacity and transmission delay.

The model follows Section II-B of the paper: a network is a directed graph
``G = (V, E)`` where every link ``(u, v)`` has a capacity ``C_{u,v}`` and an
integer transmission delay ``sigma_{u,v}`` (one unit of flow leaving ``u`` at
time ``t`` arrives at ``v`` at time ``t + sigma_{u,v}``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

Node = str

DEFAULT_CAPACITY = 1.0
DEFAULT_DELAY = 1


@dataclass(frozen=True)
class Link:
    """A directed link ``src -> dst`` with capacity and integer delay.

    Attributes:
        src: Tail switch of the link.
        dst: Head switch of the link.
        capacity: Maximum amount of flow the link can carry at any single
            moment in time (``C_{u,v}`` in the paper).
        delay: Transmission delay in discrete time steps
            (``sigma_{u,v}`` in the paper); must be a positive integer.
    """

    src: Node
    dst: Node
    capacity: float = DEFAULT_CAPACITY
    delay: int = DEFAULT_DELAY

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"self-loop link {self.src!r} -> {self.dst!r}")
        if self.capacity <= 0:
            raise ValueError(f"link capacity must be positive, got {self.capacity}")
        if not isinstance(self.delay, int) or self.delay < 1:
            raise ValueError(f"link delay must be a positive integer, got {self.delay}")

    @property
    def endpoints(self) -> Tuple[Node, Node]:
        """The ``(src, dst)`` pair identifying this link."""
        return (self.src, self.dst)


class Network:
    """A directed graph of switches and links.

    Switches are identified by strings.  At most one link may exist per
    ordered switch pair; parallel links are rejected, while anti-parallel
    links (``u -> v`` and ``v -> u``) are allowed and independent.

    Example:
        >>> net = Network()
        >>> net.add_link("v1", "v2", capacity=1.0, delay=1)
        Link(src='v1', dst='v2', capacity=1.0, delay=1)
        >>> net.has_link("v1", "v2")
        True
    """

    def __init__(self) -> None:
        self._nodes: Dict[Node, None] = {}
        self._links: Dict[Tuple[Node, Node], Link] = {}
        self._out: Dict[Node, List[Node]] = {}
        self._in: Dict[Node, List[Node]] = {}
        self._delay_map: Optional[Dict[Tuple[Node, Node], int]] = None
        self._capacity_map: Optional[Dict[Tuple[Node, Node], float]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_switch(self, node: Node) -> None:
        """Register a switch; idempotent."""
        if node not in self._nodes:
            self._nodes[node] = None
            self._out[node] = []
            self._in[node] = []

    def add_link(
        self,
        src: Node,
        dst: Node,
        capacity: float = DEFAULT_CAPACITY,
        delay: int = DEFAULT_DELAY,
    ) -> Link:
        """Add a directed link; endpoints are registered automatically.

        Raises:
            ValueError: if the link already exists.
        """
        key = (src, dst)
        if key in self._links:
            raise ValueError(f"duplicate link {src!r} -> {dst!r}")
        link = Link(src, dst, capacity=capacity, delay=delay)
        self.add_switch(src)
        self.add_switch(dst)
        self._links[key] = link
        self._out[src].append(dst)
        self._in[dst].append(src)
        return link

    def ensure_link(
        self,
        src: Node,
        dst: Node,
        capacity: float = DEFAULT_CAPACITY,
        delay: int = DEFAULT_DELAY,
    ) -> Link:
        """Return the existing link ``src -> dst`` or create it."""
        existing = self._links.get((src, dst))
        if existing is not None:
            return existing
        return self.add_link(src, dst, capacity=capacity, delay=delay)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def switches(self) -> List[Node]:
        """All switches, in insertion order."""
        return list(self._nodes)

    @property
    def links(self) -> List[Link]:
        """All links, in insertion order."""
        return list(self._links.values())

    def __contains__(self, node: Node) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def has_link(self, src: Node, dst: Node) -> bool:
        """Whether the directed link ``src -> dst`` exists."""
        return (src, dst) in self._links

    def link(self, src: Node, dst: Node) -> Link:
        """The link ``src -> dst``.

        Raises:
            KeyError: if the link does not exist.
        """
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise KeyError(f"no link {src!r} -> {dst!r}") from None

    def get_link(self, src: Node, dst: Node) -> Optional[Link]:
        """The link ``src -> dst`` or ``None``."""
        return self._links.get((src, dst))

    def capacity(self, src: Node, dst: Node) -> float:
        """Capacity ``C_{src,dst}``; raises ``KeyError`` if absent."""
        return self.link(src, dst).capacity

    def delay(self, src: Node, dst: Node) -> int:
        """Delay ``sigma_{src,dst}``; raises ``KeyError`` if absent."""
        return self.link(src, dst).delay

    def delay_map(self) -> Dict[Tuple[Node, Node], int]:
        """Flat ``(src, dst) -> delay`` dict for hot-path lookups.

        Rebuilt lazily whenever links were added since the last call;
        callers must not mutate the returned dict.
        """
        cached = self._delay_map
        if cached is None or len(cached) != len(self._links):
            cached = {key: link.delay for key, link in self._links.items()}
            self._delay_map = cached
        return cached

    def capacity_map(self) -> Dict[Tuple[Node, Node], float]:
        """Flat ``(src, dst) -> capacity`` dict (see :meth:`delay_map`)."""
        cached = self._capacity_map
        if cached is None or len(cached) != len(self._links):
            cached = {key: link.capacity for key, link in self._links.items()}
            self._capacity_map = cached
        return cached

    def successors(self, node: Node) -> List[Node]:
        """Heads of out-links of ``node``."""
        return list(self._out.get(node, ()))

    def predecessors(self, node: Node) -> List[Node]:
        """Tails of in-links of ``node``."""
        return list(self._in.get(node, ()))

    def out_links(self, node: Node) -> Iterator[Link]:
        """Iterate over the out-links of ``node``."""
        for dst in self._out.get(node, ()):
            yield self._links[(node, dst)]

    def in_links(self, node: Node) -> Iterator[Link]:
        """Iterate over the in-links of ``node``."""
        for src in self._in.get(node, ()):
            yield self._links[(src, node)]

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def copy(self) -> "Network":
        """A structural copy sharing no mutable state."""
        clone = Network()
        for node in self._nodes:
            clone.add_switch(node)
        for link in self._links.values():
            clone.add_link(link.src, link.dst, capacity=link.capacity, delay=link.delay)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Network(switches={len(self._nodes)}, links={len(self._links)})"


def network_from_links(links: Iterable[Tuple[Node, Node]], capacity: float = DEFAULT_CAPACITY, delay: int = DEFAULT_DELAY) -> Network:
    """Build a :class:`Network` from ``(src, dst)`` pairs with uniform attributes."""
    net = Network()
    for src, dst in links:
        net.add_link(src, dst, capacity=capacity, delay=delay)
    return net
