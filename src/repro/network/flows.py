"""Flow model.

A *dynamic flow* (Definition 1 in the paper, after Ford & Fulkerson) is a
constant-rate flow whose per-link utilisation varies over time as rules
change and in-flight traffic drains.  The static part -- who talks to whom
and at what rate -- is captured here; the temporal behaviour lives in
:mod:`repro.core.trace` and :mod:`repro.core.intervals`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.graph import Node


@dataclass(frozen=True)
class Flow:
    """A constant-rate traffic aggregate between two switches.

    Attributes:
        name: Identifier used in flow tables and reports.
        source: Ingress switch (``v+`` in the paper).
        destination: Egress switch (``v-`` in the paper).
        demand: Rate ``d`` in capacity units per time step; positive.
    """

    name: str
    source: Node
    destination: Node
    demand: float = 1.0

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise ValueError("flow source and destination must differ")
        if self.demand <= 0:
            raise ValueError(f"flow demand must be positive, got {self.demand}")
