"""Path utilities over :class:`repro.network.graph.Network`.

A *path* is an ordered node sequence; the paper writes ``phi(p)`` for the sum
of link delays along a path, which :func:`path_delay` computes.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from repro.network.graph import Network, Node

Path = Tuple[Node, ...]


def as_path(nodes: Sequence[Node]) -> Path:
    """Normalise a node sequence into a :data:`Path` tuple.

    Raises:
        ValueError: for paths shorter than two nodes or with immediate
            repetitions.
    """
    path = tuple(nodes)
    if len(path) < 2:
        raise ValueError(f"a path needs at least two nodes, got {path!r}")
    for a, b in zip(path, path[1:]):
        if a == b:
            raise ValueError(f"path repeats node {a!r} consecutively")
    return path


def path_links(path: Sequence[Node]) -> Iterator[Tuple[Node, Node]]:
    """Iterate over the ``(src, dst)`` link pairs of ``path``."""
    for a, b in zip(path, path[1:]):
        yield (a, b)


def is_simple(path: Sequence[Node]) -> bool:
    """Whether ``path`` visits each node at most once."""
    return len(set(path)) == len(path)


def validate_path(network: Network, path: Sequence[Node]) -> None:
    """Check that ``path`` is simple and every hop exists in ``network``.

    Raises:
        ValueError: if the path is not simple or uses a missing link.
    """
    if not is_simple(path):
        raise ValueError(f"path is not simple: {list(path)!r}")
    for src, dst in path_links(path):
        if not network.has_link(src, dst):
            raise ValueError(f"path uses missing link {src!r} -> {dst!r}")


def path_delay(network: Network, path: Sequence[Node]) -> int:
    """``phi(p)``: the total transmission delay along ``path``."""
    return sum(network.delay(src, dst) for src, dst in path_links(path))


def arrival_offsets(network: Network, path: Sequence[Node]) -> List[int]:
    """Cumulative delays from the head of ``path`` to each node on it.

    ``offsets[i]`` is the number of time steps after departing ``path[0]``
    at which a unit of flow departs ``path[i]`` (zero processing delay at
    switches, per the paper's dynamic-flow model).
    """
    offsets = [0]
    for src, dst in path_links(path):
        offsets.append(offsets[-1] + network.delay(src, dst))
    return offsets


def follow_config(config, source: Node, destination: Node, max_hops: int) -> Tuple[Path, bool]:
    """Trace the route from ``source`` under a next-hop ``config`` mapping.

    Args:
        config: Mapping ``node -> next hop`` (nodes missing from the mapping
            black-hole traffic).
        source: Start node.
        destination: Node at which tracing stops successfully.
        max_hops: Abort after this many hops (loop guard).

    Returns:
        ``(nodes, complete)`` where ``complete`` is ``True`` iff the route
        reaches ``destination``.  An incomplete route ends either at a
        black-holing node or at the ``max_hops`` guard.
    """
    nodes: List[Node] = [source]
    current = source
    hops = 0
    while current != destination and hops < max_hops:
        nxt = config.get(current)
        if nxt is None:
            return tuple(nodes), False
        nodes.append(nxt)
        current = nxt
        hops += 1
    return tuple(nodes), current == destination
