"""Declarative scenarios and the exact-name registry.

A :class:`Scenario` is the whole of one experiment, stated declaratively:

* ``defaults`` -- the parameter grid (network sizes, instance counts,
  budgets, seeds) at laptop scale;
* ``items(params)`` -- the deterministic expansion of that grid into
  self-contained work items, each carrying a unique ``"key"``;
* ``evaluate(item, params, ctx)`` -- one item to one JSON-serialisable
  record (runs inside pool workers, so it must be a module-level
  function and derive all randomness from the item's seed);
* ``aggregate(records, params)`` -- records to a result object whose
  ``render()`` is the printed figure/table.  Aggregation never computes:
  it only reads records, so a stored run can be re-reported at will.

Scenarios register themselves at import time (each experiment module
calls :func:`register` on its own scenario); the registry is therefore
populated by importing :mod:`repro.experiments`, which
:func:`get_scenario` does lazily.  Lookup is by **exact** name -- a typo
raises :class:`UnknownScenarioError` listing every valid name rather
than silently fuzzy-matching several experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

Items = Callable[[Mapping], Sequence[Mapping]]
Evaluate = Callable[[Mapping, Mapping, object], Mapping]
Aggregate = Callable[[Sequence[Mapping], Mapping], object]
Enough = Callable[[Sequence[Mapping], Mapping], bool]


class UnknownScenarioError(KeyError):
    """An unregistered scenario name, with the valid names attached."""

    def __init__(self, name: str, valid: Sequence[str]):
        self.name = name
        self.valid = list(valid)
        super().__init__(
            f"unknown scenario {name!r}; choose from: {', '.join(self.valid)}"
        )

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


@dataclass(frozen=True)
class Scenario:
    """One registered experiment (figure, table or ablation).

    Attributes:
        name: Exact registry name (``"fig7"``, ``"faults"``, ...).
        title: One-line human description.
        paper: The paper artifact it reproduces (``"Fig. 7"``), or what
            it extends (``"beyond the paper"``).
        description: What the records contain and how they aggregate.
        defaults: Laptop-scale parameters; every run starts from these.
        items: Grid expansion; every item is a JSON-serialisable mapping
            with a unique ``"key"`` string.
        evaluate: Item -> record (JSON-serialisable mapping); the record
            inherits the item's ``"key"`` if it does not set one.
        aggregate: Records -> result object with a ``render()`` method.
        paper_params: Overrides that restore the paper's original scale
            (``python -m repro.experiments run <name> --paper``).
        enough: Optional early-stop predicate over the records emitted so
            far; when it returns True the run completes without
            evaluating the remaining items (used by sample-until-N
            scenarios such as Fig. 11).  Checked in item order, so
            serial, parallel and resumed runs stop at the same record.
    """

    name: str
    title: str
    paper: str
    description: str
    defaults: Mapping[str, object]
    items: Items
    evaluate: Evaluate
    aggregate: Aggregate
    paper_params: Optional[Mapping[str, object]] = None
    enough: Optional[Enough] = None

    def params_with(
        self,
        overrides: Optional[Mapping[str, object]] = None,
        paper: bool = False,
    ) -> Dict[str, object]:
        """Materialise the run parameters: defaults < paper preset < overrides."""
        params: Dict[str, object] = dict(self.defaults)
        if paper:
            if self.paper_params is None:
                raise ValueError(
                    f"scenario {self.name!r} has no paper-scale preset"
                )
            params.update(self.paper_params)
        if overrides:
            unknown = set(overrides) - set(params)
            if unknown:
                raise ValueError(
                    f"unknown parameter(s) {sorted(unknown)} for scenario "
                    f"{self.name!r}; valid: {sorted(params)}"
                )
            params.update(overrides)
        return params


_REGISTRY: Dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    """Register (or re-register, e.g. on module reload) a scenario."""
    _REGISTRY[scenario.name] = scenario
    return scenario


def _ensure_loaded() -> None:
    """Populate the registry by importing the experiment modules."""
    import repro.experiments  # noqa: F401  (registration side effect)


def scenario_names() -> List[str]:
    """Every registered scenario name, sorted."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def all_scenarios() -> List[Scenario]:
    _ensure_loaded()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def get_scenario(name: str) -> Scenario:
    """Exact-name lookup; unknown names list the valid ones."""
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownScenarioError(name, sorted(_REGISTRY)) from None
