"""Shared command-line plumbing for ``scripts/*.py`` and the experiments CLI.

Every script used to re-implement the same four fragments: an
``ArgumentParser`` seeded from the module docstring's first line, a
``--quick``/``--quiet`` flag pair, a carriage-return progress line and
JSON emission.  They live here once; the scripts are thin wrappers kept
for backward compatibility.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, IO, Optional


def first_doc_line(doc: Optional[str]) -> str:
    """The summary line of a module docstring (empty-safe)."""
    if not doc:
        return ""
    for line in doc.splitlines():
        if line.strip():
            return line.strip()
    return ""


def script_parser(doc: Optional[str], **kwargs) -> argparse.ArgumentParser:
    """An ``ArgumentParser`` described by the script's docstring summary."""
    kwargs.setdefault("description", first_doc_line(doc))
    return argparse.ArgumentParser(**kwargs)


def add_quick_flag(parser: argparse.ArgumentParser, help: str) -> None:
    parser.add_argument("--quick", action="store_true", help=help)


def add_quiet_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the progress line"
    )


def progress_printer(
    noun: str, quiet: bool = False, stream: Optional[IO[str]] = None
) -> Callable[[int, int], None]:
    """A ``(done, total)`` callback rendering the scripts' one-line ticker.

    Call :func:`finish_progress` (or print a newline) once the loop ends.
    """
    out = stream if stream is not None else sys.stdout

    def progress(done: int, total: int) -> None:
        if not quiet:
            print(f"\r  {noun} {done}/{total}", end="", flush=True, file=out)

    return progress


def finish_progress(quiet: bool = False, stream: Optional[IO[str]] = None) -> None:
    """Terminate the ticker line started by :func:`progress_printer`."""
    if not quiet:
        print(file=stream if stream is not None else sys.stdout)


def emit_json(data: object, stream: Optional[IO[str]] = None) -> None:
    """Machine-readable output, consistently formatted across scripts."""
    print(
        json.dumps(data, indent=2, sort_keys=True),
        file=stream if stream is not None else sys.stdout,
    )


def parse_override(text: str) -> tuple:
    """One ``--set key=value`` assignment; values parse as JSON, else string.

    ``--set switch_counts=[10,20]`` becomes a list, ``--set workload=mixed``
    stays a string.
    """
    key, sep, value = text.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(
            f"expected key=value, got {text!r}"
        )
    try:
        return key, json.loads(value)
    except json.JSONDecodeError:
        return key, value
