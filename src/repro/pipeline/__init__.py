"""``repro.pipeline``: the declarative scenario pipeline behind the harness.

Every table, figure and ablation of the evaluation is a :class:`Scenario`
-- a named, declarative bundle of *(instance grid, per-item evaluation,
aggregation)* registered at import time by its experiment module.  The
pipeline supplies everything the eleven experiment modules used to
re-implement individually:

* **Registry** (:mod:`repro.pipeline.scenario`): scenarios are looked up
  by exact name; the registry is populated by importing
  :mod:`repro.experiments`.
* **RunContext** (:mod:`repro.pipeline.context`): the cross-cutting
  services -- ``sweep_seed`` deterministic seeding, the
  :class:`~repro.runtime.ParallelRunner`, the conformance verifier flag,
  :mod:`repro.perf` profiling and an optional fault severity -- threaded
  through every scenario uniformly.
* **Artifact store** (:mod:`repro.pipeline.store`): every run streams
  per-instance records to ``runs/<scenario>/<run-id>/records.jsonl``
  beside a ``manifest.json`` (config hash, params, git revision); an
  interrupted run resumes by skipping completed record keys and produces
  byte-identical records to an uninterrupted run.
* **Executor** (:mod:`repro.pipeline.runner`): ordered, checkpointed
  evaluation of a scenario's items -- in memory (the legacy ``run_*``
  wrappers) or against the store (the ``python -m repro.experiments
  run|resume|report`` CLI).
* **Script helpers** (:mod:`repro.pipeline.cli`): the argparse/progress/
  JSON boilerplate shared by ``scripts/*.py``.

Quick tour::

    from repro.pipeline import RunContext, run_in_memory, run_to_store

    result = run_in_memory("fig7", overrides={"switch_counts": (10, 20)})
    print(result.render())              # the figure, computed from records

    run = run_to_store("fig9", ctx=RunContext(workers=4))
    print(run.handle.records_path)      # runs/fig9/<run-id>/records.jsonl
"""

from repro.pipeline.context import RunContext, WorkerContext
from repro.pipeline.scenario import (
    Scenario,
    UnknownScenarioError,
    get_scenario,
    register,
    scenario_names,
)
from repro.pipeline.store import ArtifactStore, RunHandle
from repro.pipeline.runner import (
    RunInterrupted,
    run_in_memory,
    run_to_store,
    report_from_store,
)

__all__ = [
    "ArtifactStore",
    "RunContext",
    "RunHandle",
    "RunInterrupted",
    "Scenario",
    "UnknownScenarioError",
    "WorkerContext",
    "get_scenario",
    "register",
    "report_from_store",
    "run_in_memory",
    "run_to_store",
    "scenario_names",
]
