"""RunContext: the cross-cutting services threaded through every scenario.

Before the pipeline each experiment module re-plumbed the same four
services by hand: ``sweep_seed`` deterministic seeding, the
:class:`~repro.runtime.ParallelRunner`, the conformance verifier flag and
the :mod:`repro.perf` spans.  :class:`RunContext` carries them once, and
the executor hands each pool worker the picklable slice it needs
(:class:`WorkerContext`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.runtime import ParallelRunner


@dataclass(frozen=True)
class WorkerContext:
    """The per-worker, picklable slice of a :class:`RunContext`.

    Attributes:
        verify: Re-check every evaluated schedule with the independent
            verifier (:mod:`repro.validate`); scenarios built on the
            shared sweep stage fill ``verifier_agrees`` on each outcome.
        fault_severity: Optional control-plane fault severity (the
            :func:`repro.faults.severity_spec` scalar) for scenarios that
            execute on the discrete-event plane; analytic scenarios
            ignore it.
        trace_id: The run's trace id when a sink is enabled, ``None``
            otherwise.  The executor's worker entry point opens an
            ``item:<key>`` span (and links the record to it) only when
            this matches the process-global recorder's live trace --
            which pool workers inherit through ``fork``.
    """

    verify: bool = False
    fault_severity: Optional[float] = None
    trace_id: Optional[str] = None


@dataclass
class RunContext:
    """Everything a scenario run needs besides its parameters.

    Attributes:
        workers: Worker processes for the item map (1 = in-process); the
            records are identical for any worker count because every item
            is seeded independently (the ``sweep_seed`` contract).
        verify: See :class:`WorkerContext`.
        profile: Enable the :mod:`repro.perf` registry around the run; the
            executor wraps the scenario in a ``pipeline.<name>`` span.
        fault_severity: See :class:`WorkerContext`.
        trace: Optional trace-sink spec (``"console"``, ``"jsonl[:PATH]"``,
            ``"sqlite[:PATH]"``; see :func:`repro.trace.open_sink`).  File
            sinks without an explicit path land in the run directory.
            Tracing is observability-only: records stay byte-identical to
            an untraced run apart from the added ``trace`` id field.
        serial_threshold_seconds: Overrides the runner's min-work probe
            threshold (``0`` always uses the pool); ``None`` keeps the
            :class:`ParallelRunner` default.
        runner: Pre-configured :class:`ParallelRunner`; built from
            ``workers`` when omitted.
        progress: Called with ``(done, total)`` after every record.
    """

    workers: int = 1
    verify: bool = False
    profile: bool = False
    fault_severity: Optional[float] = None
    trace: Optional[str] = None
    serial_threshold_seconds: Optional[float] = None
    runner: Optional[ParallelRunner] = None
    progress: Optional[Callable[[int, int], None]] = None

    def __post_init__(self) -> None:
        if self.runner is None:
            kwargs = {}
            if self.serial_threshold_seconds is not None:
                kwargs["serial_threshold_seconds"] = self.serial_threshold_seconds
            self.runner = ParallelRunner(
                max_workers=self.workers, chunk_size=1, **kwargs
            )

    @property
    def batch_size(self) -> int:
        """Items evaluated between checkpoints.

        Serial runs checkpoint after every record; parallel runs batch
        ``2 x workers`` items so the pool stays busy while keeping the
        resume granularity fine.  Records are always written in item
        order, so completed keys form a prefix of the item list whatever
        the batch size.
        """
        if self.workers <= 1:
            return 1
        return self.workers * 2

    def worker_context(self, trace_id: Optional[str] = None) -> WorkerContext:
        return WorkerContext(
            verify=self.verify,
            fault_severity=self.fault_severity,
            trace_id=trace_id,
        )

    @staticmethod
    def seed_for(base_seed: int, switch_count: int, index: int) -> int:
        """The harness seeding contract (see :func:`repro.experiments.sweep.sweep_seed`)."""
        from repro.experiments.sweep import sweep_seed

        return sweep_seed(base_seed, switch_count, index)
