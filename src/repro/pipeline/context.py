"""RunContext: the cross-cutting services threaded through every scenario.

Before the pipeline each experiment module re-plumbed the same four
services by hand: ``sweep_seed`` deterministic seeding, the
:class:`~repro.runtime.ParallelRunner`, the conformance verifier flag and
the :mod:`repro.perf` spans.  :class:`RunContext` carries them once, and
the executor hands each pool worker the picklable slice it needs
(:class:`WorkerContext`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.runtime import ParallelRunner


@dataclass(frozen=True)
class WorkerContext:
    """The per-worker, picklable slice of a :class:`RunContext`.

    Attributes:
        verify: Re-check every evaluated schedule with the independent
            verifier (:mod:`repro.validate`); scenarios built on the
            shared sweep stage fill ``verifier_agrees`` on each outcome.
        fault_severity: Optional control-plane fault severity (the
            :func:`repro.faults.severity_spec` scalar) for scenarios that
            execute on the discrete-event plane; analytic scenarios
            ignore it.
    """

    verify: bool = False
    fault_severity: Optional[float] = None


@dataclass
class RunContext:
    """Everything a scenario run needs besides its parameters.

    Attributes:
        workers: Worker processes for the item map (1 = in-process); the
            records are identical for any worker count because every item
            is seeded independently (the ``sweep_seed`` contract).
        verify: See :class:`WorkerContext`.
        profile: Enable the :mod:`repro.perf` registry around the run; the
            executor wraps the scenario in a ``pipeline.<name>`` span.
        fault_severity: See :class:`WorkerContext`.
        runner: Pre-configured :class:`ParallelRunner`; built from
            ``workers`` when omitted.
        progress: Called with ``(done, total)`` after every record.
    """

    workers: int = 1
    verify: bool = False
    profile: bool = False
    fault_severity: Optional[float] = None
    runner: Optional[ParallelRunner] = None
    progress: Optional[Callable[[int, int], None]] = None

    def __post_init__(self) -> None:
        if self.runner is None:
            self.runner = ParallelRunner(max_workers=self.workers, chunk_size=1)

    @property
    def batch_size(self) -> int:
        """Items evaluated between checkpoints.

        Serial runs checkpoint after every record; parallel runs batch
        ``2 x workers`` items so the pool stays busy while keeping the
        resume granularity fine.  Records are always written in item
        order, so completed keys form a prefix of the item list whatever
        the batch size.
        """
        if self.workers <= 1:
            return 1
        return self.workers * 2

    def worker_context(self) -> WorkerContext:
        return WorkerContext(
            verify=self.verify, fault_severity=self.fault_severity
        )

    @staticmethod
    def seed_for(base_seed: int, switch_count: int, index: int) -> int:
        """The harness seeding contract (see :func:`repro.experiments.sweep.sweep_seed`)."""
        from repro.experiments.sweep import sweep_seed

        return sweep_seed(base_seed, switch_count, index)
