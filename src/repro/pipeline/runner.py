"""The scenario executor: ordered, checkpointed evaluation of items.

One code path serves every consumer:

* the legacy ``run_*`` wrappers call :func:`run_in_memory` (records stay
  in a list, the aggregate comes back directly);
* ``python -m repro.experiments run|resume`` calls :func:`run_to_store`
  (records stream to the artifact store, checkpointed per record);
* ``report`` calls :func:`report_from_store` (aggregation only -- the
  compute/print decoupling the figures lacked).

Records are produced strictly in item order whatever the worker count:
items are mapped in contiguous batches through the
:class:`~repro.runtime.ParallelRunner` (which preserves submission
order) and appended as each batch completes.  Completed keys therefore
always form a prefix of the item list, which is what makes interrupted
runs resumable byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.perf import perf
from repro.pipeline.context import RunContext, WorkerContext
from repro.pipeline.scenario import Scenario, get_scenario
from repro.pipeline.store import ArtifactStore, RunHandle, canonical_json

import json


class RunInterrupted(RuntimeError):
    """Raised when ``stop_after`` cut a run short (simulating a kill).

    The run's manifest is left in status ``running`` and the records
    file holds exactly the completed prefix -- the state a genuine
    mid-run kill leaves behind -- so ``resume`` picks up from here.
    """

    def __init__(self, message: str, handle: Optional[RunHandle] = None):
        super().__init__(message)
        self.handle = handle


@dataclass(frozen=True)
class _ItemTask:
    """Self-contained work unit shipped to a pool worker."""

    scenario: str
    params: Mapping[str, object]
    item: Mapping[str, object]
    worker_context: WorkerContext


def evaluate_task(task: _ItemTask) -> Dict[str, object]:
    """Worker entry point: look the scenario up and evaluate one item."""
    scenario = get_scenario(task.scenario)
    record = dict(scenario.evaluate(task.item, task.params, task.worker_context))
    record.setdefault("key", task.item["key"])
    return record


@dataclass
class ExecutionSummary:
    """What one :func:`execute` call did."""

    total_items: int = 0
    skipped: int = 0
    emitted: int = 0
    satisfied_early: bool = False  # the scenario's enough() stopped the run


def execute(
    scenario: Scenario,
    params: Mapping[str, object],
    ctx: RunContext,
    sink: Callable[[Dict[str, object]], None],
    prior_records: Sequence[Mapping[str, object]] = (),
    stop_after: Optional[int] = None,
) -> ExecutionSummary:
    """Evaluate a scenario's items in order, feeding each record to ``sink``.

    ``prior_records`` (a resumed run's completed prefix) are skipped by
    key and counted toward the scenario's ``enough`` predicate.  Every
    record is normalised through canonical JSON before ``sink`` sees it,
    so in-memory aggregation operates on exactly what a stored run would
    read back.  ``stop_after`` raises :class:`RunInterrupted` once that
    many *new* records have been sunk.
    """
    items = list(scenario.items(params))
    keys = [str(item["key"]) for item in items]
    if len(set(keys)) != len(keys):
        dupes = sorted({k for k in keys if keys.count(k) > 1})
        raise ValueError(
            f"scenario {scenario.name!r} produced duplicate item keys: {dupes}"
        )
    done = {str(record["key"]) for record in prior_records}
    unknown = done - set(keys)
    if unknown:
        raise ValueError(
            f"stored records of {scenario.name!r} carry keys absent from the "
            f"item grid (params changed?): {sorted(unknown)[:5]}"
        )
    pending = [item for item in items if str(item["key"]) not in done]
    summary = ExecutionSummary(
        total_items=len(items), skipped=len(items) - len(pending)
    )
    records: List[Mapping[str, object]] = list(prior_records)
    if scenario.enough is not None and scenario.enough(records, params):
        summary.satisfied_early = True
        return summary

    if ctx.profile:
        perf.enable()
    wctx = ctx.worker_context()
    batch_size = ctx.batch_size
    with perf.span(f"pipeline.{scenario.name}"):
        for start in range(0, len(pending), batch_size):
            batch = pending[start : start + batch_size]
            tasks = [
                _ItemTask(
                    scenario=scenario.name,
                    params=params,
                    item=item,
                    worker_context=wctx,
                )
                for item in batch
            ]
            for record in ctx.runner.map(evaluate_task, tasks):
                record = json.loads(canonical_json(record))
                sink(record)
                records.append(record)
                summary.emitted += 1
                if ctx.progress is not None:
                    ctx.progress(summary.skipped + summary.emitted, len(items))
                if stop_after is not None and summary.emitted >= stop_after:
                    raise RunInterrupted(
                        f"stopped {scenario.name} after {summary.emitted} new "
                        f"record(s) as requested"
                    )
                if scenario.enough is not None and scenario.enough(records, params):
                    summary.satisfied_early = True
                    return summary
    return summary


@dataclass
class StoredRun:
    """Result of :func:`run_to_store`: the handle plus what happened."""

    scenario: Scenario
    params: Dict[str, object]
    handle: RunHandle
    summary: ExecutionSummary
    records: List[Dict[str, object]] = field(default_factory=list)

    def aggregate(self):
        return self.scenario.aggregate(self.records, self.params)


def run_in_memory(
    name: str,
    overrides: Optional[Mapping[str, object]] = None,
    ctx: Optional[RunContext] = None,
    paper: bool = False,
):
    """Run a scenario without the store and return its aggregate result."""
    scenario = get_scenario(name)
    params = scenario.params_with(overrides, paper=paper)
    # Normalise exactly as the store would, so wrappers and stored runs
    # aggregate from identical data.
    params = json.loads(canonical_json(params))
    records: List[Dict[str, object]] = []
    execute(scenario, params, ctx or RunContext(), records.append)
    return scenario.aggregate(records, params)


def run_to_store(
    name: str,
    overrides: Optional[Mapping[str, object]] = None,
    ctx: Optional[RunContext] = None,
    store: Optional[ArtifactStore] = None,
    run_id: Optional[str] = None,
    resume: bool = False,
    paper: bool = False,
    stop_after: Optional[int] = None,
) -> StoredRun:
    """Run (or resume) a scenario against the artifact store.

    A fresh run materialises the parameters, creates
    ``<root>/<name>/<run-id>/`` and streams records; a resumed run reads
    the parameters back from the manifest, skips the completed prefix
    and appends only the missing records -- the final ``records.jsonl``
    is byte-identical to an uninterrupted run.
    """
    scenario = get_scenario(name)
    store = store or ArtifactStore()
    ctx = ctx or RunContext()
    if resume:
        handle = store.open(name, run_id)
        params = handle.params
        prior = handle.load_records()
        handle.manifest["status"] = "running"
        handle.write_manifest()
    else:
        params = scenario.params_with(overrides, paper=paper)
        handle = store.create(name, params, run_id=run_id)
        params = handle.params  # JSON-normalised, as a resume would see it
        prior = []

    records: List[Dict[str, object]] = list(prior)

    def sink(record: Dict[str, object]) -> None:
        handle.append(record)
        records.append(record)

    try:
        summary = execute(
            scenario, params, ctx, sink, prior_records=prior, stop_after=stop_after
        )
    except RunInterrupted as interrupted:
        # Leave the manifest in `running` -- exactly what a kill leaves.
        handle._close_records()
        interrupted.handle = handle
        raise
    handle.finish(status="complete", records=len(records))
    return StoredRun(
        scenario=scenario,
        params=dict(params),
        handle=handle,
        summary=summary,
        records=records,
    )


def report_from_store(
    name: str,
    store: Optional[ArtifactStore] = None,
    run_id: Optional[str] = None,
):
    """Aggregate a stored run's records: pure reporting, no computation."""
    scenario = get_scenario(name)
    store = store or ArtifactStore()
    handle = store.open(name, run_id)
    return scenario.aggregate(handle.load_records(), handle.params)
