"""The scenario executor: ordered, checkpointed evaluation of items.

One code path serves every consumer:

* the legacy ``run_*`` wrappers call :func:`run_in_memory` (records stay
  in a list, the aggregate comes back directly);
* ``python -m repro.experiments run|resume`` calls :func:`run_to_store`
  (records stream to the artifact store, checkpointed per record);
* ``report`` calls :func:`report_from_store` (aggregation only -- the
  compute/print decoupling the figures lacked).

Records are produced strictly in item order whatever the worker count:
items are mapped in contiguous batches through the
:class:`~repro.runtime.ParallelRunner` (which preserves submission
order) and appended as each batch completes.  Completed keys therefore
always form a prefix of the item list, which is what makes interrupted
runs resumable byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.perf import perf
from repro.pipeline.context import RunContext, WorkerContext
from repro.pipeline.scenario import Scenario, get_scenario
from repro.pipeline.store import ArtifactStore, RunHandle, canonical_json, new_run_id
from repro.trace.recorder import perf_delta, recorder, worker_attributes
from repro.trace.session import TraceSession

import json


class RunInterrupted(RuntimeError):
    """Raised when ``stop_after`` cut a run short (simulating a kill).

    The run's manifest is left in status ``running`` and the records
    file holds exactly the completed prefix -- the state a genuine
    mid-run kill leaves behind -- so ``resume`` picks up from here.
    """

    def __init__(self, message: str, handle: Optional[RunHandle] = None):
        super().__init__(message)
        self.handle = handle


@dataclass(frozen=True)
class _ItemTask:
    """Self-contained work unit shipped to a pool worker."""

    scenario: str
    params: Mapping[str, object]
    item: Mapping[str, object]
    worker_context: WorkerContext


def evaluate_task(task: _ItemTask) -> Dict[str, object]:
    """Worker entry point: look the scenario up and evaluate one item.

    When the run is traced (the task's ``trace_id`` matches the live
    recorder -- pool workers inherit the configured recorder through
    ``fork``), the item evaluates inside an ``item:<key>`` span: the
    item's :mod:`repro.perf` delta streams as child spans/counter
    events, executor ``apply``/``late`` events attach to the open span,
    and the returned record carries a ``trace`` field linking it to its
    span.  Untraced runs take the original path untouched.
    """
    scenario = get_scenario(task.scenario)
    wctx = task.worker_context
    tracing = (
        wctx.trace_id is not None
        and recorder.enabled
        and recorder.trace_id == wctx.trace_id
    )
    if not tracing:
        record = dict(scenario.evaluate(task.item, task.params, wctx))
        record.setdefault("key", task.item["key"])
        return record

    key = str(task.item["key"])
    attributes = worker_attributes()
    attributes["key"] = key
    for extra in ("switch_count", "seed"):
        if extra in task.item:
            attributes[extra] = task.item[extra]
    before = perf.snapshot()
    with recorder.span(f"item:{key}", attributes) as span:
        record = dict(scenario.evaluate(task.item, task.params, wctx))
        record.setdefault("key", task.item["key"])
        recorder.perf_spans(
            perf_delta(before, perf.snapshot()),
            strip_prefix=f"pipeline.{task.scenario}.",
        )
    record["trace"] = {"trace_id": recorder.trace_id, "span_id": span.span_id}
    return record


@dataclass
class ExecutionSummary:
    """What one :func:`execute` call did."""

    total_items: int = 0
    skipped: int = 0
    emitted: int = 0
    satisfied_early: bool = False  # the scenario's enough() stopped the run


def execute(
    scenario: Scenario,
    params: Mapping[str, object],
    ctx: RunContext,
    sink: Callable[[Dict[str, object]], None],
    prior_records: Sequence[Mapping[str, object]] = (),
    stop_after: Optional[int] = None,
    trace: Optional[TraceSession] = None,
) -> ExecutionSummary:
    """Evaluate a scenario's items in order, feeding each record to ``sink``.

    ``prior_records`` (a resumed run's completed prefix) are skipped by
    key and counted toward the scenario's ``enough`` predicate.  Every
    record is normalised through canonical JSON before ``sink`` sees it,
    so in-memory aggregation operates on exactly what a stored run would
    read back.  ``stop_after`` raises :class:`RunInterrupted` once that
    many *new* records have been sunk.

    ``trace`` (a begun-or-not :class:`~repro.trace.session.TraceSession`)
    turns the run into a trace: the executor begins the session, flushes
    buffered records to its sink after every checkpointed batch, and
    finishes it -- with status ``interrupted`` when ``stop_after`` or the
    caller's kill cuts the run short -- however the run ends.
    """
    items = list(scenario.items(params))
    keys = [str(item["key"]) for item in items]
    if len(set(keys)) != len(keys):
        dupes = sorted({k for k in keys if keys.count(k) > 1})
        raise ValueError(
            f"scenario {scenario.name!r} produced duplicate item keys: {dupes}"
        )
    done = {str(record["key"]) for record in prior_records}
    unknown = done - set(keys)
    if unknown:
        raise ValueError(
            f"stored records of {scenario.name!r} carry keys absent from the "
            f"item grid (params changed?): {sorted(unknown)[:5]}"
        )
    pending = [item for item in items if str(item["key"]) not in done]
    summary = ExecutionSummary(
        total_items=len(items), skipped=len(items) - len(pending)
    )
    records: List[Mapping[str, object]] = list(prior_records)
    if scenario.enough is not None and scenario.enough(records, params):
        summary.satisfied_early = True
        return summary

    if ctx.profile:
        perf.enable()
    if trace is not None:
        trace.begin(params)
    wctx = ctx.worker_context(trace.trace_id if trace is not None else None)
    batch_size = ctx.batch_size
    status = "interrupted"
    try:
        with perf.span(f"pipeline.{scenario.name}"):
            for start in range(0, len(pending), batch_size):
                batch = pending[start : start + batch_size]
                tasks = [
                    _ItemTask(
                        scenario=scenario.name,
                        params=params,
                        item=item,
                        worker_context=wctx,
                    )
                    for item in batch
                ]
                for record in ctx.runner.map(evaluate_task, tasks):
                    record = json.loads(canonical_json(record))
                    sink(record)
                    records.append(record)
                    summary.emitted += 1
                    if ctx.progress is not None:
                        ctx.progress(summary.skipped + summary.emitted, len(items))
                    if stop_after is not None and summary.emitted >= stop_after:
                        raise RunInterrupted(
                            f"stopped {scenario.name} after {summary.emitted} new "
                            f"record(s) as requested"
                        )
                    if scenario.enough is not None and scenario.enough(
                        records, params
                    ):
                        summary.satisfied_early = True
                        status = "ok"
                        return summary
                if trace is not None:
                    trace.flush()
        status = "ok"
        return summary
    finally:
        if trace is not None:
            trace.finish(status)


@dataclass
class StoredRun:
    """Result of :func:`run_to_store`: the handle plus what happened."""

    scenario: Scenario
    params: Dict[str, object]
    handle: RunHandle
    summary: ExecutionSummary
    records: List[Dict[str, object]] = field(default_factory=list)

    def aggregate(self):
        return self.scenario.aggregate(self.records, self.params)


def _trace_session(
    ctx: RunContext, scenario_name: str, run_id: str, directory=None
) -> Optional[TraceSession]:
    """Build the run's :class:`TraceSession` when ``ctx.trace`` asks for one."""
    if not ctx.trace:
        return None
    from repro.trace.sinks import open_sink

    sink = open_sink(ctx.trace, directory=directory)
    return TraceSession(sink, scenario=scenario_name, run_id=run_id)


def run_in_memory(
    name: str,
    overrides: Optional[Mapping[str, object]] = None,
    ctx: Optional[RunContext] = None,
    paper: bool = False,
):
    """Run a scenario without the store and return its aggregate result."""
    scenario = get_scenario(name)
    params = scenario.params_with(overrides, paper=paper)
    # Normalise exactly as the store would, so wrappers and stored runs
    # aggregate from identical data.
    params = json.loads(canonical_json(params))
    records: List[Dict[str, object]] = []
    ctx = ctx or RunContext()
    # In-memory runs have no run directory: file sinks without an
    # explicit path land in the working directory.
    trace = _trace_session(ctx, name, new_run_id())
    execute(scenario, params, ctx, records.append, trace=trace)
    return scenario.aggregate(records, params)


def run_to_store(
    name: str,
    overrides: Optional[Mapping[str, object]] = None,
    ctx: Optional[RunContext] = None,
    store: Optional[ArtifactStore] = None,
    run_id: Optional[str] = None,
    resume: bool = False,
    paper: bool = False,
    stop_after: Optional[int] = None,
) -> StoredRun:
    """Run (or resume) a scenario against the artifact store.

    A fresh run materialises the parameters, creates
    ``<root>/<name>/<run-id>/`` and streams records; a resumed run reads
    the parameters back from the manifest, skips the completed prefix
    and appends only the missing records -- the final ``records.jsonl``
    is byte-identical to an uninterrupted run.
    """
    scenario = get_scenario(name)
    store = store or ArtifactStore()
    ctx = ctx or RunContext()
    if resume:
        handle = store.open(name, run_id)
        params = handle.params
        prior = handle.load_records()
        handle.manifest["status"] = "running"
        handle.write_manifest()
    else:
        params = scenario.params_with(overrides, paper=paper)
        handle = store.create(name, params, run_id=run_id)
        params = handle.params  # JSON-normalised, as a resume would see it
        prior = []

    records: List[Dict[str, object]] = list(prior)

    def sink(record: Dict[str, object]) -> None:
        handle.append(record)
        records.append(record)

    trace = _trace_session(ctx, name, handle.run_id, directory=handle.directory)
    if trace is not None:
        # Stamp the manifest so `python -m repro.trace` (and readers of
        # the run directory) can find the trace without guessing.
        trace_meta: Dict[str, object] = {
            "sink": ctx.trace,
            "trace_id": trace.trace_id,
        }
        sink_path = trace.sink_path
        if sink_path is not None:
            trace_meta["path"] = str(sink_path)
        handle.manifest["trace"] = trace_meta
        handle.write_manifest()

    try:
        summary = execute(
            scenario,
            params,
            ctx,
            sink,
            prior_records=prior,
            stop_after=stop_after,
            trace=trace,
        )
    except RunInterrupted as interrupted:
        # Leave the manifest in `running` -- exactly what a kill leaves.
        handle._close_records()
        interrupted.handle = handle
        raise
    handle.finish(status="complete", records=len(records))
    return StoredRun(
        scenario=scenario,
        params=dict(params),
        handle=handle,
        summary=summary,
        records=records,
    )


def report_from_store(
    name: str,
    store: Optional[ArtifactStore] = None,
    run_id: Optional[str] = None,
):
    """Aggregate a stored run's records: pure reporting, no computation."""
    scenario = get_scenario(name)
    store = store or ArtifactStore()
    handle = store.open(name, run_id)
    return scenario.aggregate(handle.load_records(), handle.params)
