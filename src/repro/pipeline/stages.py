"""Shared scenario stages: the instance-sweep grid behind Figs. 7, 8, 11.

The pattern the whole refactor generalises started here: the TP and OR
baselines were already shared across figures through
:mod:`repro.experiments.sweep`; these functions lift that sweep into the
declarative item/evaluate/record shape every sweep-backed scenario
(``fig7``, ``fig8``, ``sweep``) registers, instead of each module
re-implementing grid expansion and scheme dispatch.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Dict, List, Mapping, Sequence

from repro.pipeline.context import WorkerContext


def sweep_items(params: Mapping[str, object]) -> List[Dict[str, object]]:
    """Expand the (switch_counts x instances_per_size) grid.

    Every item's seed follows the ``sweep_seed`` harness contract, so a
    record cites the exact integer that regenerates its instance.
    """
    from repro.experiments.sweep import sweep_seed

    base_seed = int(params["base_seed"])
    return [
        {
            "key": f"n{count}-i{index}",
            "switch_count": int(count),
            "index": index,
            "seed": sweep_seed(base_seed, int(count), index),
        }
        for count in params["switch_counts"]  # type: ignore[union-attr]
        for index in range(int(params["instances_per_size"]))
    ]


def sweep_evaluate(
    item: Mapping[str, object],
    params: Mapping[str, object],
    ctx: WorkerContext,
) -> Dict[str, object]:
    """Regenerate one sweep instance, evaluate the schemes, record it."""
    from repro.experiments.sweep import SweepItem, evaluate_sweep_item

    verify = bool(ctx.verify or params.get("verify"))
    sweep_item = SweepItem(
        switch_count=int(item["switch_count"]),
        seed=int(item["seed"]),
        schemes=tuple(params["schemes"]),  # type: ignore[arg-type]
        opt_budget=float(params.get("opt_budget", 1.0)),
        workload=str(params.get("workload", "mixed")),
        max_delay=params.get("max_delay"),  # type: ignore[arg-type]
        detour_fraction=float(params.get("detour_fraction", 1.0)),
        or_budget=float(params.get("or_budget", 0.5)),
        opt_node_budget=params.get("opt_node_budget"),  # type: ignore[arg-type]
        or_node_budget=params.get("or_node_budget"),  # type: ignore[arg-type]
        verify=verify,
        opt_engine=str(params.get("opt_engine", "array")),
        or_engine=str(params.get("or_engine", "array")),
        aug_epsilon=float(params.get("aug_epsilon", 0.0) or 0.0),
    )
    record = evaluate_sweep_item(sweep_item)
    return {
        "key": item["key"],
        "switch_count": record.switch_count,
        "seed": record.seed,
        "outcomes": {
            scheme: asdict(outcome) for scheme, outcome in record.outcomes.items()
        },
    }


def sweep_records_from_dicts(records: Sequence[Mapping[str, object]]):
    """Rehydrate stored sweep records for the legacy aggregations."""
    from repro.experiments.sweep import InstanceOutcome, SweepRecord

    rebuilt = []
    for record in records:
        swept = SweepRecord(
            switch_count=int(record["switch_count"]), seed=int(record["seed"])
        )
        swept.outcomes = {
            scheme: InstanceOutcome(**outcome)
            for scheme, outcome in record["outcomes"].items()  # type: ignore[union-attr]
        }
        rebuilt.append(swept)
    return rebuilt
