"""The streaming artifact store: ``runs/<scenario>/<run-id>/``.

Every scenario run writes two files:

* ``records.jsonl`` -- one canonical JSON object per evaluated item
  (sorted keys, compact separators), appended and flushed record by
  record, so a killed run loses at most the line being written;
* ``manifest.json`` -- the run's identity: scenario name, materialised
  parameters, a config hash over both, the base git revision, creation
  time and status (``running`` / ``interrupted`` / ``complete``).

Resumability is a byte-level guarantee: records are written strictly in
item order, so the completed records of an interrupted run are a prefix
of the uninterrupted run's file.  :meth:`RunHandle.completed_keys`
truncates a partial trailing line (a mid-write kill) before resuming,
and the executor then appends exactly the missing suffix -- the resumed
file is byte-identical to a never-interrupted run (pinned by
``tests/test_pipeline.py`` and the CI smoke job).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import subprocess
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Mapping, Optional

#: Environment variable overriding the default store root.
RUNS_DIR_ENV = "REPRO_RUNS_DIR"

MANIFEST_NAME = "manifest.json"
RECORDS_NAME = "records.jsonl"


def canonical_json(data: object) -> str:
    """The store's single serialisation: sorted keys, compact, ASCII.

    Byte-stable across runs and platforms for JSON-representable data
    (tuples serialise as lists), which is what makes ``records.jsonl``
    diffable between interrupted-and-resumed and uninterrupted runs.
    """
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def config_hash(scenario_name: str, params: Mapping[str, object]) -> str:
    """Hash identifying one (scenario, params) configuration."""
    payload = canonical_json({"scenario": scenario_name, "params": params})
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def git_revision(cwd: Optional[Path] = None) -> Optional[str]:
    """Best-effort ``git rev-parse HEAD`` of the working tree."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=str(cwd) if cwd else None,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout.strip() or None


class StoreError(RuntimeError):
    """A run directory in a state the operation cannot proceed from."""


class RunHandle:
    """One run directory: manifest plus the streaming records file."""

    def __init__(self, directory: Path, manifest: Dict[str, object]):
        self.directory = Path(directory)
        self.manifest = manifest
        self._records_file = None

    @property
    def run_id(self) -> str:
        return str(self.manifest["run_id"])

    @property
    def scenario(self) -> str:
        return str(self.manifest["scenario"])

    @property
    def params(self) -> Dict[str, object]:
        return dict(self.manifest["params"])  # type: ignore[arg-type]

    @property
    def records_path(self) -> Path:
        return self.directory / RECORDS_NAME

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    def write_manifest(self) -> None:
        """Atomically (tmp + rename) persist the manifest."""
        tmp = self.manifest_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(self.manifest, sort_keys=True, indent=2) + "\n")
        os.replace(tmp, self.manifest_path)

    def completed_keys(self) -> List[str]:
        """Keys of the records already on disk, oldest first.

        A partial trailing line -- the signature of a kill mid-write --
        is truncated away so the next append starts on a clean line
        boundary.  A corrupt line *before* the end is a real error.
        """
        return [str(record["key"]) for record in self.load_records()]

    def load_records(self) -> List[Dict[str, object]]:
        """All complete records on disk, truncating a partial tail."""
        if not self.records_path.exists():
            return []
        raw = self.records_path.read_bytes()
        records: List[Dict[str, object]] = []
        consumed = 0
        for line in raw.splitlines(keepends=True):
            if not line.endswith(b"\n"):
                break  # partial tail: the run died mid-write
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise StoreError(
                    f"corrupt record at byte {consumed} of {self.records_path}: {exc}"
                ) from exc
            consumed += len(line)
        if consumed != len(raw):
            self._close_records()
            with open(self.records_path, "r+b") as handle:
                handle.truncate(consumed)
        return records

    def append(self, record: Mapping[str, object]) -> None:
        """Append one record as a canonical JSON line and flush it."""
        if self._records_file is None:
            self._records_file = open(self.records_path, "a", encoding="utf-8")
        self._records_file.write(canonical_json(record) + "\n")
        self._records_file.flush()

    def finish(self, status: str, records: int) -> None:
        """Finalise the manifest; an interrupted run stays ``running``."""
        self._close_records()
        self.manifest["status"] = status
        self.manifest["records"] = records
        self.manifest["finished_at"] = _now()
        self.write_manifest()

    def _close_records(self) -> None:
        if self._records_file is not None:
            self._records_file.close()
            self._records_file = None


class ArtifactStore:
    """The on-disk layout ``<root>/<scenario>/<run-id>/``."""

    def __init__(self, root: Optional[os.PathLike] = None):
        if root is None:
            root = os.environ.get(RUNS_DIR_ENV, "runs")
        self.root = Path(root)

    def run_directory(self, scenario: str, run_id: str) -> Path:
        return self.root / scenario / run_id

    def run_ids(self, scenario: str) -> List[str]:
        """Run ids of one scenario, oldest first (ids are time-prefixed)."""
        directory = self.root / scenario
        if not directory.is_dir():
            return []
        return sorted(
            entry.name
            for entry in directory.iterdir()
            if (entry / MANIFEST_NAME).exists()
        )

    def latest_run_id(self, scenario: str) -> Optional[str]:
        ids = self.run_ids(scenario)
        return ids[-1] if ids else None

    def create(
        self,
        scenario_name: str,
        params: Mapping[str, object],
        run_id: Optional[str] = None,
        extra: Optional[Mapping[str, object]] = None,
    ) -> RunHandle:
        """Create a fresh run directory with a ``running`` manifest.

        The directory itself is the claim: ``mkdir(exist_ok=False)`` is
        atomic on every platform we care about, so two concurrent
        workers creating the same run id cannot both win -- the loser
        gets a :class:`StoreError` instead of silently sharing (and
        corrupting) the winner's record file.
        """
        if run_id is None:
            run_id = new_run_id()
        directory = self.run_directory(scenario_name, run_id)
        directory.parent.mkdir(parents=True, exist_ok=True)
        try:
            directory.mkdir()
        except FileExistsError:
            raise StoreError(
                f"run {scenario_name}/{run_id} already exists at {directory}; "
                "use resume, or pick another --run-id"
            ) from None
        manifest: Dict[str, object] = {
            "scenario": scenario_name,
            "run_id": run_id,
            "params": _jsonable(params),
            "config_hash": config_hash(scenario_name, params),
            "git_rev": git_revision(),
            "created_at": _now(),
            "status": "running",
            "records": 0,
        }
        if extra:
            manifest.update(extra)
        handle = RunHandle(directory, manifest)
        handle.write_manifest()
        return handle

    def open(self, scenario_name: str, run_id: Optional[str] = None) -> RunHandle:
        """Open an existing run (``run_id=None`` opens the latest)."""
        if run_id is None:
            run_id = self.latest_run_id(scenario_name)
            if run_id is None:
                raise StoreError(
                    f"no runs of scenario {scenario_name!r} under {self.root}"
                )
        directory = self.run_directory(scenario_name, run_id)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise StoreError(f"no manifest at {manifest_path}")
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("scenario") != scenario_name:
            raise StoreError(
                f"manifest at {manifest_path} belongs to scenario "
                f"{manifest.get('scenario')!r}, not {scenario_name!r}"
            )
        return RunHandle(directory, manifest)


#: Per-process monotonic suffix of :func:`new_run_id`.  Two runs created
#: in the same second by the same process used to collide (``create``
#: raised :class:`StoreError`); the counter makes every id unique *and*
#: orders same-second ids by creation.
_RUN_ID_SEQ = itertools.count()


def new_run_id() -> str:
    """Unique run id whose lexicographic order is creation order.

    ``<UTC time>-<pid, zero-padded>-<per-process counter, zero-padded>``.
    Every component is fixed width, so plain string sorting -- what
    :meth:`ArtifactStore.run_ids` and therefore ``latest_run_id`` do --
    agrees with ``(time, pid, sequence)`` ordering.  The old variable
    width ``-<pid>`` suffix sorted ``...-99`` *after* ``...-100`` and
    could make ``latest_run_id`` resume the wrong same-second run.
    """
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    return f"{stamp}-{os.getpid():08d}-{next(_RUN_ID_SEQ):06d}"


def _jsonable(data: Mapping[str, object]) -> Dict[str, object]:
    """Round-trip params through JSON so the manifest equals what a
    resumed run will read back (tuples become lists once, not twice)."""
    return json.loads(canonical_json(dict(data)))


def _now() -> str:
    """Timezone-aware UTC ISO-8601 manifest timestamp.

    The old ``time.strftime('%z')`` rendering used *local* time and an
    offset that is empty on platforms whose strftime lacks ``%z``,
    leaving manifests with unzoned, machine-dependent times.
    """
    return datetime.now(timezone.utc).isoformat(timespec="seconds")
