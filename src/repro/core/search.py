"""Shared array-backed branch-and-bound core for the OPT and OR searches.

:func:`repro.core.optimal.optimal_schedule` and
:func:`repro.updates.order_replacement.minimize_rounds` used to run their
searches directly on the dict :class:`~repro.core.intervals.IntervalTracker`
(OPT) and on per-subset dict union-graph rebuilds (OR).  Profiling the
BENCH opt workload showed the per-node cost, not the node count, was the
bottleneck: one hard 30-switch instance spent its whole 2s budget on 14
search nodes, almost all of it in ``preview_round`` subset probes and the
O(n^2) pairwise-rescue candidate scan.

This module hosts the ``engine="array"`` replacements.  Both engines keep
the *reference* engines' value semantics (same candidate sets, same
branch order up to subset enumeration order, same bounds) so the
differential pins in ``tests/test_search_engines.py`` can compare
feasibility / makespan / proven exactly; only the mechanics differ:

* **Search state on the array tracker.**  OPT nodes hold an
  :class:`~repro.core.intervals_array.ArrayIntervalTracker` (COW clones
  are O(classes); congestion decisions are batched bincount passes).
  Without numpy the same engine runs on the dict tracker unchanged --
  every call it makes is part of the trackers' shared internal surface
  (``_split`` / ``_check_new_congestion`` / ``_commit``).
* **Probe chains instead of per-subset previews.**  The reference engine
  previews every candidate subset from scratch (splitting ``|S|``
  switches per probe).  Here subsets are enumerated as an
  include/exclude DFS over the candidate list: each *include* edge
  applies one switch to a scratch clone, so a subset costs one
  single-switch split amortised instead of ``|S|``.  Transient
  violations are carried as *debt* (a rescue partner later in the chain
  may clear them); a leaf with debt runs one global cleanliness check,
  which over a violation-free parent state is exactly the joint
  ``preview_round(...).ok`` decision.  Debt that no remaining candidate
  can repair (nobody left on the violating trajectories) prunes the
  whole include subtree.
* **Targeted pairwise rescue.**  A singleton-unsafe switch can only be
  rescued by a partner that changes some contribution to its violation:
  a pending switch on the trajectory of a class crossing a violated
  link, on a split parent, or on a deflected piece.  The candidate pass
  therefore probes only that partner superset instead of every pending
  switch -- same rescued set, O(n) fewer pair previews.
* **Transposition/dominance memo.**  Keyed by (applied set, live-class
  signature); an entry ``(t', last')`` dominates a node at ``(t, last)``
  when ``t' <= t`` and ``last' <= last``: the identical flow state was
  already explored no later and with no worse a makespan floor, under an
  incumbent no better than the current one, so nothing new can be found.
  The signature (emission bounds + trajectory bytes of every non-empty
  live class) makes the key exact -- equal keys mean equal search
  states -- which keeps the memo value-sound rather than heuristic.
* **Drain-horizon lower bound.**  Waiting is branched only while it can
  still pay: never past the finite-drain fix point when nothing is
  applicable, and never when the earliest remaining completion
  (``t + 2 - t0``, every pending update at ``t + 1`` or later) already
  meets the incumbent makespan.

The OR engine shares the same shape with a much simpler state: an
id-space union-graph cycle check (flat old/new next-hop tables, byte
masks) replaces per-check dict graph builds, subsets of the greedy
maximal safe set skip their per-subset safety recheck entirely (safe
sets are downward closed, so the recheck is always true), and a sound
``updated-set -> fewest rounds`` memo prunes revisits.  Node-budget
determinism is preserved by both engines: explored-node accounting and
branch order are pure functions of the instance.
"""

from __future__ import annotations

import itertools
import time
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.instance import UpdateInstance
from repro.core.intervals import _EPS, DELIVERED, IntervalTracker
from repro.core.intervals_array import NUMPY_AVAILABLE, ArrayIntervalTracker
from repro.core.rounds import greedy_loop_free_rounds
from repro.network.graph import Node
from repro.perf import perf

_NEG_LAST = -(1 << 60)


# Below this many switches the dict tracker's per-operation cost beats the
# array tracker's (numpy call overhead dominates batched wins on tiny
# arrays; measured crossover is in the low hundreds on the bench host).
# Exact-search instances are small by nature -- the searches are
# exponential -- so the dict representation usually wins; the array state
# takes over for the large instances the sweeps are growing toward.
ARRAY_STATE_THRESHOLD = 200


def make_search_tracker(instance: UpdateInstance, t0: int = 0):
    """The fastest exact tracker for search state at this instance size."""
    if NUMPY_AVAILABLE and len(instance.network) >= ARRAY_STATE_THRESHOLD:
        return ArrayIntervalTracker(instance, t0=t0)
    return IntervalTracker(instance, t0=t0)


def _class_is_empty(cls) -> bool:
    return cls.lo is not None and cls.hi is not None and cls.lo > cls.hi


class _TrackerOps:
    """The few representation-specific helpers the OPT engine needs.

    Both trackers share the internal split/check/commit surface; only
    "trajectory switch names" and "classes crossing a link" differ
    mechanically between the dict and array layouts.
    """

    def __init__(self, tracker) -> None:
        self.array = isinstance(tracker, ArrayIntervalTracker)

    def class_nodes(self, tracker, cls) -> Sequence[Node]:
        if self.array:
            names = tracker.arrays.names
            return [names[i] for i in cls.nodes.tolist()]
        return cls.nodes

    def classes_crossing(self, tracker, link) -> List:
        """Alive committed classes whose trajectory crosses ``link``."""
        if self.array:
            lid = tracker.arrays.lid_of(*link)
            if lid is None:
                return []
            out = []
            for cid in sorted(tracker._alive):
                cls = tracker._classes[cid]
                if cls.lids.size and bool((cls.lids == lid).any()):
                    out.append(cls)
            return out
        seen: Set[int] = set()
        out = []
        for cid in tracker._link_index.get(link, ()):
            if cid in seen or cid not in tracker._alive:
                continue
            seen.add(cid)
            out.append(tracker._classes[cid])
        return out

    def crosses(self, tracker, cls, link) -> bool:
        """Whether ``cls``'s trajectory traverses ``link``."""
        if self.array:
            lid = tracker.arrays.lid_of(*link)
            return (
                lid is not None
                and cls.lids.size > 0
                and bool((cls.lids == lid).any())
            )
        src, dst = link
        nodes = cls.nodes
        for i in range(len(nodes) - 1):
            if nodes[i] == src and nodes[i + 1] == dst:
                return True
        return False

    def signature(self, tracker) -> Tuple:
        """Exact value identity of the live flow state.

        Two trackers over the same instance with equal signatures and
        equal applied sets route and congest identically forever: the
        signature captures every non-empty class's emission bounds and
        full trajectory, and the routing table is a function of the
        applied set.  Empty classes are skipped -- they contribute no
        load, no loops and no drain horizon... almost: the drain horizon
        scans them too, so they are kept distinct via the horizon field.
        """
        parts = []
        for cid in sorted(tracker._alive):
            cls = tracker._classes[cid]
            if _class_is_empty(cls):
                continue
            traj = cls.nodes if not self.array else cls.nodes.tobytes()
            parts.append(
                (
                    cls.lo is not None,
                    cls.lo if cls.lo is not None else 0,
                    cls.hi is not None,
                    cls.hi if cls.hi is not None else 0,
                    traj,
                )
            )
        parts.sort()
        return (tuple(parts), tracker.finite_drain_horizon())


class _ChainCache:
    """Per-tracker-state facts reused along a waiting chain.

    A waiting branch recurses on the *same* tracker with ``t + 1``; along
    that chain the flow state (trajectories, emission windows, routing
    table) is frozen, so facts that depend only on routes survive from
    step to step:

    * ``relieved`` -- for each pending switch ``p``, the links on the
      old-route continuations strictly *beyond* ``p`` of the committed
      classes crossing it: the only committed load ``p``'s application
      can ever remove.  Used to refute rescue pairs without probing.
    * ``perm_partners`` -- a switch whose singleton application deflects
      an *infinite* class into a loop or black hole fails at every later
      step too (the same non-empty piece exists with the same
      trajectory); its rescue-partner superset is frozen at first
      failure and the per-step singleton probe is skipped.
    * ``pair_dead`` / ``perm_dead`` -- pair probes whose failure is
      permanent (infinite looping/black-holed piece, or steady-state
      congestion by infinite emission windows alone) are dead for the
      rest of the chain; a ``perm_partners`` switch with no live
      partners left costs nothing from then on.
    * ``retry_sing`` / ``retry_pair`` -- a probe that failed on a
      *finite* looping/black-holed piece provably keeps failing until
      that piece drains (``t > parent.hi + offset``, the exact moment
      the deflection threshold passes the parent's last emission); the
      probe is skipped until then.  A loop also pins the rescuer set to
      the piece/parent nodes -- fixing the loop requires re-routing the
      deflected unit, so a rescuer must sit on its trajectory -- which
      keeps the partner superset frozen at first failure valid for the
      whole retry window.
    """

    __slots__ = (
        "relieved",
        "perm_partners",
        "pair_dead",
        "perm_dead",
        "retry_sing",
        "retry_pair",
    )

    def __init__(self) -> None:
        self.relieved: Optional[Dict[Node, Set]] = None
        self.perm_partners: Dict[Node, List[Node]] = {}
        self.pair_dead: Set[Tuple[Node, Node]] = set()
        self.perm_dead: Set[Node] = set()
        # node -> (first step worth re-probing, frozen partner superset)
        self.retry_sing: Dict[Node, Tuple[int, List[Node]]] = {}
        # (node, partner) -> first step worth re-probing
        self.retry_pair: Dict[Tuple[Node, Node], int] = {}


class OptimalSearch:
    """The ``engine="array"`` OPT branch and bound (see module docstring).

    Drives the same DFS as the reference engine -- branch over candidate
    subsets at each step plus a waiting branch -- with probe-chain subset
    expansion, the targeted candidate pass, the dominance memo and the
    drain-horizon bound.  Results are value-equal to the reference on
    every completed search; explored-node counts differ (this engine
    visits the same states much faster and prunes more).
    """

    def __init__(
        self,
        instance: UpdateInstance,
        t0: int,
        time_budget: Optional[float],
        max_branch_width: int,
        max_horizon: int,
        node_budget: Optional[int],
    ) -> None:
        self.instance = instance
        self.t0 = t0
        self.time_budget = time_budget
        self.max_branch_width = max_branch_width
        self.max_horizon = max_horizon
        self.node_budget = node_budget
        self.started = time.monotonic()
        self.explored = 0
        self.timed_out = False
        self.horizon_cut = False
        self.width_cut = False
        self.best_times: Optional[Dict[Node, int]] = None
        self.best_makespan = max_horizon + 2
        self._demand = instance.demand
        self._leaf_ticks = 0
        # (applied set, state signature) -> Pareto-minimal (t, last) entries.
        self._memo: Dict[Tuple[FrozenSet[Node], Tuple], List[Tuple[int, int]]] = {}

    # -- budgets -------------------------------------------------------
    def _out_of_time(self) -> bool:
        if self.timed_out:
            return True
        if (
            self.time_budget is not None
            and time.monotonic() - self.started > self.time_budget
        ):
            self.timed_out = True
        return self.timed_out

    def _tick(self) -> bool:
        """Periodic wall-clock check inside subset expansion."""
        self._leaf_ticks += 1
        if self._leaf_ticks % 64 == 0 and self.time_budget is not None:
            return self._out_of_time()
        return self.timed_out

    # -- entry point ---------------------------------------------------
    def run(self, seed_times: Optional[Dict[Node, int]], seed_makespan: Optional[int]):
        if seed_times is not None and seed_makespan is not None:
            self.best_times = dict(seed_times)
            self.best_makespan = seed_makespan
        root = make_search_tracker(self.instance, t0=self.t0)
        self._ops = _TrackerOps(root)
        pending = tuple(self.instance.switches_to_update)
        self._dfs(root, pending, self.t0, None)
        return self.best_times, self.best_makespan

    # -- the DFS -------------------------------------------------------
    def _dfs(
        self,
        tracker,
        pending: Tuple[Node, ...],
        t: int,
        last_update: Optional[int],
        chain: Optional[_ChainCache] = None,
    ) -> None:
        if chain is None:
            chain = _ChainCache()
        if self.timed_out or self._out_of_time():
            return
        if self.node_budget is not None and self.explored >= self.node_budget:
            self.timed_out = True
            return
        self.explored += 1
        t0 = self.t0
        if not pending:
            makespan = 0 if last_update is None else last_update - t0 + 1
            if makespan < self.best_makespan:
                self.best_makespan = makespan
                self.best_times = dict(tracker.applied)
            return
        if t - t0 + 1 >= self.best_makespan:
            return
        if t - t0 > self.max_horizon:
            self.horizon_cut = True
            return

        last_key = _NEG_LAST if last_update is None else last_update
        memo_key = (frozenset(pending), self._ops.signature(tracker))
        entries = self._memo.get(memo_key)
        if entries is not None and any(
            te <= t and le <= last_key for te, le in entries
        ):
            return

        candidates = self._candidates(tracker, pending, t, chain)
        if self.timed_out:
            return

        applied_any = False
        if candidates:
            # When even an immediate next-step completion cannot beat the
            # incumbent (t + 2 - t0 >= best), only a round covering *all*
            # pending switches is worth expanding.
            if t + 2 - t0 >= self.best_makespan:
                if len(candidates) == len(pending):
                    applied_any = self._expand_full(tracker, pending, t)
            else:
                applied_any = self._expand_subsets(tracker, pending, candidates, t)
        if not self.timed_out:
            # Waiting branch, bounded: completions through it update at
            # t + 1 or later (makespan >= t + 2 - t0), and when nothing is
            # applicable waiting only helps while finite classes drain.
            if t + 2 - t0 < self.best_makespan:
                if applied_any:
                    self._dfs(tracker, pending, t + 1, last_update, chain)
                else:
                    horizon = tracker.finite_drain_horizon()
                    if horizon is not None and t <= horizon:
                        self._dfs(tracker, pending, t + 1, last_update, chain)
        if not self.timed_out:
            self._memo_record(memo_key, t, last_key)

    def _memo_record(self, memo_key, t: int, last_key: int) -> None:
        entries = self._memo.get(memo_key)
        if entries is None:
            self._memo[memo_key] = [(t, last_key)]
            return
        kept = [(te, le) for te, le in entries if not (t <= te and last_key <= le)]
        kept.append((t, last_key))
        self._memo[memo_key] = kept

    # -- candidate pass ------------------------------------------------
    def _candidates(
        self, tracker, pending: Tuple[Node, ...], t: int, chain: _ChainCache
    ) -> List[Node]:
        """The reference `_candidate_set`, with targeted rescue probes.

        Produces the same candidate list in the same order (safe switches
        in pending order, then rescued switches in pending order) so both
        engines agree on the branched subset family.  The pair scan only
        probes partners that could possibly rescue (see
        :meth:`_partner_superset`); everything refuted without a probe is
        refuted by a route/load argument, not a heuristic, so the
        resulting candidate set is *identical* to the reference scan's.
        """
        if len(pending) <= self.max_branch_width:
            return list(pending)
        if chain.relieved is None:
            chain.relieved = self._relieved_links(tracker, pending)
        pending_set = set(pending)
        safe: List[Node] = []
        unsafe: List[Tuple[Node, List[Node]]] = []
        for index, node in enumerate(pending):
            if index % 32 == 0 and self._out_of_time():
                return safe
            if node in chain.perm_dead:
                continue
            cached = chain.perm_partners.get(node)
            if cached is None:
                held = chain.retry_sing.get(node)
                if held is not None:
                    retry_t, frozen = held
                    if t < retry_t:
                        cached = frozen
                    else:
                        del chain.retry_sing[node]
            if cached is not None:
                partners = [
                    p
                    for p in cached
                    if p in pending_set and (node, p) not in chain.pair_dead
                ]
                if not partners and node in chain.perm_partners:
                    chain.perm_dead.add(node)
                elif partners:
                    unsafe.append((node, partners))
                continue
            pieces, removed, report = self._singleton_split(tracker, node, t)
            if report.ok:
                safe.append(node)
                continue
            partners = self._partner_superset(
                tracker, pending, node, pieces, report, chain.relieved
            )
            if self._permanent_failure(tracker, pieces, report):
                chain.perm_partners[node] = partners
                if not partners:
                    chain.perm_dead.add(node)
            else:
                retry_t = self._failure_retry_time(pieces)
                if retry_t is not None and retry_t > t + 1:
                    chain.retry_sing[node] = (retry_t, partners)
            if partners:
                unsafe.append((node, partners))
        rescued: List[Node] = []
        for node, partners in unsafe:
            if self._out_of_time():
                break
            for partner in partners:
                key = (node, partner)
                if key in chain.pair_dead:
                    continue
                held_t = chain.retry_pair.get(key)
                if held_t is not None:
                    if t < held_t:
                        continue
                    del chain.retry_pair[key]
                pieces, removed, report = self._pair_split(tracker, node, partner, t)
                if report.ok:
                    rescued.append(node)
                    break
                if self._permanent_failure(tracker, pieces, report):
                    chain.pair_dead.add(key)
                else:
                    retry_t = self._failure_retry_time(pieces)
                    if retry_t is not None and retry_t > t + 1:
                        chain.retry_pair[key] = retry_t
        candidates = safe + rescued
        if len(candidates) > self.max_branch_width:
            candidates = candidates[: self.max_branch_width]
            self.width_cut = True
        return candidates

    @staticmethod
    def _singleton_split(tracker, node: Node, t: int):
        pieces, _trims, _deflected, removed, report = tracker._split([node], t)
        tracker._check_new_congestion(pieces, removed, report)
        return pieces, removed, report

    @staticmethod
    def _pair_split(tracker, node: Node, partner: Node, t: int):
        pieces, _trims, _deflected, removed, report = tracker._split([node, partner], t)
        tracker._check_new_congestion(pieces, removed, report)
        return pieces, removed, report

    def _permanent_failure(self, tracker, pieces, report) -> bool:
        """Does this failed probe stay failed for the rest of the chain?

        Two sufficient conditions, both route-based and therefore
        time-invariant on a frozen tracker:

        * an *infinite* piece loops or black-holes -- the piece exists at
          every later application time (its parent emits forever, so the
          post-cut window is never empty) with the same trajectory;
        * steady-state congestion -- on some link the probe reported
          violated, counting only *infinite* emission windows (committed
          classes crossing it, minus split parents, plus the probe's
          infinite pieces), the load exceeds the capacity.  Finite
          classes drain but infinite ones do not: at any later
          application time the same infinite contributors overlap beyond
          every finite horizon, so the violation recurs at every step
          (and is reported, because committed state is congestion-free,
          so the overload always involves a fresh piece the probe's
          congestion check covers).

        Only the links in ``report.congestion`` need the steady test: a
        steady overload shows up as a (clamped-)unbounded violation of
        this very probe, so its link is always among the reported spans.
        """
        for piece, _parent in pieces:
            if piece.outcome != DELIVERED and piece.hi is None and not piece.is_empty():
                return True
        if not report.congestion:
            return False
        ops = self._ops
        demand = self._demand
        infinite_pieces = [p for p, _ in pieces if p.hi is None and not p.is_empty()]
        parents: Dict[int, object] = {}
        for _piece, parent in pieces:
            if parent.hi is None:
                parents[id(parent)] = parent
        if not infinite_pieces:
            return False
        for span in report.congestion:
            link = span.link
            count = 0
            for cls in ops.classes_crossing(tracker, link):
                if cls.hi is None and not _class_is_empty(cls):
                    count += 1
            for parent in parents.values():
                if ops.crosses(tracker, parent, link):
                    count -= 1
            for piece in infinite_pieces:
                if ops.crosses(tracker, piece, link):
                    count += 1
            if count * demand > span.capacity + _EPS:
                return True
        return False

    @staticmethod
    def _failure_retry_time(pieces) -> Optional[int]:
        """First step at which this probe's loop/black-hole failure can clear.

        A deflected piece at hit index ``i`` exists exactly while the
        deflection threshold ``t - offsets[i]`` has not passed the
        parent's last emission, i.e. while ``t <= parent.hi + offsets[i]``
        (:func:`repro.core.intervals._split_class`: the piece's upper
        bound is fixed at ``parent.hi`` while its lower bound tracks the
        threshold).  A looping or black-holed piece therefore keeps the
        probe failing -- with the *same* trajectory, so the same loop
        report -- up to and including that step.  Returns ``None`` when
        the failure is congestion-only (no drain argument applies).
        """
        retry: Optional[int] = None
        for piece, parent in pieces:
            if piece.outcome == DELIVERED or piece.is_empty():
                continue
            if parent.hi is None:
                continue  # permanent; handled by _permanent_failure
            clear = int(parent.hi) + int(parent.offsets[piece.fresh_from]) + 1
            if retry is None or clear > retry:
                retry = clear
        return retry

    def _relieved_links(self, tracker, pending: Tuple[Node, ...]) -> Dict[Node, Set]:
        """``p -> links whose committed load p's application can reduce``.

        Applying ``p`` deflects the late emissions of every committed
        class crossing it, removing that class's contribution to the
        old-route links strictly beyond ``p`` -- and nothing else.  Any
        congestion rescue of another switch therefore needs the partner
        either on this map for a violated link, or on the violating
        pieces/parents themselves (handled separately).
        """
        ops = self._ops
        pending_set = set(pending)
        relieved: Dict[Node, Set] = {}
        for cls in tracker.classes:
            if _class_is_empty(cls):
                continue
            names = ops.class_nodes(tracker, cls)
            suffix: List = []
            for i in range(len(names) - 2, -1, -1):
                suffix.append((names[i], names[i + 1]))
                node = names[i]
                if node in pending_set:
                    bucket = relieved.get(node)
                    if bucket is None:
                        bucket = relieved[node] = set()
                    bucket.update(suffix)
        return relieved

    def _partner_superset(
        self,
        tracker,
        pending: Tuple[Node, ...],
        node: Node,
        pieces,
        report,
        relieved: Dict[Node, Set],
    ) -> List[Node]:
        """Pending switches that could rescue ``node``, in pending order.

        A partner changes the singleton outcome only by altering some
        contribution to it:

        * re-routing or re-partitioning the violating pieces -- partner
          on a piece's trajectory (including its fresh suffix) or on the
          split parent;
        * removing committed load from a violated link -- partner whose
          :meth:`_relieved_links` entry hits a violated link (load can
          only be *removed* from the old-route continuation beyond the
          partner; added load never fixes congestion).

        The union is a complete rescuer superset for congestion, loop
        and black-hole failures alike, so probing only these partners
        yields exactly the reference engine's rescued set.
        """
        ops = self._ops
        near: Set[Node] = set()
        for piece, parent in pieces:
            near.update(ops.class_nodes(tracker, piece))
            near.update(ops.class_nodes(tracker, parent))
        violated = {span.link for span in report.congestion}
        out: List[Node] = []
        for p in pending:
            if p == node:
                continue
            if p in near:
                out.append(p)
                continue
            if violated:
                links = relieved.get(p)
                if links is not None and not violated.isdisjoint(links):
                    out.append(p)
        return out

    # -- expansion -----------------------------------------------------
    @staticmethod
    def _apply_one(tracker, node: Node, t: int):
        """Apply one switch unconditionally; returns (pieces, report)."""
        pieces, trims, deflected, removed, report = tracker._split([node], t)
        tracker._check_new_congestion(pieces, removed, report)
        tracker._commit([node], t, trims, deflected, removed)
        return pieces, report

    @staticmethod
    def _state_clean(tracker) -> bool:
        return not (tracker.loops or tracker.blackholes or tracker.congestion_spans())

    def _repairable(self, tracker, pieces, report, rest: Sequence[Node]) -> bool:
        """Can any switch in ``rest`` still clear this apply's violations?

        Same completeness argument as :meth:`_rescue_partners`: a later
        include can only remove a violation by touching the violating
        pieces, their parents, or a class loading a violated link.
        """
        if not rest:
            return False
        ops = self._ops
        rest_set = set(rest)
        for piece, parent in pieces:
            if rest_set.intersection(ops.class_nodes(tracker, piece)):
                return True
            if rest_set.intersection(ops.class_nodes(tracker, parent)):
                return True
        seen_links = set()
        for span in report.congestion:
            if span.link in seen_links:
                continue
            seen_links.add(span.link)
            for cls in ops.classes_crossing(tracker, span.link):
                if rest_set.intersection(ops.class_nodes(tracker, cls)):
                    return True
        return False

    def _expand_subsets(
        self, tracker, pending: Tuple[Node, ...], candidates: List[Node], t: int
    ) -> bool:
        """Include/exclude DFS over ``candidates`` (include first).

        Visits every non-empty subset exactly once, as a chain of
        single-switch applies on scratch clones; include-first ordering
        reaches the full candidate set first, mirroring the reference
        engine's largest-subsets-first incumbent hunting.
        """
        applied_any = False
        k = len(candidates)
        chosen: List[Node] = []
        t0 = self.t0

        def descend(i: int, scratch, debt: bool) -> None:
            nonlocal applied_any
            if self.timed_out or self._tick():
                return
            if i == k:
                if not chosen:
                    return
                if debt and not self._state_clean(scratch):
                    return
                applied_any = True
                chosen_set = set(chosen)
                remaining = tuple(n for n in pending if n not in chosen_set)
                if remaining and t + 2 - t0 >= self.best_makespan:
                    return
                self._dfs(scratch, remaining, t + 1, t)
                return
            node = candidates[i]
            # Include branch first (larger subsets first).
            child = scratch.clone()
            pieces, report = self._apply_one(child, node, t)
            child_debt = debt
            include = True
            if not report.ok:
                if self._repairable(child, pieces, report, candidates[i + 1 :]):
                    child_debt = True
                else:
                    include = False  # violation can never be cleared
            if include:
                # Each committed probe-chain state is an expanded node of
                # this engine's (binary include/exclude) search tree.
                self.explored += 1
                chosen.append(node)
                descend(i + 1, child, child_debt)
                chosen.pop()
            if self.timed_out:
                return
            descend(i + 1, scratch, debt)

        descend(0, tracker, False)
        return applied_any

    def _expand_full(self, tracker, pending: Tuple[Node, ...], t: int) -> bool:
        """Probe only the all-pending round (the full_only fast path)."""
        child = tracker.clone()
        debt = False
        for node in pending:
            pieces, report = self._apply_one(child, node, t)
            self.explored += 1
            if not report.ok:
                idx = pending.index(node)
                if not self._repairable(child, pieces, report, pending[idx + 1 :]):
                    return False
                debt = True
        if debt and not self._state_clean(child):
            return False
        self._dfs(child, (), t + 1, t)
        return True


def run_optimal_search(
    instance: UpdateInstance,
    t0: int,
    time_budget: Optional[float],
    max_branch_width: int,
    max_horizon: int,
    node_budget: Optional[int],
    seed_times: Optional[Dict[Node, int]],
    seed_makespan: Optional[int],
):
    """Run the array OPT engine; returns the raw search outcome.

    Returns ``(best_times, explored, timed_out, horizon_cut, width_cut)``
    -- :func:`repro.core.optimal.optimal_schedule` wraps this into an
    :class:`~repro.core.optimal.OptimalResult`.
    """
    search = OptimalSearch(
        instance, t0, time_budget, max_branch_width, max_horizon, node_budget
    )
    with perf.span("opt.search"):
        best_times, _best_makespan = search.run(seed_times, seed_makespan)
    return (
        best_times,
        search.explored,
        search.timed_out,
        search.horizon_cut,
        search.width_cut,
    )


# ----------------------------------------------------------------------
# OR: round minimisation on the id-space union graph
# ----------------------------------------------------------------------

class UnionGraphIds:
    """Id-space union-graph safety oracle for the OR search.

    Encodes the old/new next-hop tables as flat int lists over interned
    switch ids (shape borrowed from
    :class:`repro.core.intervals_array.InstanceArrays`, but numpy-free so
    the OR engine never needs the dependency).  One safety check walks
    the implicit union graph with an iterative three-colour DFS over a
    byte array -- no per-check dict graph build.
    """

    __slots__ = ("names", "id_of", "n", "next_old", "next_new", "starts")

    def __init__(self, instance: UpdateInstance) -> None:
        names = list(instance.network.switches)
        id_of = {name: i for i, name in enumerate(names)}
        self.names = names
        self.id_of = id_of
        self.n = len(names)
        next_old = [-1] * self.n
        for src, dst in instance.old_config.items():
            next_old[id_of[src]] = id_of[dst]
        next_new = [-1] * self.n
        for src, dst in instance.new_config.items():
            next_new[id_of[src]] = id_of[dst]
        self.next_old = next_old
        self.next_new = next_new
        # Only switches with at least one out-edge can be on a cycle.
        self.starts = [
            i for i in range(self.n) if next_old[i] >= 0 or next_new[i] >= 0
        ]

    def round_is_safe(self, updated: bytearray, in_round: bytearray) -> bool:
        """Acyclicity of the union graph (both rules for in-round switches).

        Semantically identical to
        :func:`repro.core.rounds.round_is_loop_free`; only the graph
        representation differs.
        """
        WHITE, GREY, BLACK = 0, 1, 2
        colour = bytearray(self.n)
        next_old = self.next_old
        next_new = self.next_new

        def out_edges(v: int) -> Tuple[int, ...]:
            if updated[v]:
                new = next_new[v]
                return (new,) if new >= 0 else ()
            if in_round[v]:
                return tuple(h for h in (next_old[v], next_new[v]) if h >= 0)
            old = next_old[v]
            return (old,) if old >= 0 else ()

        for start in self.starts:
            if colour[start] != WHITE:
                continue
            stack: List[Tuple[int, Tuple[int, ...], int]] = [
                (start, out_edges(start), 0)
            ]
            colour[start] = GREY
            while stack:
                v, children, index = stack[-1]
                if index < len(children):
                    stack[-1] = (v, children, index + 1)
                    child = children[index]
                    state = colour[child]
                    if state == GREY:
                        return False
                    if state == WHITE:
                        colour[child] = GREY
                        stack.append((child, out_edges(child), 0))
                else:
                    colour[v] = BLACK
                    stack.pop()
        return True


def run_round_search(
    instance: UpdateInstance,
    time_budget: Optional[float],
    max_branch_width: int,
    node_budget: Optional[int],
):
    """The ``engine="array"`` round-minimisation branch and bound.

    Same branch structure as the reference ``minimize_rounds`` DFS --
    greedy incumbent, greedy maximal safe set per node, subsets largest
    first -- with three changes that preserve its incumbent evolution
    exactly: the id-space safety oracle, no per-subset safety recheck
    (safe sets are downward closed, so every subset of the maximal set
    passes), and a sound ``frozenset(updated) -> fewest rounds`` memo (a
    revisit with at least as many rounds used can never improve the
    incumbent, because the earlier visit already explored the identical
    subtree at an offset no worse).

    Returns ``(rounds, explored, timed_out, width_cut, elapsed)``.
    """
    started = time.monotonic()
    deadline = None if time_budget is None else started + time_budget
    pending_all = tuple(instance.switches_to_update)
    greedy = greedy_loop_free_rounds(instance, list(pending_all), deadline=deadline)
    best: List[List[Node]] = greedy
    best_count = len(greedy)
    explored = 0
    timed_out = deadline is not None and time.monotonic() > deadline
    width_cut = False

    graph = UnionGraphIds(instance)
    id_of = graph.id_of
    names = graph.names
    pending_ids = tuple(id_of[node] for node in pending_all)
    updated_mask = bytearray(graph.n)
    round_mask = bytearray(graph.n)
    memo: Dict[FrozenSet[int], int] = {}
    stack: List[Tuple[int, ...]] = []

    def dfs(updated_ids: FrozenSet[int], pending: Tuple[int, ...], used_rounds: int) -> None:
        nonlocal best, best_count, explored, timed_out, width_cut
        if timed_out:
            return
        if time_budget is not None and time.monotonic() - started > time_budget:
            timed_out = True
            return
        if node_budget is not None and explored >= node_budget:
            timed_out = True
            return
        explored += 1
        if not pending:
            if used_rounds < best_count:
                best_count = used_rounds
                best = [[names[i] for i in r] for r in stack]
            return
        if used_rounds + 1 >= best_count:
            return
        seen = memo.get(updated_ids)
        if seen is not None and seen <= used_rounds:
            return
        memo[updated_ids] = used_rounds

        # Greedy maximal safe set, in pending order (same as reference).
        maximal: List[int] = []
        for index, node in enumerate(pending):
            if (
                time_budget is not None
                and index % 64 == 0
                and time.monotonic() - started > time_budget
            ):
                timed_out = True
                return
            round_mask[node] = 1
            if graph.round_is_safe(updated_mask, round_mask):
                maximal.append(node)
            else:
                round_mask[node] = 0
        for node in maximal:
            round_mask[node] = 0
        if not maximal:
            return  # dead end (possible only with exotic drain rules)
        if len(maximal) > max_branch_width:
            maximal = maximal[:max_branch_width]
            width_cut = True

        for size in range(len(maximal), 0, -1):
            for subset in itertools.combinations(maximal, size):
                # Subsets of a safe set are safe: no recheck needed.
                stack.append(subset)
                for node in subset:
                    updated_mask[node] = 1
                dfs(
                    updated_ids | frozenset(subset),
                    tuple(n for n in pending if n not in subset),
                    used_rounds + 1,
                )
                for node in subset:
                    updated_mask[node] = 0
                stack.pop()
                if timed_out:
                    return

    with perf.span("or.search"):
        dfs(frozenset(), pending_ids, 0)
    return best, explored, timed_out, width_cut, time.monotonic() - started
