"""Struct-of-arrays flow tracking: the greedy engine's numpy hot path.

:class:`repro.core.intervals.IntervalTracker` keeps each flow class as a
tuple-of-tuples Python object and answers congestion probes by walking
per-link position dicts.  That representation is exact but pays a Python
-level cost proportional to trajectory *length* for every class created --
and trajectories are O(n) while classes are few (a greedy run at n=4000
creates ~80 classes over ~4000-hop paths).  This module stores the same
state column-wise:

* **Per instance** (computed once, shared by every tracker and clone):
  switch ids, sorted int64 link keys (``src_id * n + dst_id``) with
  parallel delay/capacity columns, and the old/new next-hop tables as flat
  int lists.  Trajectories become int arrays; "which link is hop i" is a
  vectorised ``searchsorted``.
* **Per class** (:class:`ArrayFlowClass`): node-id, link-id and offset
  arrays plus scalar emission bounds.  Splitting shares the parent's
  arrays structurally -- a trim reuses them outright (COW at the array
  level) and a deflected piece concatenates a parent prefix *view* with
  its freshly routed suffix; nothing is deep-copied.
* **Per probe**: one batched decision pass over every link the round
  touches -- a ``bincount`` total-load test and a lexsort adjacent-overlap
  test -- instead of a Python sweep per link.  Only links that fail the
  vectorised prefilter fall back to the exact event sweep
  (:func:`repro.core.intervals._sweep_link`), with the interval list
  rebuilt in the dict tracker's exact order so reported spans are
  bitwise identical.

The dict-backed tracker stays the differential oracle: the greedy engine
pins ``engine="incremental"`` (this tracker) against ``engine="fresh"``
(the dict tracker) byte-for-byte over hundreds of seeded instances.

When numpy is unavailable the module degrades gracefully:
``NUMPY_AVAILABLE`` is ``False`` and the greedy engine silently falls back
to the dict tracker.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np

    NUMPY_AVAILABLE = True
except ImportError:  # pragma: no cover - numpy is baked into CI images
    np = None  # type: ignore[assignment]
    NUMPY_AVAILABLE = False

from repro.core.instance import UpdateInstance
from repro.core.intervals import (
    BLACKHOLE,
    DELIVERED,
    LOOPED,
    CongestionSpan,
    LinkKey,
    RoundReport,
    _EPS,
    _NEG_CLAMP,
    _POS_CLAMP,
    _sweep_link,
)
from repro.network.graph import Node
from repro.perf import perf

_CACHE_ATTR = "_soa_arrays"


class InstanceArrays:
    """Immutable id-space encoding of one :class:`UpdateInstance`.

    Built once per instance (cached on the instance object, like its
    ``cached_property`` fields) and shared by every tracker and clone.
    Also owns the routing scratch buffers: a byte mask and a bool mask
    over the switch ids, zeroed again after every use, so probing rounds
    allocates nothing proportional to the network.
    """

    __slots__ = (
        "names",
        "id_of",
        "n_nodes",
        "link_keys",
        "capacity",
        "delay",
        "link_name",
        "demand",
        "dest",
        "next_old",
        "next_new",
        "max_hops",
        "old_path_ids",
        "_suffix_mark",
        "_node_mark",
    )

    def __init__(self, instance: UpdateInstance) -> None:
        network = instance.network
        names = network.switches
        self.names: List[Node] = names
        self.id_of: Dict[Node, int] = {name: i for i, name in enumerate(names)}
        n = len(names)
        self.n_nodes = n
        id_of = self.id_of

        links = network.links
        keys = np.fromiter(
            (id_of[link.src] * n + id_of[link.dst] for link in links),
            dtype=np.int64,
            count=len(links),
        )
        order = np.argsort(keys, kind="stable")
        self.link_keys = keys[order]
        self.capacity = np.array([link.capacity for link in links], dtype=np.float64)[order]
        self.delay = np.array([link.delay for link in links], dtype=np.int64)[order]
        self.link_name: List[LinkKey] = [links[i].endpoints for i in order]

        self.demand = float(instance.demand)
        self.dest = id_of[instance.destination]
        next_old = [-1] * n
        for src, dst in instance.old_config.items():
            next_old[id_of[src]] = id_of[dst]
        next_new = [-1] * n
        for src, dst in instance.new_config.items():
            next_new[id_of[src]] = id_of[dst]
        self.next_old = next_old
        self.next_new = next_new
        self.max_hops = n + 1
        self.old_path_ids = np.array(
            [id_of[node] for node in instance.old_path], dtype=np.int32
        )
        self._suffix_mark = bytearray(n)
        self._node_mark = np.zeros(n, dtype=bool)

    def encode_links(self, node_ids) -> "np.ndarray":
        """Link ids of the trajectory ``node_ids`` (vectorised lookup).

        Raises:
            KeyError: if any consecutive pair is not a network link (the
                dict tracker would raise the same from its delay map).
        """
        ids = node_ids.astype(np.int64, copy=False)
        keys = ids[:-1] * self.n_nodes + ids[1:]
        pos = np.searchsorted(self.link_keys, keys)
        if keys.size:
            clipped = np.minimum(pos, self.link_keys.size - 1)
            if not bool(np.all(self.link_keys[clipped] == keys)):
                raise KeyError("trajectory crosses a non-existent link")
        return pos.astype(np.int64, copy=False)

    def lid_of(self, src: Node, dst: Node) -> Optional[int]:
        """Link id of ``src -> dst``, or ``None`` when absent."""
        sid = self.id_of.get(src)
        did = self.id_of.get(dst)
        if sid is None or did is None:
            return None
        key = sid * self.n_nodes + did
        pos = int(np.searchsorted(self.link_keys, key))
        if pos >= self.link_keys.size or int(self.link_keys[pos]) != key:
            return None
        return pos


def instance_arrays(instance: UpdateInstance) -> InstanceArrays:
    """The cached :class:`InstanceArrays` of ``instance``."""
    cached = getattr(instance, _CACHE_ATTR, None)
    if cached is None:
        cached = InstanceArrays(instance)
        object.__setattr__(instance, _CACHE_ATTR, cached)
    return cached


class ArrayFlowClass:
    """One flow class in columnar form (see module docstring).

    Mirrors :class:`repro.core.intervals.FlowClass` field for field, with
    node names replaced by ids and tuples by numpy arrays.  Instances are
    immutable by convention; splits share the parent's arrays (trims
    outright, deflections as prefix views), which is what makes ``clone``
    plus ``probe_and_commit`` O(touched state).
    """

    __slots__ = (
        "lo",
        "hi",
        "nodes",
        "lids",
        "offsets",
        "outcome",
        "loop_node",
        "fresh_from",
        "_sorted_holder",
    )

    def __init__(
        self,
        lo: Optional[int],
        hi: Optional[int],
        nodes,
        lids,
        offsets,
        outcome: str = DELIVERED,
        loop_node: Optional[int] = None,
        fresh_from: int = 0,
        sorted_holder: Optional[list] = None,
    ) -> None:
        self.lo = lo
        self.hi = hi
        self.nodes = nodes
        self.lids = lids
        self.offsets = offsets
        self.outcome = outcome
        self.loop_node = loop_node
        self.fresh_from = fresh_from
        # One-element list holding (sorted_lids, order); shared with trims
        # so whichever relative computes the sort first serves both.
        self._sorted_holder = [] if sorted_holder is None else sorted_holder

    def is_empty(self) -> bool:
        return self.lo is not None and self.hi is not None and self.lo > self.hi

    def sorted_lids(self) -> Tuple["np.ndarray", "np.ndarray"]:
        """``(sorted link ids, positions)`` -- lazy, shared with trims."""
        holder = self._sorted_holder
        if not holder:
            order = np.argsort(self.lids, kind="stable")
            holder.append((self.lids[order], order))
        return holder[0]


def _flat_ranges(starts, counts):
    """Concatenate ``arange(starts[i], starts[i] + counts[i])`` segments."""
    nz = counts > 0
    starts = starts[nz]
    counts = counts[nz]
    if starts.size == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    total = int(ends[-1])
    idx = np.arange(total, dtype=np.int64)
    within = idx - np.repeat(ends - counts, counts)
    return np.repeat(starts.astype(np.int64), counts) + within


class ArrayIntervalTracker:
    """Drop-in :class:`IntervalTracker` replacement on the array layout.

    Same public surface (``clone`` / ``preview_round`` / ``apply_round`` /
    ``probe_and_commit`` / ``congestion_spans`` / ...), same reports down
    to the byte; only the representation differs.  Raises ``RuntimeError``
    when constructed without numpy -- callers gate on
    :data:`NUMPY_AVAILABLE`.
    """

    def __init__(
        self,
        instance: UpdateInstance,
        t0: int = 0,
        background: Optional[
            Dict[LinkKey, List[Tuple[Optional[int], Optional[int], float]]]
        ] = None,
    ) -> None:
        if not NUMPY_AVAILABLE:  # pragma: no cover - guarded by callers
            raise RuntimeError("ArrayIntervalTracker requires numpy")
        self.instance = instance
        self.t0 = t0
        self.background = background or {}
        self.arrays = instance_arrays(instance)
        arrays = self.arrays

        self._applied: Dict[Node, int] = {}
        self._last_time: Optional[int] = None
        self._classes: Dict[int, ArrayFlowClass] = {}
        self._alive: Set[int] = set()
        self._next_id = 0
        # Committed next-hop table: old config with the new rule substituted
        # for every applied switch (-1 = no rule).  Probes override the
        # round's entries in place and restore them, so routing is plain
        # list indexing with no per-hop dict lookups.
        self._cfg: List[int] = list(arrays.next_old)
        self._spans_cache: Optional[Tuple[CongestionSpan, ...]] = None

        self._bg_by_lid: Dict[int, List[Tuple[Optional[int], Optional[int], float]]] = {}
        for (src, dst), triples in self.background.items():
            lid = arrays.lid_of(src, dst)
            if lid is None:
                raise KeyError(f"background load on non-existent link {src!r} -> {dst!r}")
            self._bg_by_lid[lid] = [tuple(triple) for triple in triples]

        ids = arrays.old_path_ids
        lids = arrays.encode_links(ids)
        offsets = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(arrays.delay[lids]))
        )
        self._add_class(ArrayFlowClass(None, None, ids, lids, offsets))

    def clone(self) -> "ArrayIntervalTracker":
        """An independent copy in O(classes + switches), not O(trajectory).

        Class objects (and through them every trajectory array) are shared
        structurally; only the small per-tracker dicts, the alive set and
        the flat config table are copied.
        """
        other = object.__new__(ArrayIntervalTracker)
        other.instance = self.instance
        other.t0 = self.t0
        other.background = self.background
        other.arrays = self.arrays
        other._applied = dict(self._applied)
        other._last_time = self._last_time
        other._classes = dict(self._classes)
        other._alive = set(self._alive)
        other._next_id = self._next_id
        other._cfg = list(self._cfg)
        other._spans_cache = self._spans_cache
        other._bg_by_lid = self._bg_by_lid
        return other

    # ------------------------------------------------------------------
    # state accessors (API parity with IntervalTracker)
    # ------------------------------------------------------------------
    @property
    def applied(self) -> Dict[Node, int]:
        return dict(self._applied)

    @property
    def loops(self) -> List[Tuple[int, Node]]:
        names = self.arrays.names
        events: List[Tuple[int, Node]] = []
        for cid in sorted(self._alive):
            cls = self._classes[cid]
            if cls.outcome == LOOPED and not cls.is_empty():
                events.append(
                    (cls.lo if cls.lo is not None else cls.hi, names[cls.loop_node])
                )
        return events

    @property
    def blackholes(self) -> List[Tuple[int, Node]]:
        names = self.arrays.names
        events: List[Tuple[int, Node]] = []
        for cid in sorted(self._alive):
            cls = self._classes[cid]
            if cls.outcome == BLACKHOLE and not cls.is_empty():
                events.append(
                    (cls.lo if cls.lo is not None else cls.hi, names[int(cls.nodes[-1])])
                )
        return events

    @property
    def classes(self) -> List[ArrayFlowClass]:
        return [self._classes[cid] for cid in sorted(self._alive)]

    def load_at(self, src: Node, dst: Node, time: int) -> float:
        lid = self.arrays.lid_of(src, dst)
        if lid is None:
            return 0.0
        demand = self.arrays.demand
        total = 0.0
        for cid in sorted(self._alive):
            cls = self._classes[cid]
            for pos in np.flatnonzero(cls.lids == lid).tolist():
                offset = int(cls.offsets[pos])
                lo = None if cls.lo is None else cls.lo + offset
                hi = None if cls.hi is None else cls.hi + offset
                if (lo is None or lo <= time) and (hi is None or time <= hi):
                    total += demand
        return total

    def link_departure_spans(
        self, src: Node, dst: Node
    ) -> List[Tuple[Optional[int], Optional[int]]]:
        lid = self.arrays.lid_of(src, dst)
        if lid is None:
            return []
        spans: List[Tuple[Optional[int], Optional[int]]] = []
        for cid in sorted(self._alive):
            cls = self._classes[cid]
            for pos in np.flatnonzero(cls.lids == lid).tolist():
                offset = int(cls.offsets[pos])
                spans.append(
                    (
                        None if cls.lo is None else cls.lo + offset,
                        None if cls.hi is None else cls.hi + offset,
                    )
                )
        return spans

    # ------------------------------------------------------------------
    # rounds
    # ------------------------------------------------------------------
    def preview_round(self, nodes: Sequence[Node], time: int) -> RoundReport:
        with perf.span("tracker.preview"):
            self._check_round_args(nodes, time)
            pieces, _trims, _deflected, removed, report = self._split(nodes, time)
            self._check_new_congestion(pieces, removed, report)
            return report

    def apply_round(self, nodes: Sequence[Node], time: int) -> RoundReport:
        with perf.span("tracker.apply"):
            self._check_round_args(nodes, time)
            pieces, trims, deflected, removed, report = self._split(nodes, time)
            self._check_new_congestion(pieces, removed, report)
            self._commit(nodes, time, trims, deflected, removed)
            return report

    def probe_and_commit(self, nodes: Sequence[Node], time: int) -> RoundReport:
        with perf.span("tracker.probe"):
            self._check_round_args(nodes, time)
            pieces, trims, deflected, removed, report = self._split(nodes, time)
            self._check_new_congestion(pieces, removed, report)
            if report.ok:
                self._commit(nodes, time, trims, deflected, removed)
            return report

    # ------------------------------------------------------------------
    # global checks
    # ------------------------------------------------------------------
    def congestion_spans(self) -> List[CongestionSpan]:
        """All capacity violations of the committed state (cached).

        One vectorised prefilter over every loaded link; only links the
        prefilter cannot clear run the exact event sweep.  The result is
        cached until the next commit.
        """
        cached = self._spans_cache
        if cached is not None:
            return list(cached)
        arrays = self.arrays
        demand = arrays.demand
        ti_parts: List["np.ndarray"] = []
        lo_parts: List["np.ndarray"] = []
        hi_parts: List["np.ndarray"] = []
        load_parts: List["np.ndarray"] = []
        lid_parts: List["np.ndarray"] = []
        for cid in sorted(self._alive):
            cls = self._classes[cid]
            if cls.lids.size:
                lid_parts.append(cls.lids)
        bg_lids = sorted(self._bg_by_lid)
        if bg_lids:
            lid_parts.append(np.array(bg_lids, dtype=np.int64))
        if not lid_parts:
            self._spans_cache = ()
            return []
        touched = np.unique(np.concatenate(lid_parts))
        T = touched.size
        for cid in sorted(self._alive):
            cls = self._classes[cid]
            if not cls.lids.size:
                continue
            ti = np.searchsorted(touched, cls.lids)
            ti_parts.append(ti)
            lo_parts.append(self._bound_array(cls.lo, cls.offsets[:-1], _NEG_CLAMP))
            hi_parts.append(self._bound_array(cls.hi, cls.offsets[:-1], _POS_CLAMP))
            load_parts.append(np.full(cls.lids.size, demand))
        for lid in bg_lids:
            for lo, hi, load in self._bg_by_lid[lid]:
                ti_parts.append(np.array([np.searchsorted(touched, lid)], dtype=np.int64))
                lo_parts.append(np.array([_NEG_CLAMP if lo is None else lo], dtype=np.int64))
                hi_parts.append(np.array([_POS_CLAMP if hi is None else hi], dtype=np.int64))
                load_parts.append(np.array([load]))
        needs_exact = self._prefilter(
            T,
            arrays.capacity[touched],
            np.concatenate(ti_parts),
            np.concatenate(lo_parts),
            np.concatenate(hi_parts),
            np.concatenate(load_parts),
        )
        spans: List[CongestionSpan] = []
        if needs_exact is not None:
            for ti in np.flatnonzero(needs_exact).tolist():
                lid = int(touched[ti])
                link = arrays.link_name[lid]
                intervals = self._exact_link_intervals(lid, (), set())
                spans.extend(
                    _sweep_link(link, float(arrays.capacity[lid]), intervals, self.t0)
                )
        spans.sort(key=lambda span: (span.start, span.link))
        self._spans_cache = tuple(spans)
        return spans

    def congested_timed_link_count(self) -> int:
        return sum(span.timed_link_count for span in self.congestion_spans())

    def finite_drain_horizon(self) -> Optional[int]:
        horizon: Optional[int] = None
        for cid in sorted(self._alive):
            cls = self._classes[cid]
            if cls.hi is None:
                continue
            last = cls.hi + int(cls.offsets[-1])
            horizon = last if horizon is None else max(horizon, last)
        return horizon

    @property
    def ok(self) -> bool:
        return not (self.loops or self.blackholes or self.congestion_spans())

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_round_args(self, nodes: Sequence[Node], time: int) -> None:
        if not nodes:
            raise ValueError("an update round needs at least one switch")
        if self._last_time is not None and time < self._last_time:
            raise ValueError(
                f"rounds must be applied chronologically ({time} < {self._last_time})"
            )
        for node in nodes:
            if node in self._applied:
                raise ValueError(f"switch {node!r} was already updated")
            if node == self.instance.destination:
                raise ValueError("the destination switch is never updated")

    def _split(self, nodes: Sequence[Node], time: int):
        """Columnar port of :meth:`IntervalTracker._split`.

        Class iteration order (ascending id), threshold arithmetic and the
        emission-axis partition match the dict tracker exactly; only the
        hit scan (vectorised compare) and the routing (flat config table)
        differ mechanically.
        """
        report = RoundReport(time=time, nodes=tuple(nodes))
        arrays = self.arrays
        id_of = arrays.id_of
        round_ids = [id_of[node] for node in nodes]
        cfg = self._cfg
        saved = [(i, cfg[i]) for i in round_ids]
        for i in round_ids:
            cfg[i] = arrays.next_new[i]
        try:
            pieces: List[Tuple[ArrayFlowClass, ArrayFlowClass]] = []
            trims: List[Tuple[int, ArrayFlowClass]] = []
            deflected: List[ArrayFlowClass] = []
            removed: Set[int] = set()
            if len(round_ids) == 1:
                target = round_ids[0]
                round_arr = None
            else:
                target = None
                round_arr = np.array(round_ids, dtype=np.int32)
            for cid in sorted(self._alive):
                cls = self._classes[cid]
                if target is not None:
                    hits_idx = np.flatnonzero(cls.nodes == target)
                else:
                    hits_idx = np.flatnonzero(np.isin(cls.nodes, round_arr))
                if hits_idx.size == 0:
                    continue
                split = self._split_class(cls, hits_idx, time, report)
                if split is None:
                    continue
                trim, fresh = split
                removed.add(cid)
                if trim is not None:
                    trims.append((cid, trim))
                    pieces.append((trim, cls))
                for piece in fresh:
                    deflected.append(piece)
                    pieces.append((piece, cls))
        finally:
            for i, value in saved:
                cfg[i] = value
        return pieces, trims, deflected, removed, report

    def _split_class(self, cls: ArrayFlowClass, hits_idx, time: int, report: RoundReport):
        hits = hits_idx.tolist()
        if cls.outcome == LOOPED and hits and hits[-1] == len(cls.nodes) - 1:
            hits.pop()
        if not hits:
            return None
        offsets = cls.offsets
        thresholds = [(time - int(offsets[i]), i) for i in hits]
        relevant = [
            (threshold, i)
            for threshold, i in thresholds
            if cls.hi is None or threshold <= cls.hi
        ]
        if not relevant:
            return None

        trim: Optional[ArrayFlowClass] = None
        deflected: List[ArrayFlowClass] = []

        lowest_threshold = min(threshold for threshold, _ in relevant)
        keep_hi = lowest_threshold - 1
        if cls.lo is None or cls.lo <= keep_hi:
            trim = ArrayFlowClass(
                cls.lo,
                keep_hi if cls.hi is None else min(cls.hi, keep_hi),
                cls.nodes,
                cls.lids,
                cls.offsets,
                cls.outcome,
                cls.loop_node,
                fresh_from=len(cls.nodes),
                sorted_holder=cls._sorted_holder,
            )

        relevant.sort(key=lambda item: item[1])
        previous_threshold: Optional[int] = None
        names = self.arrays.names
        for threshold, index in relevant:
            lo = threshold
            hi = None if previous_threshold is None else previous_threshold - 1
            previous_threshold = threshold
            lo = lo if cls.lo is None else max(lo, cls.lo)
            if cls.hi is not None:
                hi = cls.hi if hi is None else min(hi, cls.hi)
            if hi is not None and lo > hi:
                continue
            piece = self._deflect(cls, index, lo, hi)
            deflected.append(piece)
            if piece.outcome == LOOPED:
                report.loops.append((lo, names[piece.loop_node]))
            elif piece.outcome == BLACKHOLE:
                report.blackholes.append((lo, names[int(piece.nodes[-1])]))
        return trim, deflected

    def _deflect(
        self, cls: ArrayFlowClass, index: int, lo: Optional[int], hi: Optional[int]
    ) -> ArrayFlowClass:
        """Route a deflected piece from trajectory position ``index``.

        Two-phase equivalent of :func:`repro.core.intervals._route_from`:
        a Python hop loop detects suffix-internal revisits with a byte
        mask, then one vectorised pass finds the earliest prefix revisit
        -- which always precedes whatever phase one stopped on, so
        truncating there reproduces the dict semantics without an
        O(prefix) ``set`` build per deflection.
        """
        arrays = self.arrays
        cfg = self._cfg
        dest = arrays.dest
        prefix_nodes = cls.nodes[: index + 1]
        current = int(prefix_nodes[-1])
        mark = arrays._suffix_mark
        appended: List[int] = []
        outcome = None
        loop_node: Optional[int] = None
        for _ in range(arrays.max_hops):
            if current == dest:
                outcome = DELIVERED
                break
            nxt = cfg[current]
            if nxt < 0:
                outcome = BLACKHOLE
                break
            appended.append(nxt)
            if mark[nxt]:
                outcome = LOOPED
                loop_node = nxt
                break
            mark[nxt] = 1
            current = nxt
        else:
            outcome = LOOPED
            loop_node = current
        for node in appended:
            mark[node] = 0

        suffix = np.array(appended, dtype=np.int32)
        if suffix.size:
            node_mark = arrays._node_mark
            node_mark[prefix_nodes] = True
            hit_mask = node_mark[suffix]
            node_mark[prefix_nodes] = False
            if hit_mask.any():
                first = int(np.argmax(hit_mask))
                suffix = suffix[: first + 1]
                outcome = LOOPED
                loop_node = int(suffix[-1])

        if suffix.size:
            walk = np.concatenate((prefix_nodes[-1:], suffix))
            suffix_lids = arrays.encode_links(walk)
            suffix_offsets = int(cls.offsets[index]) + np.cumsum(arrays.delay[suffix_lids])
            nodes = np.concatenate((prefix_nodes, suffix))
            lids = np.concatenate((cls.lids[:index], suffix_lids))
            offsets = np.concatenate((cls.offsets[: index + 1], suffix_offsets))
        else:
            nodes = prefix_nodes
            lids = cls.lids[:index]
            offsets = cls.offsets[: index + 1]
        return ArrayFlowClass(
            lo, hi, nodes, lids, offsets, outcome, loop_node, fresh_from=index
        )

    @staticmethod
    def _bound_array(bound: Optional[int], offsets, clamp: int):
        if bound is None:
            return np.full(offsets.shape, clamp, dtype=np.int64)
        return bound + offsets

    def _class_positions_on(self, cls: ArrayFlowClass, touched):
        """``(positions, touched-index per position)`` of ``cls`` on ``touched``.

        ``touched`` is a sorted link-id array; positions come back in
        ascending touched order, ascending trajectory position within one
        link -- the dict tracker's iteration order.
        """
        sorted_lids, order = cls.sorted_lids()
        left = np.searchsorted(sorted_lids, touched, side="left")
        right = np.searchsorted(sorted_lids, touched, side="right")
        counts = right - left
        if not int(counts.sum()):
            return None, None
        flat = _flat_ranges(left, counts)
        positions = order[flat]
        ti = np.repeat(np.arange(touched.size, dtype=np.int64), counts)
        return positions, ti

    def _check_new_congestion(
        self,
        pieces: List[Tuple[ArrayFlowClass, ArrayFlowClass]],
        removed: Set[int],
        report: RoundReport,
    ) -> None:
        """Batched port of :meth:`IntervalTracker._check_new_congestion`.

        Same link set (links on fresh suffixes), same contributions
        (committed classes, background, fresh suffixes, piece prefixes)
        and the same per-link decision -- but taken for *all* touched
        links in one vectorised pass.  Only links the prefilter cannot
        prove clean run the exact sweep, on an interval list rebuilt in
        the dict tracker's order, so span output is bitwise identical.
        """
        arrays = self.arrays
        demand = arrays.demand
        fresh_lid_parts: List["np.ndarray"] = []
        fresh_lo_parts: List["np.ndarray"] = []
        fresh_hi_parts: List["np.ndarray"] = []
        for piece, _parent in pieces:
            start = piece.fresh_from
            if start >= piece.lids.size:
                continue
            part = piece.lids[start:]
            offs = piece.offsets[start : piece.lids.size]
            fresh_lid_parts.append(part)
            fresh_lo_parts.append(self._bound_array(piece.lo, offs, _NEG_CLAMP))
            fresh_hi_parts.append(self._bound_array(piece.hi, offs, _POS_CLAMP))
        if not fresh_lid_parts:
            return
        all_fresh_lids = np.concatenate(fresh_lid_parts)
        touched, first_seen = np.unique(all_fresh_lids, return_index=True)
        T = touched.size
        cap_t = arrays.capacity[touched]

        ti_parts: List["np.ndarray"] = []
        lo_parts: List["np.ndarray"] = []
        hi_parts: List["np.ndarray"] = []
        load_parts: List["np.ndarray"] = []
        other_counts = np.zeros(T, dtype=np.int64)

        # Committed classes (ascending id, split parents excluded).
        for cid in sorted(self._alive):
            if cid in removed:
                continue
            cls = self._classes[cid]
            if not cls.lids.size:
                continue
            positions, ti = self._class_positions_on(cls, touched)
            if positions is None:
                continue
            offs = cls.offsets[positions]
            ti_parts.append(ti)
            lo_parts.append(self._bound_array(cls.lo, offs, _NEG_CLAMP))
            hi_parts.append(self._bound_array(cls.hi, offs, _POS_CLAMP))
            load_parts.append(np.full(ti.size, demand))
            other_counts += np.bincount(ti, minlength=T)
        # Background load.
        if self._bg_by_lid:
            for ti_scalar, lid in enumerate(touched.tolist()):
                for lo, hi, load in self._bg_by_lid.get(lid, ()):
                    ti_parts.append(np.array([ti_scalar], dtype=np.int64))
                    lo_parts.append(
                        np.array([_NEG_CLAMP if lo is None else lo], dtype=np.int64)
                    )
                    hi_parts.append(
                        np.array([_POS_CLAMP if hi is None else hi], dtype=np.int64)
                    )
                    load_parts.append(np.array([load]))
                    other_counts[ti_scalar] += 1
        # Fresh suffixes (piece order).
        ti_fresh = np.searchsorted(touched, all_fresh_lids)
        ti_parts.append(ti_fresh)
        lo_parts.append(np.concatenate(fresh_lo_parts))
        hi_parts.append(np.concatenate(fresh_hi_parts))
        load_parts.append(np.full(ti_fresh.size, demand))
        # The dict tracker appends prefix contributions into the same
        # per-link "fresh" lists as the suffixes, so they count towards its
        # multiply shortcut rather than as committed load.
        fresh_counts = np.bincount(ti_fresh, minlength=T)
        # Piece prefixes on touched links (piece order).
        for piece, parent in pieces:
            fresh_from = piece.fresh_from
            if fresh_from == 0:
                continue
            positions, ti = self._class_positions_on(parent, touched)
            if positions is None:
                continue
            in_prefix = positions < fresh_from
            if not bool(in_prefix.any()):
                continue
            positions = positions[in_prefix]
            ti = ti[in_prefix]
            offs = parent.offsets[positions]
            ti_parts.append(ti)
            lo_parts.append(self._bound_array(piece.lo, offs, _NEG_CLAMP))
            hi_parts.append(self._bound_array(piece.hi, offs, _POS_CLAMP))
            load_parts.append(np.full(ti.size, demand))
            fresh_counts = fresh_counts + np.bincount(ti, minlength=T)

        ti_all = np.concatenate(ti_parts)
        lo_all = np.concatenate(lo_parts)
        hi_all = np.concatenate(hi_parts)
        load_all = np.concatenate(load_parts)
        if perf.enabled:
            perf.count("tracker.array.batched_links", T)
            perf.count("tracker.array.batched_intervals", int(ti_all.size))
        needs_exact = self._prefilter(
            T,
            cap_t,
            ti_all,
            lo_all,
            hi_all,
            load_all,
            fresh_only_counts=np.where(other_counts == 0, fresh_counts, 0),
        )
        if needs_exact is None or not bool(needs_exact.any()):
            return
        # Exact sweeps, reported in the dict tracker's first-touch order.
        exact_order = np.argsort(first_seen[needs_exact], kind="stable")
        exact_tis = np.flatnonzero(needs_exact)[exact_order]
        for ti_scalar in exact_tis.tolist():
            lid = int(touched[ti_scalar])
            link = arrays.link_name[lid]
            intervals = self._exact_link_intervals(lid, pieces, removed)
            if perf.enabled:
                perf.count("tracker.array.exact_sweeps")
            report.congestion.extend(
                _sweep_link(link, float(arrays.capacity[lid]), intervals, self.t0)
            )

    def _prefilter(
        self,
        T: int,
        cap_t,
        ti_all,
        lo_all,
        hi_all,
        load_all,
        fresh_only_counts=None,
    ):
        """Vectorised per-link congestion decision.

        Returns ``None`` when every link is provably clean, else a bool
        array over the touched links marking those that need the exact
        sweep.  Mirrors the dict tracker's fast exits: total load within
        capacity, and lo-sorted pairwise-disjoint intervals none of which
        exceeds capacity on its own.  ``fresh_only_counts`` reproduces the
        dict tracker's pre-sweep multiply shortcut (``count * demand``)
        on links carrying nothing but fresh load, so boundary-exact float
        behaviour matches even for irrational demands.
        """
        totals = np.bincount(ti_all, weights=load_all, minlength=T)
        over = totals > cap_t + _EPS
        if fresh_only_counts is not None:
            fresh_only = fresh_only_counts > 0
            if bool(fresh_only.any()):
                over = over & (
                    ~fresh_only
                    | (fresh_only_counts * self.arrays.demand > cap_t + _EPS)
                )
        if not bool(over.any()):
            return None
        sel = over[ti_all]
        ti_s = ti_all[sel]
        lo_s = lo_all[sel]
        hi_s = hi_all[sel]
        load_s = load_all[sel]
        nonempty = lo_s <= hi_s
        ti_s = ti_s[nonempty]
        lo_s = lo_s[nonempty]
        hi_s = hi_s[nonempty]
        load_s = load_s[nonempty]
        fail = np.zeros(T, dtype=bool)
        oversized = load_s > cap_t[ti_s] + _EPS
        fail[ti_s[oversized]] = True
        if ti_s.size > 1:
            order = np.lexsort((lo_s, ti_s))
            tj = ti_s[order]
            lo_j = lo_s[order]
            hi_j = hi_s[order]
            overlap = (tj[1:] == tj[:-1]) & (lo_j[1:] <= hi_j[:-1])
            fail[tj[1:][overlap]] = True
        return fail if bool(fail.any()) else None

    def _exact_link_intervals(
        self,
        lid: int,
        pieces: Sequence[Tuple[ArrayFlowClass, ArrayFlowClass]],
        removed: Set[int],
    ) -> List[Tuple[Optional[int], Optional[int], float]]:
        """Interval list for one link in the dict tracker's exact order.

        Committed classes ascending id (positions ascending), background,
        then fresh suffixes and prefixes in piece order -- the order the
        dict tracker feeds ``_sweep_link``, so the event sweep's float
        accumulation sequence (and thus its spans) is reproduced exactly.
        """
        demand = self.arrays.demand
        out: List[Tuple[Optional[int], Optional[int], float]] = []
        for cid in sorted(self._alive):
            if cid in removed:
                continue
            cls = self._classes[cid]
            for pos in np.flatnonzero(cls.lids == lid).tolist():
                offset = int(cls.offsets[pos])
                out.append(
                    (
                        None if cls.lo is None else cls.lo + offset,
                        None if cls.hi is None else cls.hi + offset,
                        demand,
                    )
                )
        out.extend(self._bg_by_lid.get(lid, ()))
        for piece, _parent in pieces:
            start = piece.fresh_from
            for pos in np.flatnonzero(piece.lids[start:] == lid).tolist():
                offset = int(piece.offsets[start + pos])
                out.append(
                    (
                        None if piece.lo is None else piece.lo + offset,
                        None if piece.hi is None else piece.hi + offset,
                        demand,
                    )
                )
        for piece, parent in pieces:
            fresh_from = piece.fresh_from
            if fresh_from == 0:
                continue
            for pos in np.flatnonzero(parent.lids[:fresh_from] == lid).tolist():
                offset = int(parent.offsets[pos])
                out.append(
                    (
                        None if piece.lo is None else piece.lo + offset,
                        None if piece.hi is None else piece.hi + offset,
                        demand,
                    )
                )
        return out

    def _commit(
        self,
        nodes: Sequence[Node],
        time: int,
        trims: List[Tuple[int, ArrayFlowClass]],
        deflected: List[ArrayFlowClass],
        removed: Set[int],
    ) -> None:
        classes = self._classes
        trimmed = set()
        for cid, trim in trims:
            classes[cid] = trim
            trimmed.add(cid)
        for cid in removed:
            if cid not in trimmed:
                self._alive.discard(cid)
        for piece in deflected:
            self._add_class(piece)
        arrays = self.arrays
        for node in nodes:
            self._applied[node] = time
            node_id = arrays.id_of[node]
            self._cfg[node_id] = arrays.next_new[node_id]
        self._last_time = time
        self._spans_cache = None

    def _add_class(self, cls: ArrayFlowClass) -> int:
        cid = self._next_id
        self._next_id += 1
        self._classes[cid] = cls
        self._alive.add(cid)
        return cid
