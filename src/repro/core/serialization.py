"""JSON persistence for schedules and plans (operational tooling).

A timed update schedule is the artefact a production controller would hand
to its execution layer (or archive for audits); these helpers give it a
stable, versioned JSON form.  Full update plans serialise with their
execution semantics (``semantics``/``executor``) resolved from the plan's
registered planner -- a consumer replays or re-verifies the plan without
ever comparing protocol names.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.core.schedule import UpdateSchedule

_FORMAT = "chronus-schedule/1"
_PLAN_FORMAT = "chronus-plan/1"


def schedule_to_json(schedule: UpdateSchedule, indent: int = 2) -> str:
    """Serialise a schedule to JSON text."""
    payload: Dict[str, Any] = {
        "format": _FORMAT,
        "start_time": schedule.start_time,
        "feasible": schedule.feasible,
        "times": dict(schedule.times),
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


def schedule_from_json(text: str) -> UpdateSchedule:
    """Parse a schedule previously produced by :func:`schedule_to_json`.

    Raises:
        ValueError: on unknown format markers or malformed payloads.
    """
    payload = json.loads(text)
    if not isinstance(payload, dict) or payload.get("format") != _FORMAT:
        raise ValueError(f"not a {_FORMAT} document")
    times = payload.get("times")
    if not isinstance(times, dict):
        raise ValueError("missing 'times' mapping")
    return UpdateSchedule(
        times={str(node): int(when) for node, when in times.items()},
        start_time=payload.get("start_time"),
        feasible=bool(payload.get("feasible", True)),
    )


def plan_to_json(plan, indent: int = 2) -> str:
    """Serialise an :class:`repro.updates.base.UpdatePlan` to JSON text.

    The document embeds the plan's execution semantics, derived from the
    registered planner's capability flags: ``semantics`` is
    ``"two-phase"`` for versioned-install plans (re-verify with
    ``verify_two_phase``) and ``"in-place"`` otherwise, and ``executor``
    is the strategy the differential replay would use.  Unregistered
    protocols serialise with in-place/timed defaults.
    """
    from repro.updates.registry import TIMED, find_planner

    planner = find_planner(plan.protocol)
    two_phase = planner is not None and planner.two_phase
    payload: Dict[str, Any] = {
        "format": _PLAN_FORMAT,
        "protocol": plan.protocol,
        "semantics": "two-phase" if two_phase else "in-place",
        "executor": planner.executor if planner is not None else TIMED,
        "feasible": plan.feasible,
        "notes": plan.notes,
        "rules": {
            "installs": plan.rules.installs,
            "modifies": plan.rules.modifies,
            "deletes": plan.rules.deletes,
            "baseline_rules": plan.rules.baseline_rules,
            "peak_rules": plan.rules.peak_rules,
        },
        "rounds": [[when, list(nodes)] for when, nodes in plan.rounds],
        "schedule": {
            "start_time": plan.schedule.start_time,
            "feasible": plan.schedule.feasible,
            "times": dict(plan.schedule.times),
        },
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


def plan_from_json(text: str):
    """Parse a plan previously produced by :func:`plan_to_json`.

    The instance and verdict are not part of the document (they are
    re-derivable and environment-bound); the returned plan carries
    ``instance=None`` / ``verdict=None``.

    Raises:
        ValueError: on unknown format markers or malformed payloads.
    """
    from repro.updates.base import RuleAccounting, UpdatePlan

    payload = json.loads(text)
    if not isinstance(payload, dict) or payload.get("format") != _PLAN_FORMAT:
        raise ValueError(f"not a {_PLAN_FORMAT} document")
    schedule_doc = payload.get("schedule")
    rules_doc = payload.get("rules")
    if not isinstance(schedule_doc, dict) or not isinstance(rules_doc, dict):
        raise ValueError("missing 'schedule' or 'rules' mapping")
    times = schedule_doc.get("times")
    if not isinstance(times, dict):
        raise ValueError("missing schedule 'times' mapping")
    schedule = UpdateSchedule(
        times={str(node): int(when) for node, when in times.items()},
        start_time=schedule_doc.get("start_time"),
        feasible=bool(schedule_doc.get("feasible", True)),
    )
    rules = RuleAccounting(
        installs=int(rules_doc["installs"]),
        modifies=int(rules_doc["modifies"]),
        deletes=int(rules_doc["deletes"]),
        baseline_rules=int(rules_doc["baseline_rules"]),
        peak_rules=int(rules_doc["peak_rules"]),
    )
    rounds = [
        (int(when), tuple(str(node) for node in nodes))
        for when, nodes in payload.get("rounds", [])
    ]
    return UpdatePlan(
        protocol=str(payload.get("protocol", "")),
        schedule=schedule,
        rounds=rounds,
        rules=rules,
        feasible=bool(payload.get("feasible", True)),
        notes=str(payload.get("notes", "")),
        instance=None,
        verdict=None,
    )
