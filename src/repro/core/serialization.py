"""JSON persistence for schedules and plans (operational tooling).

A timed update schedule is the artefact a production controller would hand
to its execution layer (or archive for audits); these helpers give it a
stable, versioned JSON form.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.core.schedule import UpdateSchedule

_FORMAT = "chronus-schedule/1"


def schedule_to_json(schedule: UpdateSchedule, indent: int = 2) -> str:
    """Serialise a schedule to JSON text."""
    payload: Dict[str, Any] = {
        "format": _FORMAT,
        "start_time": schedule.start_time,
        "feasible": schedule.feasible,
        "times": dict(schedule.times),
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


def schedule_from_json(text: str) -> UpdateSchedule:
    """Parse a schedule previously produced by :func:`schedule_to_json`.

    Raises:
        ValueError: on unknown format markers or malformed payloads.
    """
    payload = json.loads(text)
    if not isinstance(payload, dict) or payload.get("format") != _FORMAT:
        raise ValueError(f"not a {_FORMAT} document")
    times = payload.get("times")
    if not isinstance(times, dict):
        raise ValueError("missing 'times' mapping")
    return UpdateSchedule(
        times={str(node): int(when) for node, when in times.items()},
        start_time=payload.get("start_time"),
        feasible=bool(payload.get("feasible", True)),
    )
