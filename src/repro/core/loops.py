"""Algorithm 4: checking for forwarding loops in the time-extended network.

Updating switch ``v`` at time ``t`` deflects the flow arriving at ``v`` onto
``v`` 's new next hop ``v'``.  A transient forwarding loop arises when those
units have *already travelled through* ``v'``: that is, when ``v'`` lies on
the still-live old-path segment upstream of ``v``.  Algorithm 4 therefore
walks backwards along the incoming solid (old-path) lines of ``v`` in the
time-extended network -- a solid line exists at a given time only while old
flow still arrives over it, which is determined by the committed update
times of the upstream switches -- and reports a loop when it encounters
``v'`` before reaching the source.
"""

from __future__ import annotations

from typing import Mapping, Optional, Set

from repro.core.instance import UpdateInstance
from repro.network.graph import Node


def creates_forwarding_loop(
    instance: UpdateInstance,
    applied: Mapping[Node, int],
    v: Node,
    t: int,
) -> bool:
    """Algorithm 4: would updating ``v`` at ``t`` create a forwarding loop?

    Args:
        instance: The update instance.
        applied: Committed ``switch -> update time`` assignments (``v`` must
            not be among them).  Switches absent from the mapping still use
            their old rule.
        v: The switch whose update is being considered.
        t: The candidate update time.

    Returns:
        ``True`` when the first deflected unit would revisit ``v`` 's new
        next hop; ``False`` otherwise (including when no flow arrives at
        ``v`` anymore, in which case the update cannot deflect anything).
    """
    v_prime = instance.new_next_hop(v)
    if v_prime is None:
        return False
    network = instance.network
    source = instance.source

    # Walk back along the old path from v.  The unit that would be deflected
    # at v departs each upstream switch p at strictly earlier times; the
    # solid line from p is live only while p still applies its old rule at
    # that departure time.
    x = v
    tau = t
    visited: Set[Node] = {v}
    while True:
        p = instance.old_predecessor(x)
        if p is None:
            return False
        if p in visited:  # defensive: the old path is simple
            return False
        tau -= network.delay(p, x)
        when = applied.get(p)
        if when is not None and when <= tau:
            # p stopped feeding the old path before this unit would have
            # passed: the solid line into x no longer exists at this depth.
            return False
        if p == v_prime:
            return True
        if p == source:
            return False
        visited.add(p)
        x = p


def new_route_revisits(
    instance: UpdateInstance,
    applied: Mapping[Node, int],
    v: Node,
    t: int,
) -> Optional[Node]:
    """Exact forward variant: trace the first deflected unit and spot revisits.

    This generalises Algorithm 4 beyond the immediate next hop ``v'``: the
    deflected unit is followed through the *mixed* configuration (each hop
    applies the rule active at its departure time) and the first switch it
    visits twice is returned, or ``None`` for a loop-free route.  Used by
    the ablation benchmarks to quantify what the backward check misses.
    """
    network = instance.network
    destination = instance.destination

    # Reconstruct the deflected unit's history: the old-path prefix through
    # which the unit reached v, restricted to live solid lines (as above).
    history: list = [v]
    x, tau = v, t
    while True:
        p = instance.old_predecessor(x)
        if p is None:
            break
        tau -= network.delay(p, x)
        when = applied.get(p)
        if when is not None and when <= tau:
            break
        history.append(p)
        if p == instance.source:
            break
        x = p
    visited = set(history)

    # Follow forward from v under the mixed configuration with v updated.
    times = dict(applied)
    times[v] = t
    current, now = v, t
    for _ in range(len(network) + 1):
        if current == destination:
            return None
        when = times.get(current)
        if when is not None and when <= now:
            nxt = instance.new_next_hop(current)
        else:
            nxt = instance.old_next_hop(current)
        if nxt is None:
            return None  # black hole, not a loop
        now += network.delay(current, nxt)
        if nxt in visited:
            return nxt
        visited.add(nxt)
        current = nxt
    return current
