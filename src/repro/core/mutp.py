"""The MUTP integer program (program (3) of the paper).

The paper phrases the Minimum Update Time Problem over the time-extended
network: every emission of the dynamic flow is a flow ``f`` in ``F_T`` that
must pick exactly one loop-free path ``p`` from the pre-computed set
``P(f)`` (constraint (3b)); the chosen paths respect every timed link's
capacity (constraint (3a)); and the number of time steps used is minimised.

The path choices are tied back to *switch update times* -- which the paper
keeps implicit in the construction of ``P(f)`` -- through explicit one-hot
update-time variables ``z_{v,k}``: a path hop that leaves switch ``v`` at
time ``tau`` using the new rule forces ``v`` to be updated by ``tau``
(``x_{f,p} <= sum_{k: t0+k <= tau} z_{v,k}``), and a hop using the old rule
forces the opposite.  The resulting model is solved exactly by
:mod:`repro.solver.branch_and_bound`.

Path sets grow exponentially with the horizon, so this formulation is the
*reference* solver for small instances (it cross-validates the practical
search in :mod:`repro.core.optimal`); the benchmarks use it as the paper
uses OPT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.instance import UpdateInstance
from repro.core.schedule import UpdateSchedule
from repro.solver.branch_and_bound import INFEASIBLE, BranchAndBoundResult, solve_ilp
from repro.solver.ilp import EQ, GEQ, LEQ, ILPModel
from repro.network.graph import Node

OLD = "old"
NEW = "new"
ARRIVE = "arrive"  # destination pseudo-hop: no rule, capacity only

Hop = Tuple[Node, int, str]  # (switch, departure time, rule used)


@dataclass
class MUTPModel:
    """A built MUTP integer program plus decoding metadata."""

    model: ILPModel
    instance: UpdateInstance
    t0: int
    horizon: int
    updatable: Tuple[Node, ...]
    emissions: Tuple[int, ...]
    paths_per_emission: Dict[int, int]

    def decode(self, solution: Dict[str, float]) -> UpdateSchedule:
        """Recover the timed update schedule from an ILP solution."""
        times: Dict[Node, int] = {}
        for node in self.updatable:
            for k in range(self.horizon):
                if round(solution.get(_z(node, k), 0.0)) == 1:
                    times[node] = self.t0 + k
                    break
            else:
                raise ValueError(f"solution assigns no update time to {node!r}")
        return UpdateSchedule(times=times, start_time=self.t0)


def build_mutp_model(
    instance: UpdateInstance,
    horizon: int,
    t0: int = 0,
    settle: Optional[int] = None,
) -> MUTPModel:
    """Assemble program (3) for updates within ``[t0, t0 + horizon - 1]``.

    Args:
        instance: The update instance.
        horizon: Number of candidate update steps ``|T|`` to allow.
        t0: The current time step.
        settle: How many emissions past the last update step to model; the
            default covers the new path's ramp-up.

    Returns:
        The model plus decoding metadata.
    """
    if horizon < 1:
        raise ValueError("horizon must be at least 1")
    network = instance.network
    updatable = tuple(instance.switches_to_update)
    if settle is None:
        settle = instance.new_path_delay + instance.old_path_delay
    last_step = t0 + horizon - 1
    emissions = tuple(range(t0 - instance.old_path_delay, last_step + settle + 1))

    model = ILPModel()

    # Update-time variables: z_{v,k} == 1 iff v updates at t0 + k.
    for node in updatable:
        coeffs: Dict[str, float] = {}
        for k in range(horizon):
            model.add_binary(_z(node, k))
            coeffs[_z(node, k)] = 1.0
        model.add_constraint(coeffs, EQ, 1.0, name=f"assign[{node}]")

    # Makespan variable: M >= k whenever z_{v,k} == 1.
    model.add_variable("M", lower=0.0, upper=float(horizon - 1))
    for node in updatable:
        coeffs = {_z(node, k): float(k) for k in range(horizon)}
        coeffs["M"] = -1.0
        model.add_constraint(coeffs, LEQ, 0.0, name=f"makespan[{node}]")
    model.set_objective({"M": 1.0})

    # Path variables per emission, with rule-consistency links to z.
    updatable_set = set(updatable)
    link_usage: Dict[Tuple[Node, Node, int], List[str]] = {}
    paths_per_emission: Dict[int, int] = {}
    for emission in emissions:
        paths = _enumerate_paths(instance, emission, t0, last_step)
        if not paths:
            raise ValueError(
                f"no loop-free space-time path for emission {emission}; "
                "increase the horizon"
            )
        paths_per_emission[emission] = len(paths)
        choice: Dict[str, float] = {}
        for index, hops in enumerate(paths):
            x_name = f"x[{emission},{index}]"
            model.add_binary(x_name)
            choice[x_name] = 1.0
            previous: Optional[Tuple[Node, int]] = None
            for node, departure, rule in hops:
                if previous is not None:
                    link_usage.setdefault(
                        (previous[0], node, previous[1]), []
                    ).append(x_name)
                if node in updatable_set:
                    by_tau = {
                        _z(node, k): 1.0
                        for k in range(horizon)
                        if t0 + k <= departure
                    }
                    if rule == NEW:
                        # x <= sum(z_{v,k} for update times <= departure)
                        coeffs = {x_name: 1.0}
                        for z_name, value in by_tau.items():
                            coeffs[z_name] = -value
                        model.add_constraint(coeffs, LEQ, 0.0)
                    else:
                        # x + sum(z earlier) <= 1
                        coeffs = {x_name: 1.0}
                        coeffs.update(by_tau)
                        model.add_constraint(coeffs, LEQ, 1.0)
                previous = (node, departure)
        model.add_constraint(choice, EQ, 1.0, name=f"route[{emission}]")

    # Constraint (3a): capacities of timed links.
    demand = instance.demand
    for (src, dst, _departure), x_names in link_usage.items():
        capacity = network.capacity(src, dst)
        if demand * len(x_names) <= capacity:
            continue  # cannot be violated
        model.add_constraint(
            {name: demand for name in x_names}, LEQ, capacity
        )

    return MUTPModel(
        model=model,
        instance=instance,
        t0=t0,
        horizon=horizon,
        updatable=updatable,
        emissions=emissions,
        paths_per_emission=paths_per_emission,
    )


def solve_mutp(
    instance: UpdateInstance,
    horizon: int,
    t0: int = 0,
    time_budget: Optional[float] = None,
) -> Tuple[Optional[UpdateSchedule], BranchAndBoundResult]:
    """Build and solve program (3); returns ``(schedule, solver result)``.

    A horizon so short that some emission has no loop-free space-time path
    at all is reported as infeasible (rather than propagating the builder's
    error): no schedule within that horizon can route the flow.
    """
    try:
        built = build_mutp_model(instance, horizon, t0=t0)
    except ValueError as error:
        if "no loop-free space-time path" not in str(error):
            raise
        return None, BranchAndBoundResult(status=INFEASIBLE)
    result = solve_ilp(built.model, time_budget=time_budget)
    if result.solution is None:
        return None, result
    return built.decode(result.solution), result


def _z(node: Node, k: int) -> str:
    return f"z[{node},{k}]"


def _enumerate_paths(
    instance: UpdateInstance,
    emission: int,
    t0: int,
    last_step: int,
) -> List[Tuple[Hop, ...]]:
    """All loop-free space-time paths an emission could take.

    At each switch the emission may use the old or the new rule, except that
    rules are pinned where no update-time choice could make them active:
    before ``t0`` only old rules apply, and after ``last_step`` every
    updatable switch runs its new rule (all updates happen by then).
    """
    network = instance.network
    destination = instance.destination
    updatable = set(instance.switches_to_update)
    results: List[Tuple[Hop, ...]] = []

    def extend(node: Node, time: int, visited: Tuple[Node, ...], hops: Tuple[Hop, ...]) -> None:
        if node == destination:
            # Record the arrival so the final link's capacity is accounted;
            # ARRIVE hops carry no rule-consistency constraint.
            results.append(hops + ((node, time, ARRIVE),))
            return
        options: List[Tuple[Node, str]] = []
        old_hop = instance.old_next_hop(node)
        new_hop = instance.new_next_hop(node)
        if node in updatable:
            # Old rule active at departure `time` iff the update happens
            # later (updates end at last_step); new rule iff it happened by
            # `time` (updates start at t0).
            if old_hop is not None and time < last_step:
                options.append((old_hop, OLD))
            if new_hop is not None and time >= t0:
                options.append((new_hop, NEW))
        else:
            if old_hop is not None:
                options.append((old_hop, OLD))
            elif new_hop is not None:
                options.append((new_hop, NEW))
        for nxt, rule in options:
            if nxt in visited:
                continue  # P(f) contains only loop-free paths (Definition 2)
            extend(
                nxt,
                time + network.delay(node, nxt),
                visited + (nxt,),
                hops + ((node, time, rule),),
            )

    extend(instance.source, emission, (instance.source,), ())
    return results
