"""Scalable exact dynamic-flow tracking via emission intervals.

The unit tracer in :mod:`repro.core.trace` follows every emitted unit of
flow individually, which is quadratic.  This module exploits that the source
emits at a *constant* rate: all units emitted within a contiguous time
interval that experience the same sequence of forwarding rules follow the
same trajectory, merely time-shifted.  Such a group is a :class:`FlowClass`;
an update round splits the affected classes at the deflection thresholds
``T - offset(v)`` and appends freshly routed suffixes.  Per-link loads then
become short lists of departure-time intervals, so congestion checking is a
sweep over a handful of intervals instead of a unit-by-unit replay.

The tracker is the engine behind the Chronus greedy scheduler, the OPT
search and all congestion metrics; tests cross-validate it against the unit
tracer on thousands of random instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.cow import CowIndex
from repro.core.instance import UpdateInstance
from repro.core.schedule import UpdateSchedule
from repro.network.graph import Node
from repro.perf import perf

LinkKey = Tuple[Node, Node]

# One committed load contribution on a link.  Background load is stored
# resolved as ``(None, lo, hi, load)``; class load is stored as
# ``(cid, offset, load)`` and resolved against the class's *current*
# emission bounds at read time -- narrowing a class in place (a trim
# commit) then never has to patch the memo.
_Entry = Tuple  # (None, lo, hi, load) | (cid, offset, load)

_EPS = 1e-9

# Infinity stand-ins for the sweep's disjointness fast path; far outside any
# reachable departure time, so order relative to finite coordinates (which
# is all that test uses) is preserved.
_NEG_CLAMP = -(1 << 60)
_POS_CLAMP = 1 << 60

DELIVERED = "delivered"
BLACKHOLE = "blackhole"
LOOPED = "looped"


@dataclass(frozen=True)
class FlowClass:
    """A maximal group of emissions sharing one space-time trajectory.

    Attributes:
        lo: First emission time of the group (``None`` means minus infinity:
            traffic that has been flowing since before the update began).
        hi: Last emission time, inclusive (``None`` means plus infinity: the
            group keeps emitting until a later update splits it).
        nodes: The trajectory's switch sequence, starting at the source.
        offsets: Departure-time offset of each trajectory switch relative to
            the emission time (``offsets[0] == 0``).
        outcome: ``"delivered"`` when the trajectory reaches the destination,
            ``"blackhole"`` when it ends at a switch without a rule,
            ``"looped"`` when it revisits a switch (the trajectory is then
            truncated at the revisited switch).
        loop_node: The revisited switch for ``"looped"`` trajectories.
        fresh_from: First trajectory index whose links carry a load pattern
            that did not exist before this class was created (0 for the
            initial class; the deflection point for split pieces; the full
            length for trimmed pieces, whose loads are a subset of their
            parent's).  Incremental congestion checks only sweep fresh
            links.
    """

    lo: Optional[int]
    hi: Optional[int]
    nodes: Tuple[Node, ...]
    offsets: Tuple[int, ...]
    outcome: str = DELIVERED
    loop_node: Optional[Node] = None
    fresh_from: int = 0
    _link_positions: Optional[Dict[LinkKey, List[int]]] = field(
        default=None, compare=False, repr=False
    )

    def is_empty(self) -> bool:
        """Whether the emission interval contains no integer time."""
        return self.lo is not None and self.hi is not None and self.lo > self.hi

    def departure_interval(self, index: int) -> Tuple[Optional[int], Optional[int]]:
        """Departure-time interval at trajectory position ``index``."""
        offset = self.offsets[index]
        lo = None if self.lo is None else self.lo + offset
        hi = None if self.hi is None else self.hi + offset
        return lo, hi

    def links(self):
        """Iterate ``(index, (src, dst))`` over the trajectory's links."""
        for i in range(len(self.nodes) - 1):
            yield i, (self.nodes[i], self.nodes[i + 1])

    def link_positions(self) -> Dict[LinkKey, List[int]]:
        """``link -> trajectory indices`` (cached; trajectories are immutable)."""
        cached = self._link_positions
        if cached is None:
            cached = {}
            nodes = self.nodes
            for i in range(len(nodes) - 1):
                cached.setdefault((nodes[i], nodes[i + 1]), []).append(i)
            object.__setattr__(self, "_link_positions", cached)
        return cached


@dataclass(frozen=True)
class CongestionSpan:
    """Link ``link`` is over capacity for all departures in ``[start, end]``."""

    link: LinkKey
    start: int
    end: int
    load: float
    capacity: float

    @property
    def timed_link_count(self) -> int:
        """Number of congested time-extended links this span covers."""
        return self.end - self.start + 1


@dataclass
class RoundReport:
    """What applying (or previewing) one update round would do.

    Attributes:
        time: The round's time point.
        nodes: Switches updated in the round.
        loops: ``(emission, node)`` pairs for new forwarding loops.
        blackholes: ``(emission, node)`` pairs for new black holes.
        congestion: New capacity violations caused by the round.
    """

    time: int
    nodes: Tuple[Node, ...]
    loops: List[Tuple[int, Node]] = field(default_factory=list)
    blackholes: List[Tuple[int, Node]] = field(default_factory=list)
    congestion: List[CongestionSpan] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (self.loops or self.blackholes or self.congestion)


class IntervalTracker:
    """Exact, incremental dynamic-flow state during a timed update.

    Typical use -- drive a schedule round by round::

        tracker = IntervalTracker(instance, t0=0)
        for time, nodes in schedule.rounds():
            report = tracker.apply_round(nodes, time)
        spans = tracker.congestion_spans()

    ``preview_round`` answers "would updating these switches now violate
    anything?" without committing, which is what the greedy scheduler and
    the OPT search branch on.
    """

    def __init__(
        self,
        instance: UpdateInstance,
        t0: int = 0,
        background: Optional[Dict[LinkKey, List[Tuple[Optional[int], Optional[int], float]]]] = None,
    ) -> None:
        """Args:
            instance: The update instance whose flow is tracked.
            t0: Current time step.
            background: Static load from *other* flows per link, as
                ``(first departure, last departure, demand)`` triples
                (``None`` bounds are open); included in every capacity
                check.  This is how multi-flow scheduling composes.
        """
        self.instance = instance
        self.t0 = t0
        self.background = background or {}
        self._applied: Dict[Node, int] = {}
        self._last_time: Optional[int] = None
        self._classes: Dict[int, FlowClass] = {}
        self._alive: Set[int] = set()
        self._link_index: CowIndex[LinkKey, int] = CowIndex()
        self._node_index: CowIndex[Node, int] = CowIndex()
        self._next_id = 0
        # Congestion-check memoisation, valid between commits: candidate
        # -round probes (greedy's and OPT's ``preview_round`` calls) hit
        # the same links repeatedly while the committed load is unchanged,
        # so the committed interval list and its sweep result are cached
        # per link and invalidated wholesale by ``apply_round``.
        self._entry_memo: Dict[LinkKey, Tuple[_Entry, ...]] = {}
        self._span_memo: Dict[LinkKey, Tuple[CongestionSpan, ...]] = {}
        # Commits mark the span memo dirty instead of invalidating touched
        # links one by one; the (rare) global congestion check clears it.
        self._spans_dirty = False

        initial = _make_class(instance, None, None, instance.old_path)
        self._add_class(initial)

    def clone(self) -> "IntervalTracker":
        """An independent copy in O(touched state), not O(whole state).

        Flow classes are immutable and shared outright; the link and node
        indexes are copy-on-write (:class:`repro.core.cow.CowIndex`), so
        only their head-pointer dicts are copied -- every per-key id
        sequence is structurally shared with this tracker.  The congestion
        memos carry over: they are keyed on per-link revisions, which both
        copies advance independently after the split.
        """
        other = object.__new__(IntervalTracker)
        other.instance = self.instance
        other.t0 = self.t0
        other.background = self.background
        other._applied = dict(self._applied)
        other._last_time = self._last_time
        other._classes = dict(self._classes)
        other._alive = set(self._alive)
        other._link_index = self._link_index.snapshot()
        other._node_index = self._node_index.snapshot()
        other._next_id = self._next_id
        other._entry_memo = dict(self._entry_memo)
        other._span_memo = dict(self._span_memo)
        other._spans_dirty = self._spans_dirty
        return other

    # ------------------------------------------------------------------
    # state accessors
    # ------------------------------------------------------------------
    @property
    def applied(self) -> Dict[Node, int]:
        """Committed ``switch -> update time`` assignments."""
        return dict(self._applied)

    @property
    def loops(self) -> List[Tuple[int, Node]]:
        """Forwarding loops of the *final* flow state.

        Derived from the live classes rather than recorded eagerly: a round
        may send units towards a switch they already crossed, yet a later
        round can deflect them again before they arrive -- only trajectories
        that remain looped once all rounds are applied violate Definition 2.
        """
        events: List[Tuple[int, Node]] = []
        for cid in sorted(self._alive):
            cls = self._classes[cid]
            if cls.outcome == LOOPED and not cls.is_empty():
                events.append((cls.lo if cls.lo is not None else cls.hi, cls.loop_node))
        return events

    @property
    def blackholes(self) -> List[Tuple[int, Node]]:
        """Dropped-traffic events of the final flow state (see ``loops``)."""
        events: List[Tuple[int, Node]] = []
        for cid in sorted(self._alive):
            cls = self._classes[cid]
            if cls.outcome == BLACKHOLE and not cls.is_empty():
                events.append((cls.lo if cls.lo is not None else cls.hi, cls.nodes[-1]))
        return events

    @property
    def classes(self) -> List[FlowClass]:
        """All live flow classes."""
        return [self._classes[cid] for cid in sorted(self._alive)]

    def load_at(self, src: Node, dst: Node, time: int) -> float:
        """Total flow departing over ``src -> dst`` at ``time``."""
        total = 0.0
        for cid in self._link_index.get((src, dst), ()):  # stale ids filtered below
            if cid not in self._alive:
                continue
            cls = self._classes[cid]
            for index in cls.link_positions().get((src, dst), ()):
                lo, hi = cls.departure_interval(index)
                if (lo is None or lo <= time) and (hi is None or time <= hi):
                    total += self.instance.demand
        return total

    def link_departure_spans(self, src: Node, dst: Node) -> List[Tuple[Optional[int], Optional[int]]]:
        """Departure intervals of all live classes on ``src -> dst``."""
        spans: List[Tuple[Optional[int], Optional[int]]] = []
        for cid in self._link_index.get((src, dst), ()):  # keep insertion order
            if cid not in self._alive:
                continue
            cls = self._classes[cid]
            for index in cls.link_positions().get((src, dst), ()):
                spans.append(cls.departure_interval(index))
        return spans

    # ------------------------------------------------------------------
    # rounds
    # ------------------------------------------------------------------
    def preview_round(self, nodes: Sequence[Node], time: int) -> RoundReport:
        """Report the violations updating ``nodes`` at ``time`` would cause.

        Does not modify the tracker.
        """
        with perf.span("tracker.preview"):
            self._check_round_args(nodes, time)
            pieces, _trims, _deflected, removed, report = self._split(nodes, time)
            self._check_new_congestion(pieces, removed, report)
            return report

    def apply_round(self, nodes: Sequence[Node], time: int) -> RoundReport:
        """Commit updating ``nodes`` at ``time`` and report new violations."""
        with perf.span("tracker.apply"):
            self._check_round_args(nodes, time)
            pieces, trims, deflected, removed, report = self._split(nodes, time)
            self._check_new_congestion(pieces, removed, report)
            self._commit(nodes, time, trims, deflected, removed)
            return report

    def probe_and_commit(self, nodes: Sequence[Node], time: int) -> RoundReport:
        """Apply ``nodes`` at ``time`` only when doing so violates nothing.

        One split + one sweep either way: a clean probe commits the already
        -computed pieces instead of re-splitting (what ``preview_round``
        followed by ``apply_round`` would do), a dirty probe leaves the
        tracker untouched.  This is the greedy engine's per-candidate step:
        probing heads one at a time against a scratch clone that accumulates
        the accepted ones.
        """
        with perf.span("tracker.probe"):
            self._check_round_args(nodes, time)
            pieces, trims, deflected, removed, report = self._split(nodes, time)
            self._check_new_congestion(pieces, removed, report)
            if report.ok:
                self._commit(nodes, time, trims, deflected, removed)
            return report

    def _commit(
        self,
        nodes: Sequence[Node],
        time: int,
        trims: List[Tuple[int, FlowClass]],
        deflected: List[FlowClass],
        removed: Set[int],
    ) -> None:
        """Adopt a computed split as the new committed state.

        Trimmed parents keep their class id: the trim has the parent's
        exact trajectory, only narrower emission bounds, so replacing the
        class object in place leaves the link/node indexes and the
        offset-based memo entries valid with zero per-link work.  Only
        parents whose every emission deflected die, and only the deflected
        pieces (fresh routes) are registered as new classes.
        """
        classes = self._classes
        trimmed = set()
        for cid, trim in trims:
            classes[cid] = trim
            trimmed.add(cid)
        for cid in removed:
            if cid not in trimmed:
                self._alive.discard(cid)
        added = [(self._add_class(piece), piece) for piece in deflected]
        for node in nodes:
            self._applied[node] = time
        self._last_time = time
        self._spans_dirty = True
        if added:
            self._update_memos(added)

    def _update_memos(self, added: List[Tuple[int, FlowClass]]) -> None:
        """Append the fresh pieces' entries to the touched links' memos.

        A commit changes committed loads three ways, two of which need no
        memo work at all: trims resolve live (the ``(cid, offset, load)``
        entries pick up the narrowed bounds from the replaced class
        object), and dead parents' entries are left behind for readers to
        filter against ``_alive`` (dropping them here would rebuild one
        tuple per parent link per commit over thousands-of-links shared
        -path trajectories).  Only the deflected pieces' loads are genuinely
        new, and their entries are appended where a memo already exists.
        Spans cannot be patched; commits flag them dirty wholesale and the
        global check rebuilds on demand.
        """
        entry_memo = self._entry_memo
        demand = self.instance.demand
        for cid, piece in added:
            offsets = piece.offsets
            for link, indices in piece.link_positions().items():
                memo = entry_memo.get(link)
                if memo is not None:
                    if len(indices) == 1:
                        entry_memo[link] = memo + ((cid, offsets[indices[0]], demand),)
                    else:
                        entry_memo[link] = memo + tuple(
                            (cid, offsets[i], demand) for i in indices
                        )

    # ------------------------------------------------------------------
    # global checks
    # ------------------------------------------------------------------
    def congestion_spans(self) -> List[CongestionSpan]:
        """All capacity violations of the current flow state.

        Per-link results are memoised between commits, so repeated global
        checks on an unchanged tracker cost a handful of dict lookups.
        """
        if self._spans_dirty:
            self._span_memo.clear()
            self._spans_dirty = False
        spans: List[CongestionSpan] = []
        links = set(self._link_index) | set(self.background)
        for link in sorted(links):
            spans.extend(self._committed_spans(link))
        spans.sort(key=lambda span: (span.start, span.link))
        return spans

    def congested_timed_link_count(self) -> int:
        """Number of congested links of the time-extended network (Fig. 8)."""
        return sum(span.timed_link_count for span in self.congestion_spans())

    def finite_drain_horizon(self) -> Optional[int]:
        """Last departure time of any finite flow class, or ``None``.

        While a scheduler makes no progress, only the draining of finite
        classes can unblock it; once this horizon passes with no progress
        the remaining blockers are never-ending streams (schedulers use this
        as their stall fix-point).
        """
        horizon: Optional[int] = None
        for cls in self.classes:
            if cls.hi is None:
                continue
            last = cls.hi + cls.offsets[-1]
            horizon = last if horizon is None else max(horizon, last)
        return horizon

    @property
    def ok(self) -> bool:
        """No loops, black holes or congestion so far."""
        return not (self.loops or self.blackholes or self.congestion_spans())

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_round_args(self, nodes: Sequence[Node], time: int) -> None:
        if not nodes:
            raise ValueError("an update round needs at least one switch")
        if self._last_time is not None and time < self._last_time:
            raise ValueError(
                f"rounds must be applied chronologically ({time} < {self._last_time})"
            )
        for node in nodes:
            if node in self._applied:
                raise ValueError(f"switch {node!r} was already updated")
            if node == self.instance.destination:
                raise ValueError("the destination switch is never updated")

    def _split(
        self, nodes: Sequence[Node], time: int
    ) -> Tuple[
        List[Tuple[FlowClass, FlowClass]],
        List[Tuple[int, FlowClass]],
        List[FlowClass],
        Set[int],
        RoundReport,
    ]:
        """Compute the class splits caused by updating ``nodes`` at ``time``.

        Returns ``(pieces, trims, deflected, removed, report)``:
        ``pieces`` pairs every replacement piece with its parent for the
        congestion check, ``trims`` maps parent ids to their narrowed
        in-place replacements, ``deflected`` holds the freshly routed
        pieces to register as new classes, and ``removed`` is the check's
        exclusion set (every split parent -- its old bounds must not be
        double-counted against the pieces).
        """
        report = RoundReport(time=time, nodes=tuple(nodes))
        round_set = set(nodes)
        applied_after = dict(self._applied)
        for node in nodes:
            applied_after[node] = time
        config = self.instance.config_at(applied_after, time)

        pieces: List[Tuple[FlowClass, FlowClass]] = []
        trims: List[Tuple[int, FlowClass]] = []
        deflected: List[FlowClass] = []
        removed: Set[int] = set()
        # Only classes whose trajectory touches a round switch can split.
        candidates: Set[int] = set()
        for node in round_set:
            candidates.update(self._node_index.get(node, ()))
        for cid in sorted(candidates):
            if cid not in self._alive:
                continue
            cls = self._classes[cid]
            split = _split_class(self.instance, cls, round_set, time, config, report)
            if split is None:
                continue
            trim, fresh = split
            removed.add(cid)
            if trim is not None:
                trims.append((cid, trim))
                pieces.append((trim, cls))
            for piece in fresh:
                deflected.append(piece)
                pieces.append((piece, cls))
        return pieces, trims, deflected, removed, report

    def _check_new_congestion(
        self,
        pieces: List[Tuple[FlowClass, FlowClass]],
        removed: Set[int],
        report: RoundReport,
    ) -> None:
        """Sweep only the links whose load pattern the round changed.

        Split pieces partition their parent's emission interval, so loads on
        shared prefix links are unchanged; only links on the freshly routed
        suffixes (``fresh_from`` onward) can newly congest.  The fresh
        departure intervals are collected per link in one pass over the
        suffixes; prefix contributions on those same links (a link that is
        fresh for one piece may carry another piece's unchanged prefix load)
        are then looked up in each parent's cached position index instead of
        building a position index per piece -- parents are committed classes
        whose index is built once and reused across every probe.  Links
        whose combined committed + fresh load cannot exceed capacity are
        skipped without a sweep.
        """
        demand = self.instance.demand
        extras: Dict[LinkKey, List[Tuple[Optional[int], Optional[int], float]]] = {}
        for piece, _parent in pieces:
            nodes = piece.nodes
            offsets = piece.offsets
            lo0, hi0 = piece.lo, piece.hi
            for i in range(piece.fresh_from, len(nodes) - 1):
                lo = None if lo0 is None else lo0 + offsets[i]
                hi = None if hi0 is None else hi0 + offsets[i]
                extras.setdefault((nodes[i], nodes[i + 1]), []).append(
                    (lo, hi, demand)
                )
        if not extras:
            return
        # Prefix positions (< fresh_from) match the parent's trajectory
        # index for index, so the parent's cached link positions answer
        # "where does this piece load a touched link" without scanning the
        # piece's (possibly very long) trajectory.
        for piece, parent in pieces:
            parent_positions = parent.link_positions()
            fresh_from = piece.fresh_from
            offsets = piece.offsets
            lo0, hi0 = piece.lo, piece.hi
            for link, fresh_list in extras.items():
                for i in parent_positions.get(link, ()):
                    if i >= fresh_from:
                        break  # ascending; the rest are fresh (already added)
                    lo = None if lo0 is None else lo0 + offsets[i]
                    hi = None if hi0 is None else hi0 + offsets[i]
                    fresh_list.append((lo, hi, demand))
        capacities = self.instance.network.capacity_map()
        classes = self._classes
        alive = self._alive
        profiling = perf.enabled
        for link, fresh in extras.items():
            capacity = capacities[link]
            committed = self._committed_entries(link)
            if not committed and len(fresh) * demand <= capacity + _EPS:
                if profiling:
                    perf.count("tracker.links_skipped")
                continue  # combined fresh load cannot exceed capacity
            intervals = []
            for entry in committed:
                cid = entry[0]
                if cid is None:
                    intervals.append(entry[1:])
                elif cid in alive and cid not in removed:
                    cls = classes[cid]
                    offset = entry[1]
                    lo0 = cls.lo
                    hi0 = cls.hi
                    intervals.append(
                        (
                            None if lo0 is None else lo0 + offset,
                            None if hi0 is None else hi0 + offset,
                            entry[2],
                        )
                    )
            intervals.extend(fresh)
            if profiling:
                perf.count("tracker.sweeps")
                perf.count("tracker.sweep_intervals", len(intervals))
            report.congestion.extend(
                _sweep_link(link, capacity, intervals, self.t0)
            )

    def _committed_entries(self, link: LinkKey) -> Tuple[_Entry, ...]:
        """The committed load contributions on ``link`` (memoised).

        Candidate-round probes assemble their interval lists from this
        cache instead of re-walking the index and every class's link
        positions.  Commits patch the cache in place by appending the new
        pieces' entries; entries of since-removed classes are left behind,
        so READERS MUST FILTER on ``cid in self._alive`` (``None`` cids are
        background load and always live) and resolve class entries'
        ``(cid, offset, load)`` against the class's current bounds.
        """
        memo = self._entry_memo.get(link)
        if perf.enabled:
            perf.count(
                "tracker.entry_memo.hit" if memo is not None else "tracker.entry_memo.miss"
            )
        if memo is not None:
            return memo
        demand = self.instance.demand
        alive = self._alive
        entries: List[_Entry] = []
        for cid in self._link_index.get(link, ()):  # stale ids filtered below
            if cid not in alive:
                continue
            cls = self._classes[cid]
            offsets = cls.offsets
            for index in cls.link_positions().get(link, ()):
                entries.append((cid, offsets[index], demand))
        for lo, hi, load in self.background.get(link, ()):
            entries.append((None, lo, hi, load))
        frozen = tuple(entries)
        self._entry_memo[link] = frozen
        return frozen

    def _committed_spans(self, link: LinkKey) -> Tuple[CongestionSpan, ...]:
        """Congestion spans of the committed state on ``link`` (memoised)."""
        memo = self._span_memo.get(link)
        if memo is not None:
            return memo
        alive = self._alive
        classes = self._classes
        intervals = []
        for entry in self._committed_entries(link):
            cid = entry[0]
            if cid is None:
                intervals.append(entry[1:])
            elif cid in alive:
                cls = classes[cid]
                offset = entry[1]
                lo0 = cls.lo
                hi0 = cls.hi
                intervals.append(
                    (
                        None if lo0 is None else lo0 + offset,
                        None if hi0 is None else hi0 + offset,
                        entry[2],
                    )
                )
        capacity = self.instance.network.capacity_map()[link]
        spans = tuple(_sweep_link(link, capacity, intervals, self.t0))
        self._span_memo[link] = spans
        return spans

    def _add_class(self, cls: FlowClass) -> int:
        cid = self._next_id
        self._next_id += 1
        self._classes[cid] = cls
        self._alive.add(cid)
        self._link_index.add_all(cls.link_positions(), cid)
        self._node_index.add_all(cls.nodes, cid)
        return cid


def replay_schedule(instance: UpdateInstance, schedule: UpdateSchedule) -> IntervalTracker:
    """Replay a full schedule round by round and return the final tracker.

    The tracker's ``loops``/``blackholes`` lists and
    :meth:`IntervalTracker.congestion_spans` then describe every transient
    violation of the schedule -- this is the scalable equivalent of
    :func:`repro.core.trace.validate_schedule`.
    """
    tracker = IntervalTracker(instance, t0=schedule.t0)
    for time, nodes in schedule.rounds():
        tracker.apply_round(nodes, time)
    return tracker


# ----------------------------------------------------------------------
# pure helpers
# ----------------------------------------------------------------------
def _make_class(
    instance: UpdateInstance,
    lo: Optional[int],
    hi: Optional[int],
    nodes: Sequence[Node],
    outcome: str = DELIVERED,
    loop_node: Optional[Node] = None,
    fresh_from: int = 0,
) -> FlowClass:
    delays = instance.network.delay_map()
    offsets = [0]
    acc = 0
    for src, dst in zip(nodes, nodes[1:]):
        acc += delays[(src, dst)]
        offsets.append(acc)
    return FlowClass(
        lo=lo,
        hi=hi,
        nodes=tuple(nodes),
        offsets=tuple(offsets),
        outcome=outcome,
        loop_node=loop_node,
        fresh_from=fresh_from,
    )


def _route_from(
    instance: UpdateInstance,
    config: Mapping[Node, Node],
    prefix: Sequence[Node],
) -> Tuple[List[Node], str, Optional[Node]]:
    """Extend ``prefix`` by following ``config`` from its last switch.

    Returns the full node sequence (prefix included), the outcome, and the
    revisited switch for looped routes.  Looped routes are truncated right
    after the first revisit.
    """
    nodes = list(prefix)
    visited = set(prefix)
    current = nodes[-1]
    destination = instance.destination
    max_hops = len(instance.network) + 1
    for _ in range(max_hops):
        if current == destination:
            return nodes, DELIVERED, None
        nxt = config.get(current)
        if nxt is None:
            return nodes, BLACKHOLE, None
        nodes.append(nxt)
        if nxt in visited:
            return nodes, LOOPED, nxt
        visited.add(nxt)
        current = nxt
    return nodes, LOOPED, current  # hop guard: treat as a loop


def _split_class(
    instance: UpdateInstance,
    cls: FlowClass,
    round_set: Set[Node],
    time: int,
    config: Mapping[Node, Node],
    report: RoundReport,
) -> Optional[Tuple[Optional[FlowClass], List[FlowClass]]]:
    """Split ``cls`` at this round's deflection thresholds.

    Returns ``None`` when the class is unaffected, otherwise
    ``(trim, deflected)``: the trimmed copy keeping the original trajectory
    (``None`` when every emission deflects) plus the freshly routed pieces.
    Loop and black-hole events for non-empty deflected pieces are appended
    to ``report``.
    """
    hits = [i for i, node in enumerate(cls.nodes) if node in round_set]
    if cls.outcome == LOOPED and hits and hits[-1] == len(cls.nodes) - 1:
        # The final position of a looped trajectory is where the unit was
        # killed (the revisit); it cannot be re-routed from there.  Earlier
        # occurrences may still deflect units before the loop forms.
        hits.pop()
    if not hits:
        return None

    # Deflection threshold per hit: emissions >= time - offset reach the
    # switch after its update.  Offsets grow strictly along the trajectory,
    # so thresholds strictly decrease with the index.
    thresholds = [(time - cls.offsets[i], i) for i in hits]

    relevant = [
        (threshold, i)
        for threshold, i in thresholds
        if cls.hi is None or threshold <= cls.hi
    ]
    if not relevant:
        return None

    trim: Optional[FlowClass] = None
    deflected: List[FlowClass] = []

    # Emissions below every threshold keep the original trajectory.
    lowest_threshold = min(threshold for threshold, _ in relevant)
    keep_hi = lowest_threshold - 1
    if cls.lo is None or cls.lo <= keep_hi:
        trim = FlowClass(
            lo=cls.lo,
            hi=keep_hi if cls.hi is None else min(cls.hi, keep_hi),
            nodes=cls.nodes,
            offsets=cls.offsets,
            outcome=cls.outcome,
            loop_node=cls.loop_node,
            fresh_from=len(cls.nodes),  # trimmed: no new load anywhere
            # Identical trajectory: share the parent's position cache
            # instead of rebuilding a full-trajectory dict per trim.
            _link_positions=cls._link_positions,
        )

    # A unit deflects at its *first* trajectory switch whose threshold it
    # meets.  Thresholds decrease with the index, so sorting hits by index
    # gives the emission-axis partition from the top down.
    relevant.sort(key=lambda item: item[1])  # ascending index
    previous_threshold: Optional[int] = None  # threshold of the previous (smaller) index
    for threshold, index in relevant:
        lo = threshold
        hi = None if previous_threshold is None else previous_threshold - 1
        previous_threshold = threshold
        lo = lo if cls.lo is None else max(lo, cls.lo)
        if cls.hi is not None:
            hi = cls.hi if hi is None else min(hi, cls.hi)
        if hi is not None and lo > hi:
            continue
        prefix = cls.nodes[: index + 1]
        nodes, outcome, loop_node = _route_from(instance, config, prefix)
        piece = _make_class(
            instance, lo, hi, nodes, outcome, loop_node, fresh_from=index
        )
        deflected.append(piece)
        if outcome == LOOPED:
            report.loops.append((lo, loop_node))
        elif outcome == BLACKHOLE:
            report.blackholes.append((lo, nodes[-1]))
    return trim, deflected


def _sweep_link(
    link: LinkKey,
    capacity: float,
    intervals: List[Tuple[Optional[int], Optional[int], float]],
    t0: int,
) -> List[CongestionSpan]:
    """Find over-capacity departure-time segments on one link.

    Each ``(lo, hi, demand)`` interval contributes ``demand`` load over the
    departure times ``[lo, hi]``; infinities are clamped just outside the
    finite coordinates, which preserves all finite overlaps (at most one
    minus-infinite and one plus-infinite interval can exist per link
    lineage, and two opposite-open intervals overlap on a finite segment).
    """
    if not intervals:
        return []
    # Fast exit: total load fitting the capacity clears any overlap pattern.
    total = 0.0
    for _lo, _hi, demand in intervals:
        total += demand
    if total <= capacity + _EPS:
        return []
    # Sentinel clamps for the disjointness test: any clamp lying outside
    # every finite coordinate yields the same verdict, so the precise
    # min/max pass over the coordinates is deferred to the slow path.
    clamped = sorted(
        (_NEG_CLAMP if lo is None else lo, _POS_CLAMP if hi is None else hi, demand)
        for lo, hi, demand in intervals
    )
    # Fast exit covering the overwhelming share of probe sweeps (a clean
    # link the round routed new load over): the intervals are pairwise
    # disjoint and none exceeds the capacity on its own, so no departure
    # time stacks two of them.  One pass over the lo-sorted list decides
    # it; only links that fail fall through to the full event sweep.
    disjoint = True
    reach: Optional[int] = None
    for lo, hi, demand in clamped:
        if lo > hi:
            continue
        if demand > capacity + _EPS or (reach is not None and lo <= reach):
            disjoint = False
            break
        reach = hi if reach is None else max(reach, hi)
    if disjoint:
        return []
    # Slow path: re-clamp just outside the finite coordinates so reported
    # span bounds stay exact.
    finite = [x for lo, hi, _ in intervals for x in (lo, hi) if x is not None]
    neg = (min(finite) if finite else 0) - 1
    pos = (max(finite) if finite else 0) + 1
    events: List[Tuple[int, float]] = []  # (coordinate, +/- demand)
    for lo, hi, demand in intervals:
        lo = neg if lo is None else lo
        hi = pos if hi is None else hi
        if lo > hi:
            continue
        events.append((lo, demand))
        events.append((hi + 1, -demand))
    if not events:
        return []
    events.sort(key=lambda item: item[0])
    spans: List[CongestionSpan] = []
    load = 0.0
    segment_start: Optional[int] = None
    peak = 0.0
    index = 0
    while index < len(events):
        coord = events[index][0]
        while index < len(events) and events[index][0] == coord:
            load += events[index][1]
            index += 1
        over = load > capacity + _EPS
        if over and segment_start is None:
            segment_start = coord
            peak = load
        elif segment_start is not None:
            if over:
                peak = max(peak, load)
            else:
                end = coord - 1
                start = max(segment_start, t0)
                if end >= start:
                    spans.append(
                        CongestionSpan(
                            link=link,
                            start=start,
                            end=end,
                            load=peak,
                            capacity=capacity,
                        )
                    )
                segment_start = None
    return spans
