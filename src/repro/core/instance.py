"""Update instances: the object every Chronus algorithm consumes.

An :class:`UpdateInstance` bundles the network, the dynamic flow and the two
routing configurations (initial/"solid line" and final/"dashed line" in the
paper's figures).  It also pins down *which* switches need an update: those
whose next hop changes, plus those that receive a brand-new rule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.network.flows import Flow
from repro.network.graph import Network, Node
from repro.network.paths import (
    Path,
    as_path,
    path_delay,
    path_links,
    validate_path,
)
from repro.network.topology import (
    TwoPathTopology,
    reversal_topology,
    segmented_reversal_topology,
    two_path_topology,
)

Config = Dict[Node, Node]


@dataclass(frozen=True)
class UpdateInstance:
    """One network-update problem: move ``flow`` from ``old_path`` to ``new_path``.

    Attributes:
        network: The directed graph with link capacities and delays.
        flow: The dynamic flow being rerouted (source, destination, demand).
        old_config: Next-hop mapping of the initial routing ("solid lines").
        new_config: Next-hop mapping of the final routing ("dashed lines").
            May also assign drain rules to switches that only appear on the
            old path (the paper's Fig. 1 updates ``v5`` although it is not
            on the final path).
    """

    network: Network
    flow: Flow
    old_config: Config
    new_config: Config

    def __post_init__(self) -> None:
        validate_path(self.network, self.old_path)
        validate_path(self.network, self.new_path)
        for config_name, config in (("old", self.old_config), ("new", self.new_config)):
            for node, nxt in config.items():
                if not self.network.has_link(node, nxt):
                    raise ValueError(
                        f"{config_name} config routes {node!r} -> {nxt!r} over a missing link"
                    )
        if self.flow.destination in self.old_config or self.flow.destination in self.new_config:
            raise ValueError("the destination switch must not forward the flow")

    # ------------------------------------------------------------------
    # derived structure
    # ------------------------------------------------------------------
    @property
    def source(self) -> Node:
        return self.flow.source

    @property
    def destination(self) -> Node:
        return self.flow.destination

    @property
    def demand(self) -> float:
        return self.flow.demand

    @cached_property
    def old_path(self) -> Path:
        """The initial routing path traced through ``old_config``."""
        return _trace_config(self.old_config, self.source, self.destination, len(self.network))

    @cached_property
    def new_path(self) -> Path:
        """The final routing path traced through ``new_config``."""
        return _trace_config(self.new_config, self.source, self.destination, len(self.network))

    @cached_property
    def _old_predecessors(self) -> Dict[Node, Node]:
        path = self.old_path
        return {cur: prev for prev, cur in zip(path, path[1:])}

    @cached_property
    def old_path_offsets(self) -> Dict[Node, int]:
        """Departure-time offset of each old-path switch from the source."""
        from repro.network.paths import arrival_offsets

        return dict(zip(self.old_path, arrival_offsets(self.network, self.old_path)))

    @cached_property
    def switches_to_update(self) -> Tuple[Node, ...]:
        """Switches whose forwarding rule for the flow must change.

        A switch needs an update when its new next hop differs from its old
        one, or when it has a new rule but no old one (rule installation).
        Order follows the old path first (upstream to downstream), then any
        remaining new-config switches in new-path order.
        """
        needed = [
            node
            for node, nxt in self.new_config.items()
            if self.old_config.get(node) != nxt
        ]
        needed_set = set(needed)
        ordered: List[Node] = [n for n in self.old_path if n in needed_set]
        seen = set(ordered)
        ordered.extend(n for n in self.new_path if n in needed_set and n not in seen)
        seen.update(ordered)
        ordered.extend(n for n in needed if n not in seen)
        return tuple(ordered)

    def old_next_hop(self, node: Node) -> Optional[Node]:
        """The initial next hop of ``node``, or ``None``."""
        return self.old_config.get(node)

    def new_next_hop(self, node: Node) -> Optional[Node]:
        """The final next hop of ``node``, or ``None``."""
        return self.new_config.get(node)

    def old_predecessor(self, node: Node) -> Optional[Node]:
        """The switch whose *old* rule points at ``node``, if on the old path."""
        return self._old_predecessors.get(node)

    def config_at(self, updated: Mapping[Node, int], time: int) -> Config:
        """The mixed next-hop configuration active at ``time``.

        A switch uses its new rule for departures at times greater than or
        equal to its update time; every other switch uses its old rule.

        Args:
            updated: Mapping ``switch -> update time`` for switches already
                scheduled; unscheduled switches keep their old rule.
            time: The departure time being queried.
        """
        config = dict(self.old_config)
        for node, when in updated.items():
            if when <= time:
                new_hop = self.new_config.get(node)
                if new_hop is None:
                    config.pop(node, None)
                else:
                    config[node] = new_hop
        return config

    @cached_property
    def old_path_delay(self) -> int:
        """``phi(p_init)``."""
        return path_delay(self.network, self.old_path)

    @cached_property
    def new_path_delay(self) -> int:
        """``phi(p_fin)``."""
        return path_delay(self.network, self.new_path)


def _trace_config(config: Config, source: Node, destination: Node, max_hops: int) -> Path:
    nodes: List[Node] = [source]
    current = source
    for _ in range(max_hops + 1):
        if current == destination:
            return as_path(nodes)
        nxt = config.get(current)
        if nxt is None:
            raise ValueError(f"config black-holes the flow at {current!r}")
        nodes.append(nxt)
        current = nxt
    raise ValueError("config contains a forwarding loop")


def config_from_path(path: Sequence[Node]) -> Config:
    """Next-hop mapping realising ``path``."""
    return {src: dst for src, dst in path_links(path)}


def instance_from_paths(
    network: Network,
    old_path: Sequence[Node],
    new_path: Sequence[Node],
    demand: float = 1.0,
    flow_name: str = "f",
    extra_new_rules: Optional[Mapping[Node, Node]] = None,
) -> UpdateInstance:
    """Build an :class:`UpdateInstance` from two explicit paths.

    Args:
        network: Graph containing both paths.
        old_path: The initial routing path.
        new_path: The final routing path (same endpoints as ``old_path``).
        demand: Flow rate ``d``.
        flow_name: Name used in flow tables and reports.
        extra_new_rules: Additional final-config rules for switches that are
            not on the new path (e.g. drain rules for old-path-only switches).
    """
    old = as_path(old_path)
    new = as_path(new_path)
    if old[0] != new[0] or old[-1] != new[-1]:
        raise ValueError("paths must share source and destination")
    flow = Flow(name=flow_name, source=old[0], destination=old[-1], demand=demand)
    new_config = config_from_path(new)
    if extra_new_rules:
        for node, nxt in extra_new_rules.items():
            if node in new_config:
                raise ValueError(f"extra rule for {node!r} clashes with the new path")
            new_config[node] = nxt
    return UpdateInstance(
        network=network,
        flow=flow,
        old_config=config_from_path(old),
        new_config=new_config,
    )


def instance_from_topology(topo: TwoPathTopology, demand: float = 1.0, flow_name: str = "f") -> UpdateInstance:
    """Wrap a generated :class:`TwoPathTopology` into an instance."""
    return instance_from_paths(
        topo.network, topo.old_path, topo.new_path, demand=demand, flow_name=flow_name
    )


def random_instance(
    count: int,
    seed: Optional[int] = None,
    demand: float = 1.0,
    capacity: float = 1.0,
    max_delay: Optional[int] = None,
    detour_fraction: float = 1.0,
    rng: Optional[random.Random] = None,
) -> UpdateInstance:
    """A random two-path instance per the paper's simulation setup.

    Pass ``rng`` to thread an explicit random stream through (takes
    precedence over ``seed``); otherwise a fresh ``random.Random(seed)``
    is used, so equal seeds give equal instances in any process.
    """
    if rng is None:
        rng = random.Random(seed)
    topo = two_path_topology(
        count,
        rng=rng,
        capacity=capacity,
        max_delay=max_delay,
        detour_fraction=detour_fraction,
    )
    return instance_from_topology(topo, demand=demand)


def reversal_instance(count: int, demand: float = 1.0, capacity: float = 1.0) -> UpdateInstance:
    """The adversarial path-reversal instance (see ``reversal_topology``)."""
    return instance_from_topology(reversal_topology(count, capacity=capacity), demand=demand)


def segmented_instance(
    count: int,
    seed: Optional[int] = None,
    segments: int = 4,
    max_segment_length: int = 12,
    demand: float = 1.0,
    capacity: float = 1.0,
    rng: Optional[random.Random] = None,
) -> UpdateInstance:
    """A large-scale locally-rerouted instance (Figs. 10/11 workload).

    ``rng`` takes precedence over ``seed`` (see :func:`random_instance`).
    """
    if rng is None:
        rng = random.Random(seed)
    topo = segmented_reversal_topology(
        count,
        rng=rng,
        segments=segments,
        max_segment_length=max_segment_length,
        capacity=capacity,
    )
    return instance_from_topology(topo, demand=demand)


def motivating_example() -> UpdateInstance:
    """The paper's Fig. 1 six-switch example.

    Old path ``v1 -> v2 -> v3 -> v4 -> v5 -> v6``; final routing
    ``v1 -> v4 -> v3 -> v2 -> v6`` plus the drain rule ``v5 -> v2``.  Every
    link has capacity one and delay one; the flow demand is one unit.  The
    timed schedule ``v2@t0, v3@t1, {v1, v4}@t2, v5@t3`` is congestion- and
    loop-free (Fig. 1(e)-(h)), while updating everything at once creates
    three transient loops and updating ``{v1, v2}`` first congests the
    ``v4 -> v3`` link (Fig. 2).
    """
    net = Network()
    chain = ["v1", "v2", "v3", "v4", "v5", "v6"]
    for src, dst in zip(chain, chain[1:]):
        net.add_link(src, dst, capacity=1.0, delay=1)
    for src, dst in [("v1", "v4"), ("v4", "v3"), ("v3", "v2"), ("v2", "v6"), ("v5", "v2")]:
        net.add_link(src, dst, capacity=1.0, delay=1)
    return instance_from_paths(
        net,
        old_path=chain,
        new_path=["v1", "v4", "v3", "v2", "v6"],
        demand=1.0,
        extra_new_rules={"v5": "v2"},
    )
