"""Verdict types: the output of the independent plan-conformance verifier.

A :class:`Verdict` is the complete consistency judgement of one update
schedule -- every forwarding loop, every dropped emission and every
over-capacity ``(link, interval, load)`` -- produced by
:func:`repro.validate.verify_schedule`, a re-derivation of the paper's
Definitions 2 and 3 that shares no code with the
:class:`repro.core.intervals.IntervalTracker` the schedulers reason over.
Keeping the types in ``core`` lets :class:`repro.updates.base.UpdatePlan`
carry its verdict without importing the verifier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.network.graph import Node

LinkKey = Tuple[Node, Node]


@dataclass(frozen=True)
class LoopViolation:
    """The emission at ``emission`` revisits switch ``node`` (Definition 2)."""

    emission: int
    node: Node


@dataclass(frozen=True)
class BlackholeViolation:
    """The emission at ``emission`` is dropped at ``node`` (no applicable rule)."""

    emission: int
    node: Node


@dataclass(frozen=True)
class CapacityViolation:
    """``link`` exceeds capacity for every departure in ``[start, end]``.

    ``peak_load`` is the largest load observed anywhere in the interval
    (Definition 3 violations are reported as maximal intervals).
    """

    link: LinkKey
    start: int
    end: int
    peak_load: float
    capacity: float

    @property
    def timed_link_count(self) -> int:
        """Congested links of the time-extended network this interval covers."""
        return self.end - self.start + 1


@dataclass
class Verdict:
    """Independent consistency judgement of one schedule.

    Attributes:
        schedule_complete: Whether every switch needing an update got a time.
        loops: All Definition 2 violations (one per looped emission).
        blackholes: All dropped emissions.
        congestion: All Definition 3 violations as maximal intervals.
        loads: Per-link, per-departure-step total load (flow + background),
            complete over ``[check_start, check_end]`` -- what
            :func:`repro.validate.differential_replay` cross-checks the
            fluid simulator's utilisation timelines against.
        check_start: First fully-derived (and checked) time step.
        check_end: Last checked time step.
    """

    schedule_complete: bool
    loops: List[LoopViolation] = field(default_factory=list)
    blackholes: List[BlackholeViolation] = field(default_factory=list)
    congestion: List[CapacityViolation] = field(default_factory=list)
    loads: Dict[LinkKey, Dict[int, float]] = field(default_factory=dict)
    check_start: int = 0
    check_end: int = 0

    @property
    def loop_free(self) -> bool:
        return not self.loops

    @property
    def drop_free(self) -> bool:
        return not self.blackholes

    @property
    def congestion_free(self) -> bool:
        return not self.congestion

    @property
    def ok(self) -> bool:
        """The paper's transient-consistency criterion plus completeness."""
        return (
            self.schedule_complete
            and self.loop_free
            and self.drop_free
            and self.congestion_free
        )

    @property
    def congested_timed_links(self) -> int:
        """Distinct over-capacity ``(link, time step)`` pairs (Fig. 8's unit)."""
        return sum(violation.timed_link_count for violation in self.congestion)

    @property
    def loop_nodes(self) -> Tuple[Node, ...]:
        """Revisited switches, sorted and deduplicated."""
        return tuple(sorted({v.node for v in self.loops}))

    @property
    def blackhole_nodes(self) -> Tuple[Node, ...]:
        """Dropping switches, sorted and deduplicated."""
        return tuple(sorted({v.node for v in self.blackholes}))

    def describe(self) -> str:
        """A readable multi-line account of every violation."""
        if self.ok:
            return "verdict: consistent (loop-, drop- and congestion-free)"
        lines: List[str] = ["verdict: INCONSISTENT"]
        if not self.schedule_complete:
            lines.append("  schedule incomplete: some switches never update")
        if self.loops:
            lines.append(f"  {len(self.loops)} looped emission(s):")
            for v in _head(self.loops):
                lines.append(f"    emission {v.emission} revisits {v.node}")
        if self.blackholes:
            lines.append(f"  {len(self.blackholes)} dropped emission(s):")
            for v in _head(self.blackholes):
                lines.append(f"    emission {v.emission} dropped at {v.node}")
        if self.congestion:
            lines.append(f"  {len(self.congestion)} over-capacity interval(s):")
            for v in _head(self.congestion):
                lines.append(
                    f"    {v.link[0]}->{v.link[1]} t[{v.start},{v.end}] "
                    f"load {v.peak_load:g} > cap {v.capacity:g}"
                )
        return "\n".join(lines)


def _head(items, limit: int = 8):
    """First ``limit`` items, with an ellipsis marker handled by callers."""
    return items[:limit]
