"""OPT: exact minimum-update-time search.

The paper obtains OPT by solving the MUTP integer program with branch and
bound.  This module provides the practical exact solver: a depth-first
branch-and-bound over *timed update decisions* -- at every time step, branch
over the subsets of currently-safe switches to update (plus waiting) -- with
an interval tracker as the exact transient state.  The search prunes on the
incumbent makespan and on the drain fix-point (waiting past the last finite
flow class cannot unblock anything), and honours a wall-clock budget so the
Fig. 10 cutoff behaviour can be reproduced.

Two engines share this entry point (DESIGN.md §13):

* ``engine="array"`` (default) -- the shared array-backed search core in
  :mod:`repro.core.search`: COW clones on the
  :class:`~repro.core.intervals_array.ArrayIntervalTracker`, probe-chain
  subset expansion, a targeted pairwise-rescue candidate pass, a
  transposition/dominance memo and a drain-horizon bound.  Falls back to
  the dict tracker (same search) when numpy is unavailable.
* ``engine="reference"`` -- the original dict-tracker search, kept
  verbatim as the differential oracle
  (``tests/test_search_engines.py`` pins feasibility / makespan /
  proven between the two on hundreds of seeded instances).

:func:`exhaustive_schedule` is the brutally simple oracle used by the test
suite on tiny instances.  The ILP formulation itself lives in
:mod:`repro.core.mutp`.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.greedy import greedy_schedule
from repro.core.instance import UpdateInstance
from repro.core.intervals import IntervalTracker
from repro.core.schedule import UpdateSchedule
from repro.core.trace import trace_schedule
from repro.network.graph import Node
from repro.perf import perf
from repro.trace import recorder

OPT_ENGINES = ("array", "reference")


@dataclass
class OptimalResult:
    """Outcome of the exact search.

    Attributes:
        schedule: Best congestion- and loop-free schedule found, or ``None``.
        proven: Whether the search ran to completion without truncation
            (so the result is the true optimum / a true infeasibility
            proof).
        explored: Number of search nodes visited.
        elapsed: Wall-clock seconds spent.
        width_cut: Whether a candidate set was truncated to
            ``max_branch_width`` somewhere in the search.  A truncated
            branch may hide a better schedule *or* the only feasible
            one, so ``width_cut`` forfeits both the optimality and the
            infeasibility claim (``proven`` is forced ``False``).
    """

    schedule: Optional[UpdateSchedule]
    proven: bool
    explored: int
    elapsed: float
    width_cut: bool = False

    @property
    def feasible(self) -> Optional[bool]:
        """``True``/``False`` when known, ``None`` when the budget ran out."""
        if self.schedule is not None:
            return True
        return False if self.proven else None

    @property
    def makespan(self) -> Optional[int]:
        return None if self.schedule is None else self.schedule.makespan


def optimal_schedule(
    instance: UpdateInstance,
    t0: int = 0,
    time_budget: Optional[float] = None,
    max_branch_width: int = 12,
    max_horizon: Optional[int] = None,
    node_budget: Optional[int] = None,
    engine: str = "array",
) -> OptimalResult:
    """Find a minimum-makespan congestion- and loop-free schedule.

    Args:
        instance: The update instance.
        t0: Earliest permitted update time.
        time_budget: Wall-clock budget in seconds (``None`` = unlimited);
            when exceeded the best incumbent is returned with
            ``proven=False``.
        max_branch_width: Cap on the candidate set considered per time step
            (subsets are enumerated, so this bounds the branching factor).
            Truncation is reported via ``width_cut`` and forfeits
            ``proven``.
        max_horizon: Latest step (relative to ``t0``) any update may take;
            defaults to a generous function of the instance size.
        node_budget: Cap on explored search nodes (``None`` = unlimited).
            Unlike ``time_budget`` this is *deterministic*: the same
            instance gives the same result on any machine or under any
            load, which is what parallel sweeps need for byte-identical
            records.  Exhaustion returns the incumbent with
            ``proven=False``, exactly like a timeout.
        engine: ``"array"`` (default) for the shared array-backed core,
            ``"reference"`` for the original dict-tracker search kept as
            the differential oracle.

    Returns:
        An :class:`OptimalResult`.
    """
    if engine not in OPT_ENGINES:
        raise ValueError(f"unknown OPT engine {engine!r} (expected one of {OPT_ENGINES})")
    pending_all: Tuple[Node, ...] = tuple(instance.switches_to_update)
    if not pending_all:
        empty = UpdateSchedule(times={}, start_time=t0)
        return OptimalResult(schedule=empty, proven=True, explored=0, elapsed=0.0)

    if max_horizon is None:
        max_horizon = (
            2 * (instance.old_path_delay + instance.new_path_delay)
            + 2 * len(instance.network)
            + 8
        )

    started = time.monotonic()

    # Seed the incumbent with the greedy schedule when it is feasible.
    seed_times: Optional[Dict[Node, int]] = None
    seed_makespan: Optional[int] = None
    with perf.span("opt.seed"):
        seed = greedy_schedule(instance, t0=t0)
    if seed.feasible:
        seed_times = seed.schedule.as_dict()
        seed_makespan = seed.schedule.makespan

    handle = recorder.span("opt.search", {"engine": engine, "switches": len(pending_all)})
    try:
        if engine == "array":
            from repro.core.search import run_optimal_search

            best_times, explored, timed_out, horizon_cut, width_cut = run_optimal_search(
                instance,
                t0,
                time_budget,
                max_branch_width,
                max_horizon,
                node_budget,
                seed_times,
                seed_makespan,
            )
        else:
            best_times, explored, timed_out, horizon_cut, width_cut = _reference_search(
                instance,
                t0,
                started,
                time_budget,
                max_branch_width,
                max_horizon,
                node_budget,
                seed_times,
                seed_makespan,
            )
        elapsed = time.monotonic() - started
        schedule = None
        if best_times is not None:
            schedule = UpdateSchedule(times=best_times, start_time=t0, feasible=True)
        # An optimality claim survives a horizon cut (no schedule can beat
        # the incumbent by updating even later), but an infeasibility claim
        # does not -- and a width cut forfeits both.
        proven = (
            not timed_out
            and not width_cut
            and (schedule is not None or not horizon_cut)
        )
        if handle.span_id is not None:
            handle.attributes.update(
                {
                    "explored": explored,
                    "proven": proven,
                    "width_cut": width_cut,
                    "feasible": schedule is not None,
                }
            )
    finally:
        handle.close()
    return OptimalResult(
        schedule=schedule,
        proven=proven,
        explored=explored,
        elapsed=elapsed,
        width_cut=width_cut,
    )


def _reference_search(
    instance: UpdateInstance,
    t0: int,
    started: float,
    time_budget: Optional[float],
    max_branch_width: int,
    max_horizon: int,
    node_budget: Optional[int],
    seed_times: Optional[Dict[Node, int]],
    seed_makespan: Optional[int],
):
    """The original dict-tracker branch and bound (differential oracle)."""
    explored = 0
    timed_out = False
    horizon_cut = False
    width_cut = False

    best_times = dict(seed_times) if seed_times is not None else None
    best_makespan = seed_makespan if seed_makespan is not None else max_horizon + 2

    root = IntervalTracker(instance, t0=t0)

    def out_of_time() -> bool:
        nonlocal timed_out
        if time_budget is not None and time.monotonic() - started > time_budget:
            timed_out = True
        return timed_out

    def dfs(tracker: IntervalTracker, pending: Tuple[Node, ...], t: int, last_update: Optional[int]) -> None:
        nonlocal explored, best_times, best_makespan, timed_out, horizon_cut, width_cut
        if timed_out:
            return
        if time_budget is not None and time.monotonic() - started > time_budget:
            timed_out = True
            return
        if node_budget is not None and explored >= node_budget:
            timed_out = True
            return
        explored += 1
        if not pending:
            makespan = 0 if last_update is None else last_update - t0 + 1
            if makespan < best_makespan:
                best_makespan = makespan
                best_times = dict(tracker.applied)
            return
        # Any remaining update happens at >= t, so the final makespan is at
        # least t - t0 + 1; prune when that cannot beat the incumbent.
        if t - t0 + 1 >= best_makespan:
            return
        if t - t0 > max_horizon:
            horizon_cut = True
            return

        candidates, cut = _candidate_set(
            tracker, pending, t, max_branch_width, out_of_time
        )
        width_cut = width_cut or cut
        if timed_out:
            return

        # Larger rounds first: updating more switches per step reaches
        # complete schedules (and hence strong incumbents) sooner.
        applied_any = False
        for size in range(len(candidates), 0, -1):
            for subset in itertools.combinations(candidates, size):
                if not tracker.preview_round(list(subset), t).ok:
                    continue
                applied_any = True
                remaining = tuple(n for n in pending if n not in subset)
                # Cheap bound before the (comparatively expensive) clone:
                # with switches left over, the child's earliest possible
                # completion updates at t + 1, for a makespan of at least
                # t + 2 - t0 -- prune here instead of one level down.
                if remaining and t + 2 - t0 >= best_makespan:
                    continue
                child = tracker.clone()
                child.apply_round(list(subset), t)
                dfs(child, remaining, t + 1, t)
                if timed_out:
                    return
        # Waiting branch: always worth trying after a successful round (a
        # later window may allow a larger one); when nothing was safe it
        # only helps while finite flow classes still drain.
        if applied_any:
            dfs(tracker, pending, t + 1, last_update)
        else:
            horizon = tracker.finite_drain_horizon()
            if horizon is not None and t <= horizon:
                dfs(tracker, pending, t + 1, last_update)

    with perf.span("opt.search"):
        dfs(root, tuple(instance.switches_to_update), t0, None)
    return best_times, explored, timed_out, horizon_cut, width_cut


def _candidate_set(
    tracker: IntervalTracker,
    pending: Tuple[Node, ...],
    t: int,
    max_branch_width: int,
    out_of_time=None,
) -> Tuple[List[Node], bool]:
    """Switches worth branching on at step ``t`` (plus a truncation flag).

    Round safety is not monotone: a switch that is unsafe alone can be safe
    when updated *together* with another switch whose update drains the
    conflicting traffic (and vice versa).  Small pending sets are therefore
    branched in full; larger ones take every individually-safe switch plus
    any unsafe switch that some pending partner rescues.
    """
    if len(pending) <= max_branch_width:
        return list(pending), False
    safe: List[Node] = []
    unsafe: List[Node] = []
    for index, node in enumerate(pending):
        if out_of_time is not None and index % 32 == 0 and out_of_time():
            return safe, False
        (safe if tracker.preview_round([node], t).ok else unsafe).append(node)
    rescued: List[Node] = []
    for node in unsafe:
        if out_of_time is not None and out_of_time():
            break
        for partner in pending:
            if partner is node:
                continue
            if tracker.preview_round([node, partner], t).ok:
                rescued.append(node)
                break
    candidates = safe + rescued
    if len(candidates) > max_branch_width:
        return candidates[:max_branch_width], True
    return candidates, False


def exhaustive_schedule(
    instance: UpdateInstance,
    max_makespan: int,
    t0: int = 0,
) -> Optional[UpdateSchedule]:
    """Brute-force oracle: try every time assignment up to ``max_makespan``.

    Every switch gets every time in ``[t0, t0 + max_makespan - 1]``; each
    complete assignment is validated with the unit tracer.  Exponential --
    strictly for tests on tiny instances.

    Returns:
        A minimum-makespan valid schedule, or ``None`` if none exists within
        the bound.
    """
    nodes = list(instance.switches_to_update)
    if not nodes:
        return UpdateSchedule(times={}, start_time=t0)
    for makespan in range(1, max_makespan + 1):
        slots = range(t0, t0 + makespan)
        for assignment in itertools.product(slots, repeat=len(nodes)):
            if max(assignment) != t0 + makespan - 1:
                continue  # realise this makespan exactly (smaller ones failed)
            times = dict(zip(nodes, assignment))
            schedule = UpdateSchedule(times=times, start_time=t0)
            if trace_schedule(instance, schedule).ok:
                return schedule
    return None
