"""The time-extended network (Definition 4).

For a network ``G`` and a discrete time window ``T``, the time-extended
network ``G_T`` contains one copy ``v(t)`` of every switch per time step and
a link ``u(t) -> v(t + sigma_{u,v})`` per original link, expressing the
link's transmission delay.  Dynamic flows in ``G`` correspond to ordinary
paths in ``G_T``, which is how the MUTP integer program and the congested
link accounting of Fig. 8 are phrased.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.network.graph import Network, Node

TimedNode = Tuple[Node, int]
TimedLink = Tuple[TimedNode, TimedNode]


@dataclass(frozen=True)
class TimeExtendedNetwork:
    """``G_T``: a materialised time-extended copy of a network.

    Attributes:
        network: The underlying network ``G``.
        t_start: First time step in ``T`` (history steps may be negative
            relative to the current time ``t0``; the paper draws the history
            window to detect in-flight traffic).
        t_end: Last time step in ``T`` (inclusive).
    """

    network: Network
    t_start: int
    t_end: int

    def __post_init__(self) -> None:
        if self.t_end < self.t_start:
            raise ValueError("t_end must be >= t_start")

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def times(self) -> range:
        """The time step set ``T``."""
        return range(self.t_start, self.t_end + 1)

    @property
    def timed_nodes(self) -> Iterator[TimedNode]:
        """All switch copies ``v(t)``."""
        for t in self.times:
            for node in self.network.switches:
                yield (node, t)

    @property
    def timed_links(self) -> Iterator[TimedLink]:
        """All links ``u(t) -> v(t + sigma_{u,v})`` fully inside the window."""
        for t in self.times:
            for link in self.network.links:
                arrival = t + link.delay
                if arrival <= self.t_end:
                    yield ((link.src, t), (link.dst, arrival))

    def contains_time(self, t: int) -> bool:
        return self.t_start <= t <= self.t_end

    def successors(self, timed_node: TimedNode) -> List[TimedNode]:
        """Copies reachable from ``v(t)`` over one (delayed) link."""
        node, t = timed_node
        out: List[TimedNode] = []
        for link in self.network.out_links(node):
            arrival = t + link.delay
            if arrival <= self.t_end:
                out.append((link.dst, arrival))
        return out

    def predecessors(self, timed_node: TimedNode) -> List[TimedNode]:
        """Copies from which ``v(t)`` is reachable over one (delayed) link."""
        node, t = timed_node
        out: List[TimedNode] = []
        for link in self.network.in_links(node):
            departure = t - link.delay
            if departure >= self.t_start:
                out.append((link.src, departure))
        return out

    def timed_link(self, src: Node, dst: Node, departure: int) -> TimedLink:
        """The ``G_T`` link for departing ``src -> dst`` at ``departure``.

        Raises:
            KeyError: if the underlying link does not exist.
            ValueError: if departure or arrival falls outside the window.
        """
        delay = self.network.delay(src, dst)
        arrival = departure + delay
        if not self.contains_time(departure) or not self.contains_time(arrival):
            raise ValueError(
                f"link {src!r}->{dst!r} departing at {departure} leaves the window"
            )
        return ((src, departure), (dst, arrival))

    def capacity(self, timed_link: TimedLink) -> float:
        """Capacity of a ``G_T`` link (equal to its original link's)."""
        (src, _), (dst, _) = timed_link
        return self.network.capacity(src, dst)

    def extend(self, new_t_end: int) -> "TimeExtendedNetwork":
        """A window grown to ``new_t_end`` (Algorithm 2 grows ``T`` each loop)."""
        if new_t_end < self.t_end:
            raise ValueError("cannot shrink the time window")
        return TimeExtendedNetwork(self.network, self.t_start, new_t_end)

    def timed_path(self, nodes: Sequence[Node], departure: int) -> List[TimedNode]:
        """The ``G_T`` path of a unit departing ``nodes[0]`` at ``departure``.

        The path is truncated at the window's end.
        """
        out: List[TimedNode] = [(nodes[0], departure)]
        t = departure
        for src, dst in zip(nodes, nodes[1:]):
            t += self.network.delay(src, dst)
            if t > self.t_end:
                break
            out.append((dst, t))
        return out


def build_window(network: Network, old_path_delay: int, t0: int, horizon: int) -> TimeExtendedNetwork:
    """The paper's window: history steps covering in-flight traffic plus a future horizon.

    Algorithm 2 initialises ``T = {t0 - sigma, ..., t0, t0+1}`` with ``sigma``
    the old path's total delay, then grows the future edge step by step.

    Args:
        network: The underlying network.
        old_path_delay: ``phi(p_init)``, bounding how long old traffic stays
            in flight.
        t0: The current time step.
        horizon: Future steps beyond ``t0`` to include.
    """
    return TimeExtendedNetwork(network, t_start=t0 - old_path_delay, t_end=t0 + horizon)
