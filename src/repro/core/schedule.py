"""Timed update schedules: the output of every scheduler.

A schedule assigns each to-be-updated switch an integer time point.  The
paper's objective (program (3)) minimises ``|T|``, the number of time steps
spanned by the update; :attr:`UpdateSchedule.makespan` computes exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.network.graph import Node


@dataclass(frozen=True)
class UpdateSchedule:
    """An assignment ``switch -> update time point``.

    Attributes:
        times: The update time of each switch (integer time steps).
        start_time: ``t0``, the first moment the controller may touch the
            network; defaults to the earliest scheduled time (or 0 when the
            schedule is empty).
        feasible: Whether the producing algorithm claims the schedule is
            congestion- and loop-free.  Schedulers set this to ``False`` for
            best-effort schedules of infeasible instances.
    """

    times: Mapping[Node, int]
    start_time: Optional[int] = None
    feasible: bool = True

    def __post_init__(self) -> None:
        for node, when in self.times.items():
            if when != int(when):
                raise ValueError(f"update time for {node!r} must be an integer")
        if self.start_time is not None and self.times:
            earliest = min(self.times.values())
            if earliest < self.start_time:
                raise ValueError(
                    f"schedule updates at {earliest} before start_time {self.start_time}"
                )

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self.times

    def __len__(self) -> int:
        return len(self.times)

    def time_of(self, node: Node) -> int:
        """Update time of ``node``; raises ``KeyError`` if unscheduled."""
        return self.times[node]

    @property
    def t0(self) -> int:
        """The schedule's reference start time."""
        if self.start_time is not None:
            return self.start_time
        if not self.times:
            return 0
        return min(self.times.values())

    @property
    def last_time(self) -> int:
        """The latest update time point (equals ``t0`` for empty schedules)."""
        if not self.times:
            return self.t0
        return max(self.times.values())

    @property
    def makespan(self) -> int:
        """``|T|``: time steps from ``t0`` through the last update, inclusive.

        This is the paper's objective -- the total update time.  An empty
        schedule has makespan zero.
        """
        if not self.times:
            return 0
        return self.last_time - self.t0 + 1

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def rounds(self) -> List[Tuple[int, Tuple[Node, ...]]]:
        """Updates grouped by time point, chronologically.

        Returns:
            ``[(time, (switches...)), ...]`` sorted by time; switches within
            a round keep insertion order.
        """
        by_time: Dict[int, List[Node]] = {}
        for node, when in self.times.items():
            by_time.setdefault(when, []).append(node)
        return [(when, tuple(by_time[when])) for when in sorted(by_time)]

    def shifted(self, offset: int) -> "UpdateSchedule":
        """The same schedule translated by ``offset`` time steps."""
        start = None if self.start_time is None else self.start_time + offset
        return UpdateSchedule(
            times={node: when + offset for node, when in self.times.items()},
            start_time=start,
            feasible=self.feasible,
        )

    def restricted_to(self, nodes) -> "UpdateSchedule":
        """The schedule restricted to ``nodes``."""
        keep = set(nodes)
        return UpdateSchedule(
            times={n: t for n, t in self.times.items() if n in keep},
            start_time=self.start_time,
            feasible=self.feasible,
        )

    def swapped(self, a: Node, b: Node) -> "UpdateSchedule":
        """The schedule with the times of ``a`` and ``b`` exchanged.

        A mutation hook for verifier testing: a correct verifier must
        reject most swaps of a tightly scheduled update.
        """
        times = dict(self.times)
        times[a], times[b] = times[b], times[a]
        return UpdateSchedule(
            times=times, start_time=self.start_time, feasible=self.feasible
        )

    def without(self, node: Node) -> "UpdateSchedule":
        """The schedule with ``node`` dropped (it then never updates).

        The second mutation hook: dropping a switch leaves a stale rule in
        place forever, which the verifier must flag as a loop, blackhole or
        incomplete schedule.
        """
        times = {n: t for n, t in self.times.items() if n != node}
        return UpdateSchedule(
            times=times, start_time=self.start_time, feasible=self.feasible
        )

    def items(self) -> Iterator[Tuple[Node, int]]:
        return iter(self.times.items())

    def as_dict(self) -> Dict[Node, int]:
        """A plain mutable copy of the time mapping."""
        return dict(self.times)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        rounds = ", ".join(
            f"t{when}: {'+'.join(nodes)}" for when, nodes in self.rounds()
        )
        flag = "" if self.feasible else ", best-effort"
        return f"UpdateSchedule({rounds}{flag})"


def schedule_from_rounds(rounds, start_time: int = 0, feasible: bool = True) -> UpdateSchedule:
    """Build a schedule from consecutive rounds of switch sets.

    Args:
        rounds: Iterable of switch collections; round ``i`` updates at
            ``start_time + i``.
        start_time: Time of the first round.
        feasible: Claimed feasibility flag.
    """
    times: Dict[Node, int] = {}
    for i, round_nodes in enumerate(rounds):
        for node in round_nodes:
            if node in times:
                raise ValueError(f"switch {node!r} appears in two rounds")
            times[node] = start_time + i
    return UpdateSchedule(times=times, start_time=start_time, feasible=feasible)
