"""Ground-truth dynamic-flow tracer.

This module pins down the paper's dynamic-flow semantics (Definitions 1-3)
as an executable oracle: the source emits ``d`` units of flow at every
discrete time step; a unit departing switch ``u`` at time ``t`` over link
``(u, v)`` arrives -- and immediately departs -- ``v`` at ``t + sigma_{u,v}``;
a switch updated at time ``T`` applies its *new* rule to departures at times
``>= T``.  Tracing every emission through a (possibly partial) schedule
yields exact per-link loads over time, from which congestion events
(Definition 3), forwarding loops (Definition 2) and black holes follow.

The tracer is quadratic in the network size and meant as the *oracle* for
tests and small instances; :mod:`repro.core.intervals` provides the
equivalent scalable implementation used by the schedulers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.core.instance import UpdateInstance
from repro.core.schedule import UpdateSchedule
from repro.network.graph import Node

LinkKey = Tuple[Node, Node]

_EPS = 1e-9


@dataclass(frozen=True)
class CongestionEvent:
    """Link ``link`` exceeded its capacity at departure time ``time``."""

    link: LinkKey
    time: int
    load: float
    capacity: float


@dataclass(frozen=True)
class LoopEvent:
    """The unit emitted at ``emission`` revisited switch ``node``."""

    emission: int
    node: Node


@dataclass(frozen=True)
class BlackholeEvent:
    """The unit emitted at ``emission`` reached ``node`` which had no rule."""

    emission: int
    node: Node


@dataclass
class TraceResult:
    """Everything the tracer observed over the checked window.

    Attributes:
        loads: Per-link, per-departure-time flow loads.
        congestion: All capacity violations at times ``>= check_start``.
        loops: Forwarding-loop events (Definition 2 violations).
        blackholes: Units dropped at switches without an applicable rule.
        check_start: First time step at which loads are complete and checked.
        check_end: Last checked time step.
    """

    loads: Dict[LinkKey, Dict[int, float]]
    congestion: List[CongestionEvent]
    loops: List[LoopEvent]
    blackholes: List[BlackholeEvent]
    check_start: int
    check_end: int

    @property
    def congestion_free(self) -> bool:
        return not self.congestion

    @property
    def loop_free(self) -> bool:
        return not self.loops

    @property
    def drop_free(self) -> bool:
        return not self.blackholes

    @property
    def ok(self) -> bool:
        """Congestion-free, loop-free and drop-free."""
        return self.congestion_free and self.loop_free and self.drop_free

    @property
    def congested_timed_links(self) -> Set[Tuple[LinkKey, int]]:
        """Distinct ``(link, time)`` pairs over capacity -- Fig. 8's unit."""
        return {(event.link, event.time) for event in self.congestion}

    def load_series(self, src: Node, dst: Node) -> Dict[int, float]:
        """Departure-time load series of one link."""
        return dict(self.loads.get((src, dst), {}))

    def peak_load(self, src: Node, dst: Node) -> float:
        """Maximum observed load on one link."""
        series = self.loads.get((src, dst))
        if not series:
            return 0.0
        return max(series.values())


def active_next_hop(
    instance: UpdateInstance,
    update_times: Mapping[Node, int],
    node: Node,
    time: int,
) -> Optional[Node]:
    """The rule ``node`` applies to a departure at ``time``.

    New rule once the switch's update time has passed, old rule before, and
    ``None`` when no applicable rule exists (black hole).
    """
    when = update_times.get(node)
    if when is not None and time >= when:
        return instance.new_config.get(node)
    return instance.old_config.get(node)


def trace_schedule(
    instance: UpdateInstance,
    schedule: UpdateSchedule,
    extra_horizon: int = 0,
) -> TraceResult:
    """Trace the dynamic flow through ``schedule`` and report violations.

    Switches missing from the schedule keep their old rule forever, which
    makes the tracer directly usable on *partial* schedules (the greedy
    algorithm's intermediate states).

    Emissions start early enough (``t0 - phi(p_init)``) that every unit of
    in-flight old traffic is covered, and continue long enough past the last
    update for the new routing to reach steady state.  Loads are complete --
    and therefore checked -- from ``t0`` through the end of the window.

    Args:
        instance: The update instance.
        schedule: Update times (possibly partial).
        extra_horizon: Additional steps to trace beyond the natural window.

    Returns:
        A :class:`TraceResult`; ``result.ok`` is the paper's transient
        consistency criterion.
    """
    network = instance.network
    update_times = schedule.as_dict()
    t0 = schedule.t0
    t_last = schedule.last_time

    max_delay = max((link.delay for link in network.links), default=1)
    settle = (len(network) + 1) * max_delay
    emit_start = t0 - instance.old_path_delay
    emit_end = t_last + settle + extra_horizon

    demand = instance.demand
    max_hops = len(network) + 1

    loads: Dict[LinkKey, Dict[int, float]] = {}
    loops: List[LoopEvent] = []
    blackholes: List[BlackholeEvent] = []

    source = instance.source
    destination = instance.destination

    for emission in range(emit_start, emit_end + 1):
        current = source
        time = emission
        visited = {source}
        for _ in range(max_hops):
            if current == destination:
                break
            nxt = active_next_hop(instance, update_times, current, time)
            if nxt is None:
                blackholes.append(BlackholeEvent(emission=emission, node=current))
                break
            link_loads = loads.setdefault((current, nxt), {})
            link_loads[time] = link_loads.get(time, 0.0) + demand
            time += network.delay(current, nxt)
            if nxt in visited:
                loops.append(LoopEvent(emission=emission, node=nxt))
                break
            visited.add(nxt)
            current = nxt

    congestion: List[CongestionEvent] = []
    for link_key, series in loads.items():
        capacity = network.capacity(*link_key)
        for time, load in series.items():
            if t0 <= time <= emit_end and load > capacity + _EPS:
                congestion.append(
                    CongestionEvent(link=link_key, time=time, load=load, capacity=capacity)
                )
    congestion.sort(key=lambda event: (event.time, event.link))

    return TraceResult(
        loads=loads,
        congestion=congestion,
        loops=loops,
        blackholes=blackholes,
        check_start=t0,
        check_end=emit_end,
    )


def validate_schedule(instance: UpdateInstance, schedule: UpdateSchedule) -> TraceResult:
    """Alias of :func:`trace_schedule` emphasising its validator role.

    A schedule is a correct solution of the paper's problem iff the returned
    result satisfies ``result.ok`` *and* the schedule covers every switch in
    ``instance.switches_to_update``.
    """
    return trace_schedule(instance, schedule)


def is_complete(instance: UpdateInstance, schedule: UpdateSchedule) -> bool:
    """Whether ``schedule`` assigns a time to every switch needing an update."""
    return all(node in schedule for node in instance.switches_to_update)
