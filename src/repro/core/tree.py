"""Algorithm 1: the tree algorithm for checking update feasibility.

Algorithm 1 decides, in polynomial time (Theorem 2, for identical link
delays), whether a congestion- and loop-free timed update sequence exists.
The paper organises the two routing paths as the branches of a binary tree
rooted at the destination and repeatedly updates a switch whose dashed (new)
edge crosses from the branch currently carrying the flow to the other one:

* crossing updates can never create a forwarding loop (the deflected flow
  proceeds strictly towards the root), so only congestion must be checked;
* a candidate crossing is safe when the new segment it activates is *slower*
  than the old segment it replaces (``phi(p) >= phi(q)``, line 22) or the
  merged segment's bottleneck capacity ``.cons`` holds both flows
  (``.cons >= 2d``, lines 16/23); by Theorem 2, a crossing that fails both
  conditions now fails at every later time as well, which is what makes the
  greedy walk a complete decision procedure.

This implementation realises the walk on the exact time-extended flow state
(:class:`repro.core.intervals.IntervalTracker`) -- the tracker plays the
role of the paper's ``.cons`` bookkeeping and of the "links disappear once
drained" convention -- and uses the ``phi(p) - phi(q)`` comparison as the
candidate priority.  The walk updates one crossing at a time and lets each
settle, so it always terminates; it reports infeasible exactly when no
crossing is safe even after all finite (draining) traffic has left the
network, the fix-point at which Theorem 2's argument applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.instance import UpdateInstance
from repro.core.intervals import IntervalTracker
from repro.core.schedule import UpdateSchedule
from repro.network.graph import Node


@dataclass
class FeasibilityResult:
    """Outcome of the tree algorithm.

    Attributes:
        feasible: Whether a congestion- and loop-free sequence exists.
        schedule: A witness schedule when feasible.
        blocked: The switches that could not be updated when infeasible.
        reason: Human-readable explanation.
    """

    feasible: bool
    schedule: Optional[UpdateSchedule] = None
    blocked: Tuple[Node, ...] = ()
    reason: str = ""

    def __bool__(self) -> bool:
        return self.feasible


def check_update_feasibility(instance: UpdateInstance, t0: int = 0) -> FeasibilityResult:
    """Run Algorithm 1 and decide feasibility of the update instance.

    Args:
        instance: The update instance.
        t0: Earliest permitted update time.

    Returns:
        A :class:`FeasibilityResult` with a witness schedule when feasible.
    """
    pending: List[Node] = list(instance.switches_to_update)
    if not pending:
        return FeasibilityResult(
            feasible=True,
            schedule=UpdateSchedule(times={}, start_time=t0),
            reason="nothing to update",
        )

    tracker = IntervalTracker(instance, t0=t0)
    times: Dict[Node, int] = {}
    t = t0
    guard = 4 * (len(instance.network) + instance.old_path_delay + instance.new_path_delay) + 16

    for _ in range(guard):
        if not pending:
            schedule = UpdateSchedule(times=times, start_time=t0)
            return FeasibilityResult(feasible=True, schedule=schedule, reason="walk completed")

        chosen = _pick_crossing(instance, tracker, pending, t)
        if chosen is not None:
            tracker.apply_round([chosen], t)
            times[chosen] = t
            pending.remove(chosen)
            # Let the crossing settle before the next one (the paper advances
            # the clock by the activated segment's delay, lines 19/27).
            t += max(1, _segment_delay(instance, chosen))
            continue

        horizon = tracker.finite_drain_horizon()
        if horizon is None or t > horizon:
            # Fix point reached: by the Theorem 2 argument, a crossing that
            # is unsafe with only infinite (never-draining) traffic present
            # stays unsafe forever.
            return FeasibilityResult(
                feasible=False,
                blocked=tuple(pending),
                reason=(
                    "no branch crossing is safe after all in-flight traffic "
                    "drained: the bottleneck capacity cannot hold both flows "
                    "(cons < 2d) and every new segment is faster than the old "
                    "one (phi(p) < phi(q))"
                ),
            )
        t = horizon + 1

    return FeasibilityResult(
        feasible=False,
        blocked=tuple(pending),
        reason="walk exceeded its step guard",
    )


def _pick_crossing(
    instance: UpdateInstance,
    tracker: IntervalTracker,
    pending: Sequence[Node],
    t: int,
) -> Optional[Node]:
    """Line 22: the safe candidate minimising ``phi(p) - phi(q)``.

    Candidates whose new segment is at least as slow as the old one
    (``phi(p) >= phi(q)``) are preferred in increasing slack order; if none
    of those is safe, the remaining safe candidates (possible thanks to
    drained links or spare capacity, line 23's ``cons >= 2d`` escape) are
    taken as a fallback.
    """
    preferred: List[Tuple[int, int, Node]] = []
    fallback: List[Tuple[int, Node]] = []
    for index, node in enumerate(pending):
        phi_p, phi_q = _segment_delays(instance, node)
        if phi_q is not None and phi_p is not None and phi_p >= phi_q:
            preferred.append((phi_p - phi_q, index, node))
        else:
            fallback.append((index, node))
    preferred.sort()
    for _, _, node in preferred:
        if tracker.preview_round([node], t).ok:
            return node
    for _, node in fallback:
        if tracker.preview_round([node], t).ok:
            return node
    return None


def _segment_delays(
    instance: UpdateInstance, node: Node
) -> Tuple[Optional[int], Optional[int]]:
    """``(phi(p), phi(q))`` for the crossing at ``node``.

    ``p`` is the new-config segment from ``node`` until it rejoins the old
    path (or reaches the destination); ``q`` is the old-path segment between
    the same endpoints.  ``phi(q)`` is ``None`` when the rejoin point lies
    *upstream* on the old path (the crossing points backwards) or when
    ``node`` is not on the old path.
    """
    network = instance.network
    old_path = instance.old_path
    old_index = {n: i for i, n in enumerate(old_path)}

    # Follow the new configuration until rejoining the old path.
    phi_p = 0
    current = node
    seen: Set[Node] = {node}
    rejoin: Optional[Node] = None
    for _ in range(len(network) + 1):
        nxt = instance.new_next_hop(current)
        if nxt is None:
            nxt = instance.old_next_hop(current)
        if nxt is None or nxt in seen:
            return None, None
        phi_p += network.delay(current, nxt)
        if nxt in old_index and nxt != node:
            rejoin = nxt
            break
        seen.add(nxt)
        current = nxt
    if rejoin is None:
        return phi_p, None

    if node not in old_index or old_index[rejoin] <= old_index[node]:
        return phi_p, None  # backward crossing: no old segment to compare

    phi_q = 0
    for a, b in zip(
        old_path[old_index[node]: old_index[rejoin]],
        old_path[old_index[node] + 1: old_index[rejoin] + 1],
    ):
        phi_q += network.delay(a, b)
    return phi_p, phi_q


def _segment_delay(instance: UpdateInstance, node: Node) -> int:
    phi_p, _ = _segment_delays(instance, node)
    return phi_p if phi_p is not None else 1

