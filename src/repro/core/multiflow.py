"""Multi-flow update scheduling (the generality of program (3)'s flow set F).

The paper's formulation ranges over a set of flows, while its algorithms and
evaluation use one flow per update instance.  This module closes the gap:

* :class:`MultiFlowUpdate` bundles several single-flow update instances that
  share one network;
* :func:`validate_multiflow` checks congestion-freedom *across* flows
  exactly (per-flow trackers plus a joint per-link interval sweep) and
  loop-freedom per flow;
* :func:`greedy_multiflow` schedules the flows sequentially: each flow's
  Algorithm-2 run sees the (exact, time-varying) load of all previously
  scheduled flows as background.  Sequential composition is a heuristic --
  the joint problem only gets harder than the NP-complete single-flow MUTP
  -- but every schedule it emits is verified by the exact validator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.greedy import GreedyResult, greedy_schedule
from repro.core.instance import UpdateInstance
from repro.core.intervals import (
    CongestionSpan,
    IntervalTracker,
    LinkKey,
    _sweep_link,
    replay_schedule,
)
from repro.core.schedule import UpdateSchedule
from repro.network.graph import Network, Node

Background = Dict[LinkKey, List[Tuple[Optional[int], Optional[int], float]]]


@dataclass
class MultiFlowUpdate:
    """Several update instances over one shared network.

    Attributes:
        network: The common substrate (every instance must reference it).
        instances: One single-flow update instance per flow; flow names must
            be unique.
    """

    network: Network
    instances: List[UpdateInstance]

    def __post_init__(self) -> None:
        names = [inst.flow.name for inst in self.instances]
        if len(set(names)) != len(names):
            raise ValueError("flow names must be unique")
        for inst in self.instances:
            if inst.network is not self.network:
                raise ValueError(
                    f"instance {inst.flow.name!r} does not share the network"
                )

    def instance(self, flow_name: str) -> UpdateInstance:
        for inst in self.instances:
            if inst.flow.name == flow_name:
                return inst
        raise KeyError(f"no flow {flow_name!r}")


@dataclass
class MultiFlowReport:
    """Joint validation outcome.

    Attributes:
        congestion: Cross-flow capacity violations (joint link sweeps).
        loops: Per-flow forwarding-loop events.
        blackholes: Per-flow dropped-traffic events.
    """

    congestion: List[CongestionSpan]
    loops: Dict[str, List[Tuple[int, Node]]]
    blackholes: Dict[str, List[Tuple[int, Node]]]

    @property
    def ok(self) -> bool:
        return (
            not self.congestion
            and not any(self.loops.values())
            and not any(self.blackholes.values())
        )


def flow_link_intervals(tracker: IntervalTracker) -> Background:
    """The exact per-link departure intervals of one flow's final state."""
    out: Background = {}
    demand = tracker.instance.demand
    for cls in tracker.classes:
        for index, link in cls.links():
            lo, hi = cls.departure_interval(index)
            out.setdefault(link, []).append((lo, hi, demand))
    return out


def validate_multiflow(
    update: MultiFlowUpdate,
    schedules: Mapping[str, UpdateSchedule],
) -> MultiFlowReport:
    """Exactly validate a joint schedule assignment.

    Args:
        update: The multi-flow update.
        schedules: One complete schedule per flow name.

    Returns:
        A :class:`MultiFlowReport`; ``report.ok`` means every flow stays
        loop-free and no link ever exceeds its capacity under the *combined*
        load of all flows.
    """
    trackers: Dict[str, IntervalTracker] = {}
    for inst in update.instances:
        schedule = schedules.get(inst.flow.name)
        if schedule is None:
            raise KeyError(f"missing schedule for flow {inst.flow.name!r}")
        trackers[inst.flow.name] = replay_schedule(inst, schedule)

    joint: Background = {}
    for tracker in trackers.values():
        for link, intervals in flow_link_intervals(tracker).items():
            joint.setdefault(link, []).extend(intervals)

    t0 = min((schedules[name].t0 for name in trackers), default=0)
    congestion: List[CongestionSpan] = []
    for link, intervals in sorted(joint.items()):
        capacity = update.network.capacity(*link)
        congestion.extend(_sweep_link(link, capacity, intervals, t0))

    return MultiFlowReport(
        congestion=congestion,
        loops={name: tracker.loops for name, tracker in trackers.items()},
        blackholes={name: tracker.blackholes for name, tracker in trackers.items()},
    )


@dataclass
class MultiFlowResult:
    """Outcome of the sequential multi-flow scheduler."""

    results: Dict[str, GreedyResult]
    report: MultiFlowReport

    @property
    def schedules(self) -> Dict[str, UpdateSchedule]:
        return {name: result.schedule for name, result in self.results.items()}

    @property
    def feasible(self) -> bool:
        """All flows scheduled consistently, including cross-flow capacity."""
        return self.report.ok and all(r.feasible for r in self.results.values())

    @property
    def makespan(self) -> int:
        spans = [r.schedule.makespan for r in self.results.values()]
        return max(spans, default=0)


def greedy_multiflow(
    update: MultiFlowUpdate,
    t0: int = 0,
    order: Optional[Sequence[str]] = None,
) -> MultiFlowResult:
    """Schedule every flow with Algorithm 2, sequentially composed.

    Flow *i*'s scheduler sees the exact final-state load of flows
    ``0..i-1`` as per-link background intervals, so its congestion checks
    are joint; the result is re-validated globally at the end.

    Args:
        update: The multi-flow update.
        t0: Earliest update time for every flow.
        order: Scheduling order by flow name (default: given order).
    """
    names = list(order) if order is not None else [
        inst.flow.name for inst in update.instances
    ]
    background: Background = {}
    results: Dict[str, GreedyResult] = {}
    for name in names:
        instance = update.instance(name)
        result = greedy_schedule(instance, t0=t0, background=background)
        results[name] = result
        tracker = IntervalTracker(instance, t0=t0)
        for when, nodes in result.schedule.rounds():
            tracker.apply_round(nodes, when)
        for link, intervals in flow_link_intervals(tracker).items():
            background.setdefault(link, []).extend(intervals)

    report = validate_multiflow(
        update, {name: result.schedule for name, result in results.items()}
    )
    return MultiFlowResult(results=results, report=report)
