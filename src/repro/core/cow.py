"""Copy-on-write index for the interval tracker.

The OPT branch-and-bound search clones its :class:`~repro.core.intervals.
IntervalTracker` at every branch.  A naive clone copies the ``link ->
class ids`` and ``node -> class ids`` indexes entry by entry, which is
O(total index entries) -- the dominant per-clone cost once a search
lineage has split the flow into many classes over long trajectories.

:class:`CowIndex` keeps the plain ``dict[key, list]`` layout (so the
append-heavy serial schedulers pay essentially nothing) but snapshots by
copying only the dict of list *references*.  After a snapshot both copies
treat every per-key list as frozen-shared; the first append to a key
re-copies just that key's list and reclaims exclusive ownership of it.
A branch that applies one update round therefore pays O(touched keys x
their list lengths), not O(whole index), and untouched keys stay
structurally shared across the entire clone tree.
"""

from __future__ import annotations

from typing import Dict, Generic, Iterator, List, Optional, Sequence, Set, TypeVar

T = TypeVar("T")
K = TypeVar("K")

_EMPTY: Sequence = ()


class CowIndex(Generic[K, T]):
    """Append-only multimap ``key -> list`` with O(keys) snapshots.

    Drop-in for the ``dict.setdefault(key, []).append(value)`` pattern::

        index.add(key, value)        # append
        for v in index.get(key): ..  # append order
        index[key]; key in index; iter(index); len(index)

    Never remove values; the tracker filters stale class ids via its
    ``_alive`` set instead, which is what makes pure appends sufficient.
    """

    __slots__ = ("_map", "_owned")

    def __init__(
        self,
        _map: Optional[Dict[K, List[T]]] = None,
        _owned: Optional[Set[K]] = None,
    ) -> None:
        self._map = {} if _map is None else _map
        # Keys whose list this instance may mutate in place.  Everything
        # else is (potentially) shared with snapshots and must be copied
        # before the first append.
        self._owned = set() if _owned is None else _owned

    def add(self, key: K, value: T) -> None:
        values = self._map.get(key)
        if values is None:
            values = []
            self._map[key] = values
            self._owned.add(key)
        elif key not in self._owned:
            values = list(values)
            self._map[key] = values
            self._owned.add(key)
        values.append(value)

    def add_all(self, keys, value: T) -> None:
        """Append ``value`` under every key in ``keys`` (one call, no
        per-entry Python function overhead -- the index-building hot path
        appends each new class id under O(trajectory length) keys)."""
        mapping = self._map
        owned = self._owned
        get = mapping.get
        for key in keys:
            values = get(key)
            if values is None:
                mapping[key] = values = []
                owned.add(key)
            elif key not in owned:
                mapping[key] = values = list(values)
                owned.add(key)
            values.append(value)

    def get(self, key: K, default: Sequence[T] = _EMPTY) -> Sequence[T]:
        return self._map.get(key, default)

    def __getitem__(self, key: K) -> Sequence[T]:
        return self._map[key]

    def __contains__(self, key: K) -> bool:
        return key in self._map

    def __iter__(self) -> Iterator[K]:
        return iter(self._map)

    def __len__(self) -> int:
        return len(self._map)

    def keys(self):
        return self._map.keys()

    def snapshot(self) -> "CowIndex[K, T]":
        """An independent copy sharing every per-key list structurally.

        Both this index and the snapshot relinquish in-place ownership of
        all current lists; each side re-copies a list lazily if and when
        it first appends to that key again.
        """
        self._owned.clear()
        return CowIndex(dict(self._map), set())
