"""Round-based loop-freedom machinery.

Order-replacement protocols (Ludwig et al., PODC'15) update switches in
*rounds*: within a round the data plane applies the new rules in an
arbitrary, asynchronous order.  A round is transiently loop-free for every
interleaving iff the *union forwarding graph* -- already-updated switches
using their new rule, this round's switches keeping **both** rules, all
others their old rule -- is acyclic: a simple cycle traverses each switch at
most once and hence uses at most one of its out-edges, so any union-graph
cycle is realised by some interleaving and vice versa.

This module provides the exact safety check and a greedy maximal-round
construction; it is shared by the OR baseline and by Chronus' best-effort
fallback for infeasible instances.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.instance import UpdateInstance
from repro.network.graph import Node


def union_forwarding_edges(
    instance: UpdateInstance,
    updated: Set[Node],
    in_round: Set[Node],
) -> Dict[Node, List[Node]]:
    """Out-edges of the union forwarding graph for one round.

    Args:
        instance: The update instance.
        updated: Switches already running their new rule.
        in_round: Switches updating in the round under test.
    """
    edges: Dict[Node, List[Node]] = {}
    nodes = set(instance.old_config) | set(instance.new_config)
    for node in nodes:
        outs: List[Node] = []
        old_hop = instance.old_next_hop(node)
        new_hop = instance.new_next_hop(node)
        if node in updated:
            if new_hop is not None:
                outs.append(new_hop)
        elif node in in_round:
            outs.extend(hop for hop in (old_hop, new_hop) if hop is not None)
        else:
            if old_hop is not None:
                outs.append(old_hop)
        edges[node] = outs
    return edges


def has_cycle(edges: Dict[Node, List[Node]]) -> bool:
    """Iterative three-colour cycle detection on a small digraph."""
    WHITE, GREY, BLACK = 0, 1, 2
    colour: Dict[Node, int] = {}

    for start in edges:
        if colour.get(start, WHITE) != WHITE:
            continue
        stack: List[Tuple[Node, int]] = [(start, 0)]
        colour[start] = GREY
        while stack:
            node, index = stack[-1]
            children = edges.get(node, ())
            if index < len(children):
                stack[-1] = (node, index + 1)
                child = children[index]
                state = colour.get(child, WHITE)
                if state == GREY:
                    return True
                if state == WHITE:
                    colour[child] = GREY
                    stack.append((child, 0))
            else:
                colour[node] = BLACK
                stack.pop()
    return False


def round_is_loop_free(
    instance: UpdateInstance,
    updated: Set[Node],
    in_round: Iterable[Node],
) -> bool:
    """Whether updating ``in_round`` together (after ``updated``) is safe
    against transient forwarding loops under *every* interleaving."""
    return not has_cycle(union_forwarding_edges(instance, updated, set(in_round)))


def greedy_loop_free_rounds(
    instance: UpdateInstance,
    pending: Optional[Sequence[Node]] = None,
    updated: Optional[Set[Node]] = None,
    deadline: Optional[float] = None,
) -> List[List[Node]]:
    """Greedy maximal loop-free rounds covering all pending switches.

    Each round greedily absorbs every pending switch that keeps the round
    loop-free.  Switches that can never join a safe round (possible with
    exotic drain rules) are force-updated alone in a final best-effort round
    -- callers can detect this by re-checking the rounds.

    Args:
        deadline: ``time.monotonic()`` value after which the remaining
            switches are dumped into one final (unchecked) round; used by
            budgeted callers such as the Fig. 10 harness.

    Returns:
        The round partition, first round first.
    """
    import time as _time

    if pending is None:
        pending = list(instance.switches_to_update)
    remaining: List[Node] = list(pending)
    done: Set[Node] = set(updated or ())
    rounds: List[List[Node]] = []
    while remaining:
        if deadline is not None and _time.monotonic() > deadline:
            rounds.append(list(remaining))
            break
        current: List[Node] = []
        for node in list(remaining):
            if round_is_loop_free(instance, done, set(current) | {node}):
                current.append(node)
        if not current:
            # No safe single update exists; force the first switch through to
            # guarantee termination (the resulting loop is the instance's).
            current = [remaining[0]]
        for node in current:
            remaining.remove(node)
        done.update(current)
        rounds.append(current)
    return rounds


def rounds_are_loop_free(instance: UpdateInstance, rounds: Sequence[Sequence[Node]]) -> bool:
    """Validate a full round partition against the union-graph criterion."""
    done: Set[Node] = set()
    for round_nodes in rounds:
        if not round_is_loop_free(instance, done, set(round_nodes)):
            return False
        done.update(round_nodes)
    return True
