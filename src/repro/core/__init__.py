"""Chronus core: the paper's algorithms and the dynamic-flow machinery.

Layout (one module per concept):

* :mod:`repro.core.instance` -- update instances (graph + two configs).
* :mod:`repro.core.schedule` -- timed update schedules.
* :mod:`repro.core.timeext` -- the time-extended network (Definition 4).
* :mod:`repro.core.trace` -- unit-level dynamic-flow oracle (Defs. 1-3).
* :mod:`repro.core.intervals` -- scalable exact flow tracking.
* :mod:`repro.core.intervals_array` -- the same state struct-of-arrays.
* :mod:`repro.core.dependency` -- Algorithm 3 (dependency relation sets).
* :mod:`repro.core.loops` -- Algorithm 4 (forwarding-loop check).
* :mod:`repro.core.greedy` -- Algorithm 2 (the Chronus scheduler).
* :mod:`repro.core.tree` -- Algorithm 1 (feasibility check).
* :mod:`repro.core.rounds` -- round-based loop-freedom (OR machinery).
* :mod:`repro.core.mutp` -- the MUTP integer program (program (3)).
* :mod:`repro.core.optimal` -- OPT, the exact minimum-update-time search.
* :mod:`repro.core.multiflow` -- multi-flow composition (program (3)'s F).
"""

from repro.core.instance import (
    UpdateInstance,
    instance_from_paths,
    instance_from_topology,
    motivating_example,
    random_instance,
    reversal_instance,
)
from repro.core.schedule import UpdateSchedule, schedule_from_rounds
from repro.core.timeext import TimeExtendedNetwork, build_window
from repro.core.trace import TraceResult, trace_schedule, validate_schedule
from repro.core.intervals import IntervalTracker, replay_schedule
from repro.core.intervals_array import NUMPY_AVAILABLE, ArrayIntervalTracker
from repro.core.dependency import DependencySet, dependency_relations
from repro.core.loops import creates_forwarding_loop
from repro.core.greedy import GreedyResult, greedy_schedule
from repro.core.tree import FeasibilityResult, check_update_feasibility
from repro.core.optimal import OptimalResult, optimal_schedule
from repro.core.mutp import build_mutp_model, solve_mutp
from repro.core.serialization import (
    plan_from_json,
    plan_to_json,
    schedule_from_json,
    schedule_to_json,
)
from repro.core.multiflow import (
    MultiFlowReport,
    MultiFlowResult,
    MultiFlowUpdate,
    greedy_multiflow,
    validate_multiflow,
)

__all__ = [
    "UpdateInstance",
    "instance_from_paths",
    "instance_from_topology",
    "motivating_example",
    "random_instance",
    "reversal_instance",
    "UpdateSchedule",
    "schedule_from_rounds",
    "TimeExtendedNetwork",
    "build_window",
    "TraceResult",
    "trace_schedule",
    "validate_schedule",
    "IntervalTracker",
    "ArrayIntervalTracker",
    "NUMPY_AVAILABLE",
    "replay_schedule",
    "DependencySet",
    "dependency_relations",
    "creates_forwarding_loop",
    "GreedyResult",
    "greedy_schedule",
    "FeasibilityResult",
    "check_update_feasibility",
    "OptimalResult",
    "optimal_schedule",
    "build_mutp_model",
    "solve_mutp",
    "MultiFlowUpdate",
    "MultiFlowReport",
    "MultiFlowResult",
    "greedy_multiflow",
    "validate_multiflow",
    "schedule_to_json",
    "schedule_from_json",
    "plan_to_json",
    "plan_from_json",
]
