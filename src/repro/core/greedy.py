"""Algorithm 2: the Chronus greedy MUTP scheduler.

At every time step the scheduler updates as many switches as possible:
Algorithm 3 (:mod:`repro.core.dependency`) orders the pending switches into
dependency chains, Algorithm 4 (:mod:`repro.core.loops`) rules out updates
that would deflect in-flight traffic into a forwarding loop, and the
time-extended flow state (:mod:`repro.core.intervals`) supplies the
congestion-freedom ground truth.  Two decision modes are provided:

* ``"exact"`` (default): every candidate round is previewed against the
  interval tracker, so the resulting schedule provably satisfies
  Definitions 2 and 3 (this realises Theorem 3's guarantee).
* ``"paper"``: decisions use only Algorithm 3's chains and Algorithm 4's
  backward walk, exactly as printed in the paper; the final schedule is
  still validated and the result reports any violation.

Instances without a congestion-free schedule (the ILP can be infeasible;
cf. Fig. 7) are completed best-effort: the remaining switches are applied in
greedy loop-free rounds and the result is flagged infeasible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.dependency import DependencySet, dependency_relations
from repro.core.instance import UpdateInstance
from repro.core.intervals import IntervalTracker, RoundReport
from repro.core.loops import creates_forwarding_loop
from repro.core.rounds import greedy_loop_free_rounds
from repro.core.schedule import UpdateSchedule
from repro.network.graph import Node

EXACT = "exact"
PAPER = "paper"


@dataclass
class GreedyResult:
    """Outcome of the greedy scheduler.

    Attributes:
        schedule: The produced timed update schedule (always complete).
        feasible: ``True`` when the schedule is congestion- and loop-free.
        stalled_at: Time step at which the scheduler gave up waiting and
            switched to best-effort completion, or ``None``.
        violations: Round reports that contained violations (non-empty only
            for best-effort completions or paper-mode misjudgements).
        dependency_log: Per-step dependency sets, for inspection and for the
            paper's Fig. 5 walk-through.
    """

    schedule: UpdateSchedule
    feasible: bool
    stalled_at: Optional[int] = None
    violations: List[RoundReport] = field(default_factory=list)
    dependency_log: List[Tuple[int, DependencySet]] = field(default_factory=list)

    @property
    def makespan(self) -> int:
        return self.schedule.makespan


def greedy_schedule(
    instance: UpdateInstance,
    t0: int = 0,
    mode: str = EXACT,
    keep_dependency_log: bool = False,
    max_steps: Optional[int] = None,
    background=None,
) -> GreedyResult:
    """Run Algorithm 2 and return a complete timed update schedule.

    Args:
        instance: The update instance.
        t0: The current time step (updates start no earlier).
        mode: ``"exact"`` or ``"paper"`` (see module docstring).
        keep_dependency_log: Record Algorithm 3's output per step.
        max_steps: Safety bound on scheduling steps; defaults to a generous
            function of the instance size.
        background: Static per-link load from other flows (see
            :class:`repro.core.intervals.IntervalTracker`); exact mode's
            congestion checks then become joint across flows.

    Returns:
        A :class:`GreedyResult`; ``result.feasible`` distinguishes proper
        congestion- and loop-free schedules from best-effort completions.
    """
    if mode not in (EXACT, PAPER):
        raise ValueError(f"unknown greedy mode {mode!r}")
    pending: List[Node] = list(instance.switches_to_update)
    tracker = IntervalTracker(instance, t0=t0, background=background)
    times: Dict[Node, int] = {}
    violations: List[RoundReport] = []
    dependency_log: List[Tuple[int, DependencySet]] = []
    stalled_at: Optional[int] = None

    if max_steps is None:
        max_steps = 4 * (len(instance.network) + instance.old_path_delay + instance.new_path_delay) + 16

    t = t0
    for _ in range(max_steps):
        if not pending:
            break
        dependencies = dependency_relations(instance, pending, tracker.applied, t)
        if keep_dependency_log:
            dependency_log.append((t, dependencies))
        if dependencies.has_cycle:
            stalled_at = t
            break

        round_nodes = _select_round(instance, tracker, dependencies, pending, t, mode)
        if round_nodes:
            report = tracker.apply_round(round_nodes, t)
            if not report.ok:
                violations.append(report)
            for node in round_nodes:
                times[node] = t
                pending.remove(node)
        else:
            horizon = tracker.finite_drain_horizon()
            if horizon is None or t > horizon:
                stalled_at = t
                break
        t += 1
    else:
        if pending:
            stalled_at = t

    if pending:
        # Best effort: finish with greedy loop-free rounds, ignoring
        # capacities; the instance admits no congestion-free schedule (or
        # the step bound was hit).
        start = max(t, stalled_at if stalled_at is not None else t)
        for offset, round_nodes in enumerate(
            greedy_loop_free_rounds(instance, pending, set(times))
        ):
            when = start + offset
            report = tracker.apply_round(round_nodes, when)
            if not report.ok:
                violations.append(report)
            for node in round_nodes:
                times[node] = when

    feasible = stalled_at is None and not violations and tracker.ok
    schedule = UpdateSchedule(times=times, start_time=t0, feasible=feasible)
    return GreedyResult(
        schedule=schedule,
        feasible=feasible,
        stalled_at=stalled_at,
        violations=violations,
        dependency_log=dependency_log,
    )


def _select_round(
    instance: UpdateInstance,
    tracker: IntervalTracker,
    dependencies: DependencySet,
    pending: Sequence[Node],
    t: int,
    mode: str,
) -> List[Node]:
    """Pick the switches to update at step ``t`` (lines 9-14 of Algorithm 2)."""
    round_nodes: List[Node] = []
    if mode == PAPER:
        applied = tracker.applied
        for head in dependencies.heads:
            committed = dict(applied)
            for node in round_nodes:
                committed[node] = t
            if not creates_forwarding_loop(instance, committed, head, t):
                round_nodes.append(head)
        return round_nodes

    # Exact mode: Algorithm 4's backward walk is a cheap prefilter (it
    # catches nearly every loop hazard in O(path) time); survivors are
    # confirmed with an exact joint preview against the flow state.
    applied = tracker.applied
    for head in dependencies.heads:
        committed = dict(applied)
        for node in round_nodes:
            committed[node] = t
        if creates_forwarding_loop(instance, committed, head, t):
            continue
        if tracker.preview_round(round_nodes + [head], t).ok:
            round_nodes.append(head)
    if round_nodes:
        return round_nodes
    # The chains blocked every head; on small instances fall back to probing
    # every pending switch so exact knowledge is never worse than the
    # heuristic (on large instances the prefiltered heads are trusted).
    if len(pending) <= 200:
        for node in pending:
            if tracker.preview_round(round_nodes + [node], t).ok:
                round_nodes.append(node)
    return round_nodes

