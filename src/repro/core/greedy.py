"""Algorithm 2: the Chronus greedy MUTP scheduler.

At every time step the scheduler updates as many switches as possible:
Algorithm 3 (:mod:`repro.core.dependency`) orders the pending switches into
dependency chains, Algorithm 4 (:mod:`repro.core.loops`) rules out updates
that would deflect in-flight traffic into a forwarding loop, and the
time-extended flow state (:mod:`repro.core.intervals`) supplies the
congestion-freedom ground truth.  Two decision modes are provided:

* ``"exact"`` (default): every candidate round is previewed against the
  interval tracker, so the resulting schedule provably satisfies
  Definitions 2 and 3 (this realises Theorem 3's guarantee).
* ``"paper"``: decisions use only Algorithm 3's chains and Algorithm 4's
  backward walk, exactly as printed in the paper; the final schedule is
  still validated and the result reports any violation.

Exact mode additionally offers two *engines* that produce byte-identical
schedules (a differential test suite pins this over hundreds of seeds):

* ``"incremental"`` (default): Algorithm 3 runs through a persistent
  :class:`repro.core.dependency.DependencyState` that only recomputes
  verdicts invalidated by last round's commits, and candidate heads are
  probed one at a time with ``probe_and_commit`` on a copy-on-write
  scratch clone that is adopted wholesale when the round is non-empty.
  Sequential single-head probes split and sweep each accepted head's
  fresh suffix exactly once, where the joint preview re-split every
  accumulated head per candidate -- the asymptotic win behind this engine.
  The flow state lives in the struct-of-arrays tracker
  (:class:`repro.core.intervals_array.ArrayIntervalTracker`) when numpy is
  available, falling back to the dict tracker otherwise.
* ``"incremental-dict"``: the incremental probing strategy on the
  dict-backed :class:`repro.core.intervals.IntervalTracker`; isolates the
  representation swap for differential tests and benchmarks.
* ``"fresh"``: the original from-scratch path -- Algorithm 3 recomputed
  every step, every candidate confirmed with a joint
  ``preview_round(accepted + [head])`` on the dict tracker.  Kept as the
  executable reference both incremental engines are differential-tested
  against.

Instances without a congestion-free schedule (the ILP can be infeasible;
cf. Fig. 7) are completed best-effort: the remaining switches are applied in
greedy loop-free rounds and the result is flagged infeasible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.dependency import (
    DependencySet,
    DependencyState,
    dependency_relations,
)
from repro.core.instance import UpdateInstance
from repro.core.intervals import IntervalTracker, RoundReport
from repro.core.intervals_array import NUMPY_AVAILABLE, ArrayIntervalTracker
from repro.core.loops import creates_forwarding_loop
from repro.core.rounds import greedy_loop_free_rounds
from repro.core.schedule import UpdateSchedule
from repro.network.graph import Node
from repro.perf import perf

EXACT = "exact"
PAPER = "paper"

INCREMENTAL = "incremental"
INCREMENTAL_DICT = "incremental-dict"
FRESH = "fresh"
_INCREMENTAL_ENGINES = (INCREMENTAL, INCREMENTAL_DICT)

# Below this pending-set size, a round in which every chain head was
# rejected falls back to probing every pending switch (exact knowledge is
# then never worse than the chain heuristic); above it the prefiltered
# heads are trusted.
_FALLBACK_PROBE_LIMIT = 200


@dataclass
class GreedyResult:
    """Outcome of the greedy scheduler.

    Attributes:
        schedule: The produced timed update schedule (always complete).
        feasible: ``True`` when the schedule is congestion- and loop-free.
        stalled_at: Time step at which the scheduler gave up waiting and
            switched to best-effort completion, or ``None``.
        violations: Round reports that contained violations (non-empty only
            for best-effort completions or paper-mode misjudgements).
        dependency_log: Per-step dependency sets, for inspection and for the
            paper's Fig. 5 walk-through.
    """

    schedule: UpdateSchedule
    feasible: bool
    stalled_at: Optional[int] = None
    violations: List[RoundReport] = field(default_factory=list)
    dependency_log: List[Tuple[int, DependencySet]] = field(default_factory=list)

    @property
    def makespan(self) -> int:
        return self.schedule.makespan


def greedy_schedule(
    instance: UpdateInstance,
    t0: int = 0,
    mode: str = EXACT,
    keep_dependency_log: bool = False,
    max_steps: Optional[int] = None,
    background=None,
    engine: str = INCREMENTAL,
) -> GreedyResult:
    """Run Algorithm 2 and return a complete timed update schedule.

    Args:
        instance: The update instance.
        t0: The current time step (updates start no earlier).
        mode: ``"exact"`` or ``"paper"`` (see module docstring).
        keep_dependency_log: Record Algorithm 3's output per step.
        max_steps: Safety bound on scheduling steps; defaults to a generous
            function of the instance size.
        background: Static per-link load from other flows (see
            :class:`repro.core.intervals.IntervalTracker`); exact mode's
            congestion checks then become joint across flows.
        engine: ``"incremental"`` or ``"fresh"`` (see module docstring);
            both produce identical schedules.

    Returns:
        A :class:`GreedyResult`; ``result.feasible`` distinguishes proper
        congestion- and loop-free schedules from best-effort completions.
    """
    if mode not in (EXACT, PAPER):
        raise ValueError(f"unknown greedy mode {mode!r}")
    if engine not in (INCREMENTAL, INCREMENTAL_DICT, FRESH):
        raise ValueError(f"unknown greedy engine {engine!r}")
    # Insertion-ordered dict as the pending set: O(1) membership tests and
    # removals with the same stable iteration order a list gave, minus the
    # O(n) ``list.remove`` per committed switch.
    pending: Dict[Node, None] = dict.fromkeys(instance.switches_to_update)
    tracker = _make_tracker(instance, t0, background, engine)
    state = DependencyState(instance, pending) if engine in _INCREMENTAL_ENGINES else None
    times: Dict[Node, int] = {}
    violations: List[RoundReport] = []
    dependency_log: List[Tuple[int, DependencySet]] = []
    stalled_at: Optional[int] = None

    if max_steps is None:
        max_steps = 4 * (len(instance.network) + instance.old_path_delay + instance.new_path_delay) + 16

    with perf.span("greedy"):
        t = t0
        for _ in range(max_steps):
            if not pending:
                break
            with perf.span("dependencies"):
                if state is not None:
                    dependencies = state.relations(t)
                else:
                    dependencies = dependency_relations(
                        instance, pending, tracker.applied, t
                    )
            if keep_dependency_log:
                dependency_log.append((t, dependencies))
            if dependencies.has_cycle:
                stalled_at = t
                break

            with perf.span("select"):
                round_nodes, adopted = _select_round(
                    instance, tracker, dependencies, pending, t, mode, engine
                )
            if round_nodes:
                if adopted is not None:
                    # The scratch clone already holds every accepted probe
                    # (all verified clean); adopting it skips re-splitting.
                    tracker = adopted
                else:
                    with perf.span("apply"):
                        report = tracker.apply_round(round_nodes, t)
                    if not report.ok:
                        violations.append(report)
                for node in round_nodes:
                    times[node] = t
                    del pending[node]
                if state is not None:
                    state.commit(round_nodes, t)
            else:
                horizon = tracker.finite_drain_horizon()
                if horizon is None or t > horizon:
                    stalled_at = t
                    break
            t += 1
        else:
            if pending:
                stalled_at = t

        if pending:
            # Best effort: finish with greedy loop-free rounds, ignoring
            # capacities; the instance admits no congestion-free schedule (or
            # the step bound was hit).
            start = max(t, stalled_at if stalled_at is not None else t)
            for offset, round_nodes in enumerate(
                greedy_loop_free_rounds(instance, list(pending), set(times))
            ):
                when = start + offset
                report = tracker.apply_round(round_nodes, when)
                if not report.ok:
                    violations.append(report)
                for node in round_nodes:
                    times[node] = when

    feasible = stalled_at is None and not violations and tracker.ok
    schedule = UpdateSchedule(times=times, start_time=t0, feasible=feasible)
    return GreedyResult(
        schedule=schedule,
        feasible=feasible,
        stalled_at=stalled_at,
        violations=violations,
        dependency_log=dependency_log,
    )


def _make_tracker(
    instance: UpdateInstance, t0: int, background, engine: str
):
    """The flow-state tracker backing ``engine``.

    The default incremental engine rides the struct-of-arrays tracker and
    silently degrades to the dict tracker when numpy is missing -- the two
    are report-identical, so the fallback only costs speed.
    """
    if engine == INCREMENTAL and NUMPY_AVAILABLE:
        return ArrayIntervalTracker(instance, t0=t0, background=background)
    return IntervalTracker(instance, t0=t0, background=background)


def _select_round(
    instance: UpdateInstance,
    tracker: IntervalTracker,
    dependencies: DependencySet,
    pending: Dict[Node, None],
    t: int,
    mode: str,
    engine: str,
) -> Tuple[List[Node], Optional[IntervalTracker]]:
    """Pick the switches to update at step ``t`` (lines 9-14 of Algorithm 2).

    Returns ``(round_nodes, adopted)``: when ``adopted`` is not ``None`` it
    is a tracker with the whole round already committed at ``t`` (the
    incremental engine's scratch clone) and the caller must swap it in
    instead of re-applying the round.
    """
    round_nodes: List[Node] = []
    # One committed-times snapshot per round, extended in place as heads are
    # accepted (a head is never in it while being examined, matching the
    # paper's "already updated plus this round so far" committed set).
    committed = tracker.applied
    if mode == PAPER:
        for head in dependencies.heads:
            if not creates_forwarding_loop(instance, committed, head, t):
                round_nodes.append(head)
                committed[head] = t
        return round_nodes, None

    if engine == FRESH:
        # Reference path: Algorithm 4's backward walk as a cheap prefilter,
        # survivors confirmed with a joint preview against the flow state.
        for head in dependencies.heads:
            if creates_forwarding_loop(instance, committed, head, t):
                continue
            if tracker.preview_round(round_nodes + [head], t).ok:
                round_nodes.append(head)
                committed[head] = t
        if round_nodes:
            return round_nodes, None
        if len(pending) <= _FALLBACK_PROBE_LIMIT:
            for node in pending:
                if tracker.preview_round(round_nodes + [node], t).ok:
                    round_nodes.append(node)
        return round_nodes, None

    # Incremental engine: probe candidates one at a time against a scratch
    # clone that accumulates the accepted heads.  Each probe splits and
    # sweeps only the candidate's own deflections on top of a
    # verified-clean baseline, which is decision-equivalent to the joint
    # preview (the differential tests pin this) at a fraction of the work.
    scratch: Optional[IntervalTracker] = None
    for head in dependencies.heads:
        if creates_forwarding_loop(instance, committed, head, t):
            continue
        if scratch is None:
            scratch = tracker.clone()
        if scratch.probe_and_commit([head], t).ok:
            round_nodes.append(head)
            committed[head] = t
    if not round_nodes and len(pending) <= _FALLBACK_PROBE_LIMIT:
        for node in pending:
            if scratch is None:
                scratch = tracker.clone()
            if scratch.probe_and_commit([node], t).ok:
                round_nodes.append(node)
    return round_nodes, scratch if round_nodes else None
