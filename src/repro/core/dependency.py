"""Algorithm 3: dependency relation sets.

At a given time step ``t``, Algorithm 3 decides in which *order* pending
switches may update: if updating ``v_i`` now would push new flow through a
switch ``v`` whose outgoing link ``(v, v~)`` still carries old flow fed by
the old-path predecessor ``v-`` -- and that link cannot hold both flows
(``C < 2d``) -- then ``v-`` must update (and its old flow drain) before
``v_i``.  Relations sharing a common switch merge into chains, e.g.
``{v1 -> v2}`` and ``{v2 -> v3}`` merge into ``{v1 -> v2 -> v3}``
(Fig. 5 of the paper).

The *liveness* of old flow ("the solid line still exists at ``v(t')`` in the
time-extended network") is computed from the committed update times: the
last unit of old flow through a switch is the last emission that clears
every already-updated upstream switch before its update time.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.instance import UpdateInstance
from repro.network.graph import Node
from repro.network.paths import arrival_offsets

_EPS = 1e-9


@dataclass
class DependencySet:
    """The dependency relation set ``O_t`` of one time step.

    Attributes:
        chains: Ordered chains of pending switches; a switch may only update
            once every switch before it in its chain has updated *and* the
            corresponding old flow has drained.  Unconstrained switches form
            singleton chains.
        deferred: Pending switches that must simply wait for in-flight old
            traffic to drain (their blocker has already been updated, so no
            switch-ordering relation expresses the wait).
        has_cycle: ``True`` when the raw relations are cyclic, in which case
            no congestion-free update order exists at this time step
            (Algorithm 2, lines 7-8).
    """

    chains: List[List[Node]] = field(default_factory=list)
    deferred: Set[Node] = field(default_factory=set)
    has_cycle: bool = False

    @property
    def heads(self) -> List[Node]:
        """Switches allowed to update now: chain heads that are not deferred."""
        return [chain[0] for chain in self.chains if chain and chain[0] not in self.deferred]


def last_old_emission(instance: UpdateInstance, applied: Mapping[Node, int]) -> Optional[int]:
    """The last emission time that still travels the *full* old path.

    A unit emitted at ``e`` departs old-path switch ``a`` at ``e + off(a)``
    and follows the old rule there iff ``e + off(a) < update_time(a)``.
    Returns ``None`` when no old-path switch has been updated yet (old flow
    keeps coming indefinitely).
    """
    old_path = instance.old_path
    offsets = arrival_offsets(instance.network, old_path)
    bound: Optional[int] = None
    for node, offset in zip(old_path, offsets):
        when = applied.get(node)
        if when is None:
            continue
        candidate = when - offset - 1
        bound = candidate if bound is None else min(bound, candidate)
    return bound


def last_old_departure(
    instance: UpdateInstance, applied: Mapping[Node, int], node: Node
) -> Optional[float]:
    """Last time old flow departs ``node`` along the old path.

    ``None`` when ``node`` is not on the old path; ``inf`` when old flow
    never stops (no upstream switch updated yet).  Only switches *upstream
    of or equal to* ``node`` gate its old departures.
    """
    old_path = instance.old_path
    if node not in old_path:
        return None
    offsets = arrival_offsets(instance.network, old_path)
    index = old_path.index(node)
    bound: Optional[int] = None
    for ancestor, offset in zip(old_path[: index + 1], offsets):
        when = applied.get(ancestor)
        if when is None:
            continue
        candidate = when - offset - 1
        bound = candidate if bound is None else min(bound, candidate)
    if bound is None:
        return float("inf")
    return bound + offsets[index]


def drain_table(
    instance: UpdateInstance, applied: Mapping[Node, int]
) -> Dict[Node, float]:
    """Last old-flow departure time per old-path switch, in one pass.

    Equivalent to calling :func:`last_old_departure` for every switch but
    linear overall: the binding constraint for a switch is the minimum of
    ``update_time(a) - off(a)`` over its old-path ancestors, a prefix
    minimum along the path.
    """
    old_path = instance.old_path
    offsets = instance.old_path_offsets
    table: Dict[Node, float] = {}
    prefix_min = float("inf")
    for node in old_path:
        offset = offsets[node]
        when = applied.get(node)
        if when is not None:
            prefix_min = min(prefix_min, when - offset)
        table[node] = prefix_min - 1 + offset
    return table


def dependency_relations(
    instance: UpdateInstance,
    pending: Sequence[Node],
    applied: Mapping[Node, int],
    t: int,
) -> DependencySet:
    """Algorithm 3: build the dependency relation set ``O_t``.

    Args:
        instance: The update instance.
        pending: Switches still awaiting their update (the set ``Gamma``).
        applied: Committed ``switch -> update time`` assignments.
        t: The current time step.

    Returns:
        The merged chains, deferred switches and cycle flag.
    """
    network = instance.network
    demand = instance.demand
    pending_set = set(pending)
    relations: List[Tuple[Node, Node]] = []  # (before, after)
    deferred: Set[Node] = set()
    # The paper's `include` flag (lines 2 and 10-11): once a switch takes
    # part in a relation it is not examined as v_i again this step, which
    # keeps the relation set a union of chains instead of a dense digraph.
    marked: Set[Node] = set()
    drains = drain_table(instance, applied)

    for v_i in pending:
        if v_i in marked:
            continue
        v = instance.new_next_hop(v_i)
        if v is None or v == instance.destination:
            continue
        t_arrival = t + network.delay(v_i, v)
        # The switch v forwards with its *current* rule when the new flow
        # arrives: old while pending, new once updated.
        if v in applied and applied[v] <= t_arrival:
            v_tilde = instance.new_next_hop(v)
        else:
            v_tilde = instance.old_next_hop(v)
        if v_tilde is None:
            continue
        link = network.get_link(v, v_tilde)
        if link is None or link.capacity + _EPS >= 2 * demand:
            continue
        # Old flow still departs (v, v~) at or after the new flow's arrival?
        drain = drains.get(v)
        if drain is None or drain < t_arrival:
            continue
        v_bar = instance.old_predecessor(v)
        if v_bar is not None and v_bar in pending_set and v_bar != v_i:
            relations.append((v_bar, v_i))
            marked.add(v_bar)
            marked.add(v_i)
        else:
            # The feeder has been updated (or is the flow itself): the old
            # flow will drain with time; v_i just has to wait.
            deferred.add(v_i)

    chains, has_cycle = merge_relations(relations, pending)
    return DependencySet(chains=chains, deferred=deferred, has_cycle=has_cycle)


def merge_relations(
    relations: Sequence[Tuple[Node, Node]], pending: Sequence[Node]
) -> Tuple[List[List[Node]], bool]:
    """Merge pairwise relations on common switches into ordered chains.

    Follows the paper's line 12 ("merge the dependency relation set with the
    common element"): relations form a precedence digraph; each weakly
    connected component is linearised topologically into one chain.  A
    cyclic component sets the cycle flag.

    Returns:
        ``(chains, has_cycle)`` -- chains cover every pending switch
        (singletons for unconstrained ones) in a deterministic order.
    """
    successors: Dict[Node, List[Node]] = {}
    indegree: Dict[Node, int] = {}
    members: Dict[Node, None] = {}
    for before, after in relations:
        successors.setdefault(before, []).append(after)
        indegree[after] = indegree.get(after, 0) + 1
        indegree.setdefault(before, 0)
        members.setdefault(before)
        members.setdefault(after)

    # Kahn's algorithm per component; pending order keeps output stable.
    # The stable-key index is built once (an earlier version rebuilt it on
    # every comparison call, which made this merge quadratic in |pending|
    # per time step and the scheduler cubic overall on chain-heavy
    # instances); a heap of (key, node) replaces re-sorting the ready list
    # after every single append.
    index = {node: i for i, node in enumerate(pending)}
    fallback = len(index)
    order: List[Node] = []
    heap = [(index.get(node, fallback), node) for node in members if indegree[node] == 0]
    heapq.heapify(heap)
    indegree = dict(indegree)
    while heap:
        _, node = heapq.heappop(heap)
        order.append(node)
        for nxt in successors.get(node, ()):  # decrement downstream
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                heapq.heappush(heap, (index.get(nxt, fallback), nxt))
    has_cycle = len(order) < len(members)

    # Group the topological order into weakly connected components.
    component: Dict[Node, int] = {}
    parent: Dict[Node, Node] = {node: node for node in members}

    def find(node: Node) -> Node:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    for before, after in relations:
        ra, rb = find(before), find(after)
        if ra != rb:
            parent[ra] = rb

    chains_by_root: Dict[Node, List[Node]] = {}
    for node in order:
        chains_by_root.setdefault(find(node), []).append(node)

    chains = list(chains_by_root.values())
    covered = set(members)
    for node in pending:
        if node not in covered:
            chains.append([node])
    chains.sort(key=lambda chain: index.get(chain[0], fallback))
    return chains, has_cycle


def _stable_key(pending: Sequence[Node]):
    index = {node: i for i, node in enumerate(pending)}
    return lambda node: index.get(node, len(index))


# ----------------------------------------------------------------------
# Incremental engine
# ----------------------------------------------------------------------
_INF = float("inf")

# Verdict kinds for one pending switch at one time step.
_NONE = 0  # no relation: v_i is unconstrained by Algorithm 3
_REL = 1  # relation (v_bar -> v_i): the partner must update (and drain) first
_DEFER = 2  # v_i must simply wait for in-flight old traffic to drain

# One cached verdict: (kind, partner, expires) -- valid for every time
# step ``t <= expires`` until an invalidation event drops it.
_Verdict = Tuple[int, Optional[Node], float]


class DependencyState:
    """Incremental Algorithm 3: persist the relation structure across steps.

    :func:`dependency_relations` recomputes every pending switch's
    constraint from scratch at every time step -- including an O(old path)
    drain table -- which makes Algorithm 2 accidentally quadratic on
    instances whose pending set stays large (the scheduler's loop is
    O(steps x pending) even before the tracker does any work).  This class
    keeps that per-switch work **across** time steps and recomputes only
    what last round's commits (and the passage of time itself) invalidated.

    What is cached per pending switch ``v_i`` (the *verdict*): whether
    Algorithm 3 emits no constraint, a relation ``v_bar -> v_i``, or a
    deferral.  A verdict depends on (a) the forwarding rule its examined
    switch ``v`` applies when the new flow arrives, (b) the drain time of
    old flow through ``v`` and (c) the pending status of ``v``'s old-path
    predecessor.  The **invalidation rule** is therefore:

    * committing switch ``a`` drops the verdicts of ``a`` itself, of every
      ``v_i`` whose examined switch is ``a`` (rule change at ``a``), and of
      every ``v_i`` whose relation partner is ``a`` (the relation collapses
      into a deferral);
    * a commit on the old path lowers the drain-time prefix minima from its
      path position onward; verdicts examining a switch whose drain time
      actually changed are dropped (the propagation stops at the first
      position whose prefix minimum is already lower, so the walk is
      output-sensitive);
    * time passing needs no event: each verdict stores the last step it is
      valid for (``applied[v] - delay(v_i, v) - 1`` when ``v``'s committed
      rule flip is still ahead of the new flow's arrival, and
      ``drain(v) - delay(v_i, v)`` while an active drain constraint binds,
      both of which are threshold crossings of the growing arrival time
      ``t + delay``) and is recomputed lazily once ``t`` passes it.

    The per-step rebuild walks the pending order once, reading cached
    verdicts (two dict lookups each) and re-running the paper's ``marked``
    merge logic -- the relation *set* stays order-dependent exactly as
    printed, so the output is field-for-field identical to the from-scratch
    function (a property test pins this over hundreds of seeded instances).
    When nothing was committed and no verdict expired, the previous
    :class:`DependencySet` is returned outright.
    """

    def __init__(self, instance: UpdateInstance, pending: Sequence[Node]) -> None:
        self.instance = instance
        self._pending: Dict[Node, None] = dict.fromkeys(pending)
        self._applied: Dict[Node, int] = {}
        self._verdicts: Dict[Node, _Verdict] = {}
        # watchers[x] = pending switches whose verdict examined switch x
        # (as next hop / drain gate) or relies on x as relation partner.
        self._watch_hop: Dict[Node, Set[Node]] = {}
        self._watch_pred: Dict[Node, Set[Node]] = {}
        # Incremental drain table: prefix minima of applied[a] - off(a)
        # along the old path (see :func:`drain_table`).
        self._old_path = instance.old_path
        self._old_index = {node: i for i, node in enumerate(self._old_path)}
        self._offsets = instance.old_path_offsets
        self._prefix_min: List[float] = [_INF] * len(self._old_path)
        self._drains: Dict[Node, float] = {node: _INF for node in self._old_path}
        self._cache: Optional[DependencySet] = None
        self._cache_valid_until = -_INF
        self._dirty = True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def pending(self) -> List[Node]:
        """The pending switches, in their stable scheduling order."""
        return list(self._pending)

    def relations(self, t: int) -> DependencySet:
        """The dependency relation set ``O_t`` (equal to the from-scratch
        :func:`dependency_relations` on the same pending/applied state)."""
        if self._cache is not None and not self._dirty and t <= self._cache_valid_until:
            return self._cache
        pending_list = list(self._pending)
        verdicts = self._verdicts
        relations: List[Tuple[Node, Node]] = []
        deferred: Set[Node] = set()
        marked: Set[Node] = set()
        valid_until = _INF
        for v_i in pending_list:
            entry = verdicts.get(v_i)
            if entry is None or t > entry[2]:
                entry = self._compute(v_i, t)
            if entry[2] < valid_until:
                valid_until = entry[2]
            if v_i in marked:
                continue
            kind = entry[0]
            if kind == _REL:
                relations.append((entry[1], v_i))
                marked.add(entry[1])
                marked.add(v_i)
            elif kind == _DEFER:
                deferred.add(v_i)
        chains, has_cycle = merge_relations(relations, pending_list)
        deps = DependencySet(chains=chains, deferred=deferred, has_cycle=has_cycle)
        self._cache = deps
        self._cache_valid_until = valid_until
        self._dirty = False
        return deps

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def commit(self, nodes: Sequence[Node], time: int) -> None:
        """Record that ``nodes`` were committed to update at ``time``.

        Applies the invalidation rule documented on the class: dropped
        verdicts are recomputed lazily by the next :meth:`relations` call.
        """
        verdicts = self._verdicts
        changed_drains: List[Node] = []
        for node in nodes:
            self._pending.pop(node, None)
            self._applied[node] = time
            verdicts.pop(node, None)
            position = self._old_index.get(node)
            if position is not None:
                self._lower_prefix_min(position, time, changed_drains)
        for node in nodes:
            for watcher in self._watch_hop.pop(node, ()):
                verdicts.pop(watcher, None)
            for watcher in self._watch_pred.pop(node, ()):
                verdicts.pop(watcher, None)
        for node in changed_drains:
            for watcher in self._watch_hop.pop(node, ()):
                verdicts.pop(watcher, None)
        self._dirty = True

    def _lower_prefix_min(
        self, position: int, time: int, changed: List[Node]
    ) -> None:
        """Propagate ``applied[a] - off(a)`` into the prefix minima.

        The minima are non-increasing along the path, so the positions the
        new key lowers form a contiguous run starting at ``position``; the
        walk stops at the first position already at or below the key.
        """
        offsets = self._offsets
        path = self._old_path
        key = time - offsets[path[position]]
        prefix_min = self._prefix_min
        drains = self._drains
        for j in range(position, len(path)):
            if prefix_min[j] <= key:
                break
            prefix_min[j] = key
            node = path[j]
            drains[node] = key - 1 + offsets[node]
            changed.append(node)

    # ------------------------------------------------------------------
    # verdicts
    # ------------------------------------------------------------------
    def _compute(self, v_i: Node, t: int) -> _Verdict:
        """(Re)compute and cache the verdict of ``v_i`` at step ``t``.

        Mirrors the per-switch body of :func:`dependency_relations` exactly,
        additionally deriving the verdict's validity window and registering
        the invalidation watchers.
        """
        instance = self.instance
        v = instance.new_next_hop(v_i)
        if v is None or v == instance.destination:
            entry: _Verdict = (_NONE, None, _INF)
            self._verdicts[v_i] = entry
            return entry
        network = instance.network
        delay = network.delay(v_i, v)
        t_arrival = t + delay
        when = self._applied.get(v)
        expires = _INF
        if when is not None and when <= t_arrival:
            v_tilde = instance.new_next_hop(v)
        else:
            v_tilde = instance.old_next_hop(v)
            if when is not None:
                # The committed rule flip at v is still ahead of the new
                # flow's arrival; the old-rule reading holds while
                # t + delay < when.
                expires = when - delay - 1
        self._watch_hop.setdefault(v, set()).add(v_i)
        kind, partner = _NONE, None
        if v_tilde is not None:
            link = network.get_link(v, v_tilde)
            if link is not None and link.capacity + _EPS < 2 * instance.demand:
                drain = self._drains.get(v)
                if drain is not None and drain >= t_arrival:
                    if drain != _INF:
                        expires = min(expires, drain - delay)
                    v_bar = instance.old_predecessor(v)
                    if v_bar is not None and v_bar in self._pending and v_bar != v_i:
                        kind, partner = _REL, v_bar
                        self._watch_pred.setdefault(v_bar, set()).add(v_i)
                    else:
                        kind = _DEFER
        entry = (kind, partner, expires)
        self._verdicts[v_i] = entry
        return entry
