"""Algorithm 3: dependency relation sets.

At a given time step ``t``, Algorithm 3 decides in which *order* pending
switches may update: if updating ``v_i`` now would push new flow through a
switch ``v`` whose outgoing link ``(v, v~)`` still carries old flow fed by
the old-path predecessor ``v-`` -- and that link cannot hold both flows
(``C < 2d``) -- then ``v-`` must update (and its old flow drain) before
``v_i``.  Relations sharing a common switch merge into chains, e.g.
``{v1 -> v2}`` and ``{v2 -> v3}`` merge into ``{v1 -> v2 -> v3}``
(Fig. 5 of the paper).

The *liveness* of old flow ("the solid line still exists at ``v(t')`` in the
time-extended network") is computed from the committed update times: the
last unit of old flow through a switch is the last emission that clears
every already-updated upstream switch before its update time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.instance import UpdateInstance
from repro.network.graph import Node
from repro.network.paths import arrival_offsets

_EPS = 1e-9


@dataclass
class DependencySet:
    """The dependency relation set ``O_t`` of one time step.

    Attributes:
        chains: Ordered chains of pending switches; a switch may only update
            once every switch before it in its chain has updated *and* the
            corresponding old flow has drained.  Unconstrained switches form
            singleton chains.
        deferred: Pending switches that must simply wait for in-flight old
            traffic to drain (their blocker has already been updated, so no
            switch-ordering relation expresses the wait).
        has_cycle: ``True`` when the raw relations are cyclic, in which case
            no congestion-free update order exists at this time step
            (Algorithm 2, lines 7-8).
    """

    chains: List[List[Node]] = field(default_factory=list)
    deferred: Set[Node] = field(default_factory=set)
    has_cycle: bool = False

    @property
    def heads(self) -> List[Node]:
        """Switches allowed to update now: chain heads that are not deferred."""
        return [chain[0] for chain in self.chains if chain and chain[0] not in self.deferred]


def last_old_emission(instance: UpdateInstance, applied: Mapping[Node, int]) -> Optional[int]:
    """The last emission time that still travels the *full* old path.

    A unit emitted at ``e`` departs old-path switch ``a`` at ``e + off(a)``
    and follows the old rule there iff ``e + off(a) < update_time(a)``.
    Returns ``None`` when no old-path switch has been updated yet (old flow
    keeps coming indefinitely).
    """
    old_path = instance.old_path
    offsets = arrival_offsets(instance.network, old_path)
    bound: Optional[int] = None
    for node, offset in zip(old_path, offsets):
        when = applied.get(node)
        if when is None:
            continue
        candidate = when - offset - 1
        bound = candidate if bound is None else min(bound, candidate)
    return bound


def last_old_departure(
    instance: UpdateInstance, applied: Mapping[Node, int], node: Node
) -> Optional[float]:
    """Last time old flow departs ``node`` along the old path.

    ``None`` when ``node`` is not on the old path; ``inf`` when old flow
    never stops (no upstream switch updated yet).  Only switches *upstream
    of or equal to* ``node`` gate its old departures.
    """
    old_path = instance.old_path
    if node not in old_path:
        return None
    offsets = arrival_offsets(instance.network, old_path)
    index = old_path.index(node)
    bound: Optional[int] = None
    for ancestor, offset in zip(old_path[: index + 1], offsets):
        when = applied.get(ancestor)
        if when is None:
            continue
        candidate = when - offset - 1
        bound = candidate if bound is None else min(bound, candidate)
    if bound is None:
        return float("inf")
    return bound + offsets[index]


def drain_table(
    instance: UpdateInstance, applied: Mapping[Node, int]
) -> Dict[Node, float]:
    """Last old-flow departure time per old-path switch, in one pass.

    Equivalent to calling :func:`last_old_departure` for every switch but
    linear overall: the binding constraint for a switch is the minimum of
    ``update_time(a) - off(a)`` over its old-path ancestors, a prefix
    minimum along the path.
    """
    old_path = instance.old_path
    offsets = instance.old_path_offsets
    table: Dict[Node, float] = {}
    prefix_min = float("inf")
    for node in old_path:
        offset = offsets[node]
        when = applied.get(node)
        if when is not None:
            prefix_min = min(prefix_min, when - offset)
        table[node] = prefix_min - 1 + offset
    return table


def dependency_relations(
    instance: UpdateInstance,
    pending: Sequence[Node],
    applied: Mapping[Node, int],
    t: int,
) -> DependencySet:
    """Algorithm 3: build the dependency relation set ``O_t``.

    Args:
        instance: The update instance.
        pending: Switches still awaiting their update (the set ``Gamma``).
        applied: Committed ``switch -> update time`` assignments.
        t: The current time step.

    Returns:
        The merged chains, deferred switches and cycle flag.
    """
    network = instance.network
    demand = instance.demand
    pending_set = set(pending)
    relations: List[Tuple[Node, Node]] = []  # (before, after)
    deferred: Set[Node] = set()
    # The paper's `include` flag (lines 2 and 10-11): once a switch takes
    # part in a relation it is not examined as v_i again this step, which
    # keeps the relation set a union of chains instead of a dense digraph.
    marked: Set[Node] = set()
    drains = drain_table(instance, applied)

    for v_i in pending:
        if v_i in marked:
            continue
        v = instance.new_next_hop(v_i)
        if v is None or v == instance.destination:
            continue
        t_arrival = t + network.delay(v_i, v)
        # The switch v forwards with its *current* rule when the new flow
        # arrives: old while pending, new once updated.
        if v in applied and applied[v] <= t_arrival:
            v_tilde = instance.new_next_hop(v)
        else:
            v_tilde = instance.old_next_hop(v)
        if v_tilde is None:
            continue
        link = network.get_link(v, v_tilde)
        if link is None or link.capacity + _EPS >= 2 * demand:
            continue
        # Old flow still departs (v, v~) at or after the new flow's arrival?
        drain = drains.get(v)
        if drain is None or drain < t_arrival:
            continue
        v_bar = instance.old_predecessor(v)
        if v_bar is not None and v_bar in pending_set and v_bar != v_i:
            relations.append((v_bar, v_i))
            marked.add(v_bar)
            marked.add(v_i)
        else:
            # The feeder has been updated (or is the flow itself): the old
            # flow will drain with time; v_i just has to wait.
            deferred.add(v_i)

    chains, has_cycle = merge_relations(relations, pending)
    return DependencySet(chains=chains, deferred=deferred, has_cycle=has_cycle)


def merge_relations(
    relations: Sequence[Tuple[Node, Node]], pending: Sequence[Node]
) -> Tuple[List[List[Node]], bool]:
    """Merge pairwise relations on common switches into ordered chains.

    Follows the paper's line 12 ("merge the dependency relation set with the
    common element"): relations form a precedence digraph; each weakly
    connected component is linearised topologically into one chain.  A
    cyclic component sets the cycle flag.

    Returns:
        ``(chains, has_cycle)`` -- chains cover every pending switch
        (singletons for unconstrained ones) in a deterministic order.
    """
    successors: Dict[Node, List[Node]] = {}
    indegree: Dict[Node, int] = {}
    members: Dict[Node, None] = {}
    for before, after in relations:
        successors.setdefault(before, []).append(after)
        indegree[after] = indegree.get(after, 0) + 1
        indegree.setdefault(before, 0)
        members.setdefault(before)
        members.setdefault(after)

    # Kahn's algorithm per component; pending order keeps output stable.
    order: List[Node] = []
    ready = [node for node in members if indegree[node] == 0]
    ready.sort(key=_stable_key(pending))
    indegree = dict(indegree)
    while ready:
        node = ready.pop(0)
        order.append(node)
        for nxt in successors.get(node, ()):  # decrement downstream
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                ready.append(nxt)
        ready.sort(key=_stable_key(pending))
    has_cycle = len(order) < len(members)

    # Group the topological order into weakly connected components.
    component: Dict[Node, int] = {}
    parent: Dict[Node, Node] = {node: node for node in members}

    def find(node: Node) -> Node:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    for before, after in relations:
        ra, rb = find(before), find(after)
        if ra != rb:
            parent[ra] = rb

    chains_by_root: Dict[Node, List[Node]] = {}
    for node in order:
        chains_by_root.setdefault(find(node), []).append(node)

    chains = list(chains_by_root.values())
    covered = set(members)
    for node in pending:
        if node not in covered:
            chains.append([node])
    chains.sort(key=lambda chain: _stable_key(pending)(chain[0]))
    return chains, has_cycle


def _stable_key(pending: Sequence[Node]):
    index = {node: i for i, node in enumerate(pending)}
    return lambda node: index.get(node, len(index))
