"""The logically centralised controller and its managed switches.

A :class:`ManagedSwitch` is the control agent sitting next to a data-plane
switch: it applies FlowMods after the switch's installation latency (or at
the FlowMod's scheduled local time, Time4-style) and answers barrier
requests once everything received before them has completed.  The
:class:`Controller` sends messages over the asynchronous channel and
collects replies -- the Floodlight analogue driving Algorithms 5.
"""

from __future__ import annotations

from dataclasses import field
from typing import Callable, Dict, List, Optional, Set

from repro.controller.channel import ControlChannel
from repro.controller.clock import SwitchClock
from repro.controller.messages import (
    BarrierReply,
    BarrierRequest,
    ControlMessage,
    FlowModAdd,
    FlowModDelete,
    FlowModModify,
    next_xid,
)
from repro.simulator.engine import Simulator
from repro.simulator.switch import DataSwitch


class ManagedSwitch:
    """Control agent of one data-plane switch.

    Attributes:
        applied_at: True apply time per FlowMod xid.
        late: Lateness in seconds of Time4 FlowMods whose scheduled
            execution time had already passed on arrival (the switch clamps
            execution to "now"; without this record skew experiments
            under-report why ``max_skew`` grew).
        faults: Optional fault state (duck-typed, see
            :class:`repro.faults.SwitchFaultState`): ``crashed(now)``,
            ``apply_fails()`` and ``stretch_install(latency)`` hooks.
    """

    def __init__(
        self,
        sim: Simulator,
        switch: DataSwitch,
        channel: ControlChannel,
        clock: Optional[SwitchClock] = None,
    ) -> None:
        self._sim = sim
        self.switch = switch
        self._channel = channel
        self.clock = clock if clock is not None else SwitchClock()
        self._outstanding: Set[int] = set()
        self._barriers: List[tuple] = []  # (xid, waiting-for set, reply_fn)
        self.applied_at: Dict[int, float] = {}  # xid -> true apply time
        self.late: Dict[int, float] = {}  # xid -> seconds past execute_at
        self.faults = None

    # ------------------------------------------------------------------
    # message handling
    # ------------------------------------------------------------------
    def receive(self, message: ControlMessage, reply: Callable[[BarrierReply], None]) -> None:
        """Handle one message arriving from the control channel."""
        if self.faults is not None and self.faults.crashed(self._sim.now):
            return  # crash-stop: the agent processes nothing, ever again
        if isinstance(message, BarrierRequest):
            waiting = set(self._outstanding)
            if waiting:
                self._barriers.append((message.xid, waiting, reply))
            else:
                self._send_reply(message.xid, reply)
            return
        if isinstance(message, (FlowModAdd, FlowModModify, FlowModDelete)):
            if message.xid in self._outstanding or message.xid in self.applied_at:
                return  # duplicate xid (retry or channel duplication): idempotent
            self._outstanding.add(message.xid)
            if message.execute_at is not None:
                # Time4: pre-programmed execution at a switch-local time.
                true_when = self.clock.true_time(message.execute_at)
                if true_when < self._sim.now - 1e-12:
                    self.late[message.xid] = self._sim.now - true_when
                when = max(self._sim.now, true_when)
            else:
                latency = self._channel.draw_install_latency()
                if self.faults is not None:
                    latency = self.faults.stretch_install(latency)
                when = self._sim.now + latency
            self._sim.schedule_at(when, lambda: self._apply(message))
            return
        raise TypeError(f"unsupported message {message!r}")

    def _apply(self, message: ControlMessage) -> None:
        if self.faults is not None:
            if self.faults.crashed(self._sim.now):
                return  # crashed between receipt and execution
            if self.faults.apply_fails():
                # The install failed on the switch (OpenFlow would raise an
                # OFPT_ERROR): no table change, no apply record -- but the
                # message is processed, so barriers behind it may proceed.
                self._outstanding.discard(message.xid)
                self._drain_barriers()
                return
        table = self.switch.table
        if isinstance(message, FlowModAdd):
            table.add(message.rule)
        elif isinstance(message, FlowModModify):
            table.modify(message.rule_name, out_port=message.out_port, set_tag=message.set_tag)
        elif isinstance(message, FlowModDelete):
            table.delete(message.rule_name)
        self.switch.on_table_changed()
        self.applied_at[message.xid] = self._sim.now
        self._outstanding.discard(message.xid)
        self._drain_barriers()

    def _drain_barriers(self) -> None:
        ready = []
        for entry in self._barriers:
            xid, waiting, reply = entry
            waiting &= self._outstanding
            if not waiting:
                ready.append(entry)
        for entry in ready:
            self._barriers.remove(entry)
            self._send_reply(entry[0], entry[2])

    def _send_reply(self, xid: int, reply: Callable[[BarrierReply], None]) -> None:
        message = BarrierReply(xid=xid, switch=self.switch.name)
        self._channel.send(lambda: reply(message), key=("from", self.switch.name))


class Controller:
    """The central controller: sends FlowMods and synchronises on barriers."""

    def __init__(
        self,
        sim: Simulator,
        channel: ControlChannel,
        clocks: Optional[Dict[str, SwitchClock]] = None,
    ) -> None:
        self._sim = sim
        self._channel = channel
        self._switches: Dict[str, ManagedSwitch] = {}
        self._clocks = clocks or {}
        self._barrier_waiters: Dict[int, Callable[[BarrierReply], None]] = {}

    def manage(self, switch: DataSwitch) -> ManagedSwitch:
        """Attach a data-plane switch to this controller."""
        managed = ManagedSwitch(
            self._sim,
            switch,
            self._channel,
            clock=self._clocks.get(switch.name),
        )
        self._switches[switch.name] = managed
        return managed

    def managed(self, name: str) -> ManagedSwitch:
        return self._switches[name]

    @property
    def switch_names(self) -> List[str]:
        return list(self._switches)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send_flow_mod(self, switch: str, message: ControlMessage) -> int:
        """Send a FlowMod; returns its xid."""
        managed = self._switches[switch]
        self._channel.send(
            lambda: managed.receive(message, self._on_barrier_reply),
            key=("to", switch),
        )
        return message.xid

    def send_barrier(
        self, switch: str, on_reply: Callable[[BarrierReply], None]
    ) -> int:
        """Send a barrier request; ``on_reply`` fires when the reply lands."""
        xid = next_xid()
        self._barrier_waiters[xid] = on_reply
        managed = self._switches[switch]
        request = BarrierRequest(xid=xid)
        self._channel.send(
            lambda: managed.receive(request, self._on_barrier_reply),
            key=("to", switch),
        )
        return xid

    def _on_barrier_reply(self, reply: BarrierReply) -> None:
        waiter = self._barrier_waiters.pop(reply.xid, None)
        if waiter is not None:
            waiter(reply)

    def expire_barrier(self, xid: int) -> bool:
        """Drop the waiter of a barrier whose reply is presumed lost.

        Without this the waiter table leaks forever whenever a reply is
        dropped (guaranteed under fault injection).  A reply that arrives
        after expiry is silently ignored.  Returns whether a waiter was
        still registered.
        """
        return self._barrier_waiters.pop(xid, None) is not None

    def pending_barriers(self) -> int:
        """Barrier requests sent but neither answered nor expired."""
        return len(self._barrier_waiters)

    # ------------------------------------------------------------------
    # observations
    # ------------------------------------------------------------------
    def apply_time(self, switch: str, xid: int) -> Optional[float]:
        """True time at which a FlowMod took effect, if it has."""
        return self._switches[switch].applied_at.get(xid)

    def lateness(self, switch: str, xid: int) -> Optional[float]:
        """Seconds a scheduled FlowMod arrived past its execution time."""
        return self._switches[switch].late.get(xid)
