"""Per-switch clocks with bounded offset (the Time4 substrate).

Timed SDNs rely on clock synchronisation (e.g. ReversePTP used by Time4) to
execute updates "on the order of one microsecond" accurately.  A
:class:`SwitchClock` maps between simulation (true) time and the switch's
local time through a constant offset; Chronus schedules rule changes in
switch-local time, so the offset directly becomes schedule skew -- the
ablation benchmarks inject microsecond-to-millisecond offsets to measure
how much synchronisation accuracy the guarantees need.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, Optional


@dataclass(frozen=True)
class SwitchClock:
    """A switch's clock: ``local = true + offset``.

    Attributes:
        offset: Constant offset in seconds (positive = clock runs ahead).
    """

    offset: float = 0.0

    def local_time(self, true_time: float) -> float:
        """Switch-local reading at ``true_time``."""
        return true_time + self.offset

    def true_time(self, local_time: float) -> float:
        """The true time at which the local clock shows ``local_time``."""
        return local_time - self.offset


def synchronized_clocks(
    switches: Iterable[str],
    max_offset: float = 1e-6,
    rng: Optional[random.Random] = None,
) -> Dict[str, SwitchClock]:
    """Clocks synchronised to within ``max_offset`` seconds.

    Args:
        switches: Switch names.
        max_offset: Synchronisation error bound (Time4 reports microsecond
            accuracy; pass larger values to study degraded synchronisation).
        rng: Random source; offsets are uniform in ``[-max_offset, +max_offset]``.
    """
    if rng is None:
        rng = random.Random()
    return {
        name: SwitchClock(offset=rng.uniform(-max_offset, max_offset))
        for name in switches
    }
