"""Resilient execution: retries, idempotence, deadline abort and rollback.

The plain executors (:mod:`repro.controller.executor`) assume a perfect
control network: every FlowMod arrives, every barrier is answered.  Under a
:class:`repro.faults.FaultyChannel` that assumption fails silently -- a lost
reply leaks a barrier waiter forever and a lost FlowMod leaves a stale rule
in place with nobody noticing.  This module executes the same plans with
the failure handling a production controller would need:

* every FlowMod is paired with a per-switch barrier acting as its
  acknowledgement; an unanswered barrier is **retried** after a timeout
  with exponential backoff, resending the *same* FlowMod (same xid --
  :class:`~repro.controller.controller.ManagedSwitch` deduplicates, so a
  retry whose original actually arrived is harmless);
* a barrier that drains without the FlowMod taking effect (the switch-side
  apply-failure path) triggers an immediate resend;
* when a switch exhausts its retries or the overall **deadline** passes,
  the update is aborted and every switch touched so far is rolled back to
  its old rule -- mirroring the paper's Section VI note that Chronus
  recomputes when a switch cannot be scheduled, instead of leaving the
  network in a half-updated state.

With faults disabled the resilient executor is a drop-in replacement: it
sends exactly the messages of :func:`~repro.controller.executor.perform_round_update`
(``strategy="rounds"``) or :func:`~repro.controller.executor.perform_timed_update`
(``strategy="timed"``) in the same order, so the resulting traces are
identical -- a property pinned by ``tests/test_resilient.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.controller.controller import Controller
from repro.controller.executor import ExecutionTrace, _update_message
from repro.controller.messages import (
    ControlMessage,
    FlowModAdd,
    FlowModDelete,
    FlowModModify,
    next_xid,
)
from repro.core.instance import UpdateInstance
from repro.core.schedule import UpdateSchedule
from repro.network.graph import Node
from repro.simulator.dataplane import DataPlane
from repro.simulator.flowtable import FlowRule, Match
from repro.simulator.switch import HOST_PORT
from repro.trace.recorder import trace_event

ROUNDS = "rounds"
TIMED = "timed"

#: Version tag of the two-phase executor's shadow rules.
_TP_TAG = 2


@dataclass
class ResilientTrace(ExecutionTrace):
    """An :class:`ExecutionTrace` plus the resilience bookkeeping.

    Attributes:
        aborted: The update gave up (retries exhausted or deadline passed).
        abort_reason: Why, when ``aborted``.
        retries: FlowMod resends per switch (only switches that needed any).
        gave_up: Switches that exhausted their retry budget.
        rolled_back: Switches sent a rollback message during abort, in send
            order (newest update first).
    """

    aborted: bool = False
    abort_reason: str = ""
    retries: Dict[Node, int] = field(default_factory=dict)
    gave_up: List[Node] = field(default_factory=list)
    rolled_back: List[Node] = field(default_factory=list)

    @property
    def total_retries(self) -> int:
        return sum(self.retries.values())


@dataclass(frozen=True)
class _Item:
    """One switch's message within a batch."""

    node: Node
    message: ControlMessage
    planned: Optional[float] = None  # true-time execution point, if scheduled


@dataclass(frozen=True)
class _Batch:
    """Messages confirmed together; ``settle`` sleeps before the next batch."""

    items: List[_Item]
    settle: float = 0.0


class _ResilientRun:
    """Drives batches of (FlowMod, barrier) pairs with retry/abort handling."""

    def __init__(
        self,
        controller: Controller,
        sim,
        batches: List[_Batch],
        *,
        rollback: Callable[[_Item, bool], Optional[ControlMessage]],
        retry_timeout: float,
        backoff: float,
        max_retries: int,
        deadline: Optional[float],
        trace: ResilientTrace,
        finished_at_from_applies: bool,
        on_finish: Optional[Callable[[ResilientTrace], None]],
    ) -> None:
        self._controller = controller
        self._sim = sim
        self._batches = batches
        self._rollback = rollback
        self._retry_timeout = retry_timeout
        self._backoff = backoff
        self._max_retries = max_retries
        self._deadline = deadline
        self.trace = trace
        self._finished_at_from_applies = finished_at_from_applies
        self._on_finish = on_finish
        self._touched: List[_Item] = []
        self._current: Dict[Node, _Item] = {}
        self._pending: set = set()
        self._attempt: Dict[Node, int] = {}
        self._barrier_xid: Dict[Node, int] = {}
        self._timers: Dict[Node, object] = {}
        self._batch_index = 0
        self._done = False
        self._deadline_timer = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._deadline is not None:
            self._deadline_timer = self._sim.schedule_at(
                max(self._deadline, self._sim.now), self._on_deadline
            )
        self._run_batch(0)

    def _run_batch(self, index: int) -> None:
        if self._done:
            return
        if index >= len(self._batches):
            self._finish()
            return
        self._batch_index = index
        batch = self._batches[index]
        # Send every FlowMod first, then every barrier -- the exact message
        # order of the plain executors, so the channel's rng stream (and
        # hence the fault-free trace) is identical.
        for item in batch.items:
            self.trace.planned[item.node] = (
                item.planned if item.planned is not None else self._sim.now
            )
            self._touched.append(item)
            self._controller.send_flow_mod(item.node, item.message)
        self._current = {item.node: item for item in batch.items}
        self._pending = set(self._current)
        self._attempt = {node: 0 for node in self._pending}
        for item in batch.items:
            self._send_barrier(item.node)
        for item in batch.items:
            self._arm(item.node)

    def _finish(self) -> None:
        if self._done:
            return
        self._done = True
        self._cancel_deadline()
        self._harvest()
        if self._finished_at_from_applies:
            self.trace.finished_at = max(
                self.trace.applied.values(), default=self._sim.now
            )
        else:
            self.trace.finished_at = self._sim.now
        if self._on_finish is not None:
            self._on_finish(self.trace)

    # ------------------------------------------------------------------
    # acknowledgement plumbing
    # ------------------------------------------------------------------
    def _send_barrier(self, node: Node) -> None:
        self._barrier_xid[node] = self._controller.send_barrier(node, self._on_reply)

    def _arm(self, node: Node) -> None:
        item = self._current[node]
        offset = 0.0
        if item.planned is not None:
            # Scheduled FlowMods only complete (and ack) at execution time.
            offset = max(0.0, item.planned - self._sim.now)
        delay = offset + self._retry_timeout * (self._backoff ** self._attempt[node])
        self._timers[node] = self._sim.schedule_after(
            delay, lambda: self._on_timeout(node)
        )

    def _disarm(self, node: Node) -> None:
        handle = self._timers.pop(node, None)
        if handle is not None:
            self._sim.cancel(handle)

    def _on_reply(self, reply) -> None:
        node = reply.switch
        if self._done or node not in self._pending:
            return
        item = self._current[node]
        applied = self._controller.apply_time(node, item.message.xid)
        if applied is None:
            # The barrier drained but the install never took effect: the
            # switch-side apply failed.  Retry immediately.
            self._disarm(node)
            self._retry(node)
            return
        self._disarm(node)
        self._pending.discard(node)
        self.trace.applied[node] = applied
        lateness = self._controller.lateness(node, item.message.xid)
        if lateness is not None:
            self.trace.late[node] = lateness
        if not self._pending:
            batch = self._batches[self._batch_index]
            next_index = self._batch_index + 1
            if batch.settle > 0:
                self._sim.schedule_after(
                    batch.settle, lambda: self._run_batch(next_index)
                )
            else:
                self._run_batch(next_index)

    def _on_timeout(self, node: Node) -> None:
        if self._done or node not in self._pending:
            return
        self._timers.pop(node, None)
        # The reply is presumed lost: expire the waiter so the controller's
        # table doesn't leak, then go around again.
        self._controller.expire_barrier(self._barrier_xid[node])
        self._retry(node)

    def _retry(self, node: Node) -> None:
        self._attempt[node] += 1
        if self._attempt[node] > self._max_retries:
            self.trace.gave_up.append(node)
            self._abort(
                f"switch {node!r} unconfirmed after {self._max_retries} retries"
            )
            return
        if self._deadline is not None and self._sim.now >= self._deadline:
            self._abort("deadline passed during retry")
            return
        self.trace.retries[node] = self.trace.retries.get(node, 0) + 1
        trace_event("retry", switch=str(node), attempt=self._attempt[node])
        # Same xid: a retry whose original arrived is deduplicated by the
        # switch, so resending is always safe.
        self._controller.send_flow_mod(node, self._current[node].message)
        self._send_barrier(node)
        self._arm(node)

    # ------------------------------------------------------------------
    # abort path
    # ------------------------------------------------------------------
    def _on_deadline(self) -> None:
        if not self._done:
            self._abort("deadline passed")

    def _cancel_deadline(self) -> None:
        if self._deadline_timer is not None:
            self._sim.cancel(self._deadline_timer)
            self._deadline_timer = None

    def _abort(self, reason: str) -> None:
        if self._done:
            return
        self._done = True
        self._cancel_deadline()
        self.trace.aborted = True
        self.trace.abort_reason = reason
        for node in list(self._pending):
            self._disarm(node)
            xid = self._barrier_xid.get(node)
            if xid is not None:
                self._controller.expire_barrier(xid)
        self._harvest()
        # Roll back newest-first so dependent flips unwind in reverse order.
        for item in reversed(self._touched):
            applied = (
                self._controller.apply_time(item.node, item.message.xid) is not None
            )
            message = self._rollback(item, applied)
            if message is not None:
                self._controller.send_flow_mod(item.node, message)
                self.trace.rolled_back.append(item.node)
                trace_event("rollback", switch=str(item.node), reason=reason)
        self.trace.finished_at = self._sim.now
        if self._on_finish is not None:
            self._on_finish(self.trace)

    def _harvest(self) -> None:
        for item in self._touched:
            applied = self._controller.apply_time(item.node, item.message.xid)
            if applied is not None:
                self.trace.applied[item.node] = applied
                lateness = self._controller.lateness(item.node, item.message.xid)
                if lateness is not None:
                    self.trace.late[item.node] = lateness


# ----------------------------------------------------------------------
# rollback message builders
# ----------------------------------------------------------------------
def _restore_message(
    plane: DataPlane, instance: UpdateInstance, node: Node, applied: bool
) -> Optional[ControlMessage]:
    """The FlowMod returning ``node`` to its pre-update rule."""
    old_hop = instance.old_next_hop(node)
    rule_name = instance.flow.name
    if old_hop is None:
        # The update *installed* a fresh rule; removing it only makes sense
        # (and is only safe -- deletes of absent rules are errors) once the
        # install actually landed.
        if not applied:
            return None
        return FlowModDelete(xid=next_xid(), rule_name=rule_name)
    return FlowModModify(
        xid=next_xid(), rule_name=rule_name, out_port=plane.port_of(node, old_hop)
    )


def perform_resilient_update(
    controller: Controller,
    plane: DataPlane,
    instance: UpdateInstance,
    schedule: UpdateSchedule,
    *,
    strategy: str = ROUNDS,
    time_unit: float = 1.0,
    start_at: Optional[float] = None,
    lead_time: float = 0.5,
    retry_timeout: Optional[float] = None,
    backoff: float = 2.0,
    max_retries: int = 3,
    deadline: Optional[float] = None,
    on_finish: Optional[Callable[[ResilientTrace], None]] = None,
) -> ResilientTrace:
    """Execute ``schedule`` with acknowledgements, retries and rollback.

    Args:
        controller: The controller managing the plane's switches.
        plane: The data plane (for port lookups).
        instance: The update instance.
        schedule: The planned switch update times.
        strategy: ``"rounds"`` (Algorithm 5 pacing: per-step sends, barrier
            sync, one-time-unit sleeps) or ``"timed"`` (Time4: every FlowMod
            pre-programmed with its switch-local execution time).
        time_unit: Seconds per schedule step.
        start_at: True time of step ``t0`` (timed strategy; default now +
            ``lead_time``).
        lead_time: Shipping headroom for the timed strategy.
        retry_timeout: Base wait for a switch's acknowledgement before
            resending (default ``4 * time_unit``); grows by ``backoff`` per
            attempt.  Scheduled FlowMods wait until their execution time
            plus this.
        backoff: Exponential backoff factor.
        max_retries: Resends per switch before the update aborts.
        deadline: Absolute true time after which the update aborts and
            rolls back (``None``: no deadline).
        on_finish: Called with the trace on completion *or* abort.

    Returns:
        A :class:`ResilientTrace`; with faults disabled it matches the
        plain executor's trace exactly.
    """
    sim = plane.sim
    if retry_timeout is None:
        retry_timeout = 4.0 * time_unit
    trace = ResilientTrace()

    batches: List[_Batch] = []
    if strategy == ROUNDS:
        for _, nodes in schedule.rounds():
            items = [
                _Item(node=node, message=_update_message(plane, instance, node, None))
                for node in nodes
            ]
            batches.append(_Batch(items=items, settle=time_unit))
        finished_from_applies = False
    elif strategy == TIMED:
        if start_at is None:
            start_at = sim.now + lead_time
        items = []
        for node, step in schedule.items():
            when_true = start_at + (step - schedule.t0) * time_unit
            local = controller.managed(node).clock.local_time(when_true)
            items.append(
                _Item(
                    node=node,
                    message=_update_message(plane, instance, node, execute_at=local),
                    planned=when_true,
                )
            )
        batches.append(_Batch(items=items, settle=0.0))
        finished_from_applies = True
    else:
        raise ValueError(f"unknown strategy {strategy!r}")

    run = _ResilientRun(
        controller,
        sim,
        batches,
        rollback=lambda item, applied: _restore_message(
            plane, instance, item.node, applied
        ),
        retry_timeout=retry_timeout,
        backoff=backoff,
        max_retries=max_retries,
        deadline=deadline,
        trace=trace,
        finished_at_from_applies=finished_from_applies,
        on_finish=on_finish,
    )
    run.start()
    return trace


def perform_resilient_two_phase(
    controller: Controller,
    plane: DataPlane,
    instance: UpdateInstance,
    flip_at: float,
    *,
    retry_timeout: float = 4.0,
    backoff: float = 2.0,
    max_retries: int = 3,
    deadline: Optional[float] = None,
    on_finish: Optional[Callable[[ResilientTrace], None]] = None,
) -> ResilientTrace:
    """Two-phase update with acknowledged installs and a guarded flip.

    Batch 1 installs the version-tagged shadow configuration (traffic-
    invisible, so retries are free); once *every* install is confirmed,
    batch 2 ships the ingress flip scheduled for true time ``flip_at``.
    Abort rolls back: the flip is undone (untagged, old next hop) and every
    confirmed shadow rule deleted.

    Returns:
        A :class:`ResilientTrace`; ``applied[source]`` is the realised flip
        time.
    """
    sim = plane.sim
    trace = ResilientTrace()
    dst_prefix = str(instance.destination)
    rule_name = f"{instance.flow.name}#v2"

    install_items: List[_Item] = []
    for node, nxt in instance.new_config.items():
        rule = FlowRule(
            name=rule_name,
            match=Match(dst_prefix=dst_prefix, tag=_TP_TAG),
            out_port=plane.port_of(node, nxt),
            priority=1,
        )
        install_items.append(
            _Item(node=node, message=FlowModAdd(xid=next_xid(), rule=rule))
        )
    install_items.append(
        _Item(
            node=instance.destination,
            message=FlowModAdd(
                xid=next_xid(),
                rule=FlowRule(
                    name=rule_name,
                    match=Match(dst_prefix=dst_prefix, tag=_TP_TAG),
                    out_port=HOST_PORT,
                    priority=1,
                ),
            ),
        )
    )

    source = instance.source
    flip_local = controller.managed(source).clock.local_time(flip_at)
    flip = FlowModModify(
        xid=next_xid(),
        rule_name=instance.flow.name,
        out_port=plane.port_of(source, instance.new_next_hop(source)),
        set_tag=_TP_TAG,
        execute_at=flip_local,
    )
    flip_item = _Item(node=source, message=flip, planned=flip_at)

    def rollback(item: _Item, applied: bool) -> Optional[ControlMessage]:
        if item is flip_item:
            # Unflip the ingress: back to the old next hop, stamp removed.
            old_hop = instance.old_next_hop(source)
            return FlowModModify(
                xid=next_xid(),
                rule_name=instance.flow.name,
                out_port=plane.port_of(source, old_hop),
                set_tag=None,
            )
        if not applied:
            return None  # the shadow rule never landed; nothing to delete
        return FlowModDelete(xid=next_xid(), rule_name=rule_name)

    run = _ResilientRun(
        controller,
        sim,
        [_Batch(items=install_items), _Batch(items=[flip_item])],
        rollback=rollback,
        retry_timeout=retry_timeout,
        backoff=backoff,
        max_retries=max_retries,
        deadline=deadline,
        trace=trace,
        finished_at_from_applies=True,
        on_finish=on_finish,
    )
    run.start()
    return trace
