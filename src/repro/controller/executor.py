"""Algorithm 5: performing the timed network update.

Two execution strategies are provided:

* :func:`perform_timed_update` -- the Time4 strategy Chronus targets: every
  FlowMod carries its scheduled switch-local execution time and is shipped
  ahead of time; rules flip at (clock-offset-accurate) data-plane times.
* :func:`perform_round_update` -- the paper's prototype strategy
  (Algorithm 5 verbatim) usable by every protocol: per time step, send the
  step's update messages, send barrier requests, wait for all barrier
  replies, sleep one time unit, proceed.  With OR plans this reproduces the
  asynchronous round behaviour whose congestion Fig. 6 shows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.controller.controller import Controller
from repro.controller.messages import (
    FlowModAdd,
    FlowModModify,
    next_xid,
)
from repro.core.instance import UpdateInstance
from repro.core.schedule import UpdateSchedule
from repro.network.graph import Node
from repro.simulator.dataplane import DataPlane
from repro.simulator.flowtable import FlowRule, Match
from repro.trace.recorder import trace_event


@dataclass
class ExecutionTrace:
    """What actually happened on the wire and in the tables.

    Attributes:
        planned: Intended true-time execution point per switch.
        applied: Actual true time each switch's rule flip took effect.
        late: Seconds by which a scheduled (Time4) FlowMod arrived *after*
            its execution time, per switch -- the switch clamps execution to
            arrival, so these entries attribute ``max_skew`` to control-
            channel lateness rather than clock error.
        finished_at: Time the final barrier reply (or last apply) landed.
    """

    planned: Dict[Node, float] = field(default_factory=dict)
    applied: Dict[Node, float] = field(default_factory=dict)
    late: Dict[Node, float] = field(default_factory=dict)
    finished_at: Optional[float] = None

    @property
    def max_skew(self) -> float:
        """Largest |applied - planned| across switches."""
        gaps = [
            abs(self.applied[node] - when)
            for node, when in self.planned.items()
            if node in self.applied
        ]
        return max(gaps, default=0.0)


def _update_message(
    plane: DataPlane, instance: UpdateInstance, node: Node, execute_at: Optional[float]
):
    """The FlowMod that moves ``node`` to its new rule."""
    new_hop = instance.new_next_hop(node)
    if new_hop is None:
        raise ValueError(f"switch {node!r} has no new rule")
    port = plane.port_of(node, new_hop)
    rule_name = instance.flow.name
    if instance.old_next_hop(node) is not None:
        return FlowModModify(
            xid=next_xid(), rule_name=rule_name, out_port=port, execute_at=execute_at
        )
    rule = FlowRule(
        name=rule_name,
        match=Match(dst_prefix=str(instance.destination)),
        out_port=port,
    )
    return FlowModAdd(xid=next_xid(), rule=rule, execute_at=execute_at)


def perform_timed_update(
    controller: Controller,
    plane: DataPlane,
    instance: UpdateInstance,
    schedule: UpdateSchedule,
    time_unit: float = 1.0,
    start_at: Optional[float] = None,
    lead_time: float = 0.5,
    poll_interval: Optional[float] = None,
) -> ExecutionTrace:
    """Ship scheduled FlowMods ahead of time; switches fire them on their clocks.

    Args:
        controller: The controller managing the plane's switches.
        plane: The data plane (for port lookups).
        instance: The update instance.
        schedule: Timed update schedule (integer steps).
        time_unit: Seconds per schedule step.
        start_at: True time of schedule step ``t0`` (default: now +
            ``lead_time`` so messages arrive before their execution times).
        lead_time: Shipping headroom in seconds.
        poll_interval: Re-poll period while FlowMods are still pending
            (default ``max(lead_time, time_unit) / 2``).

    Returns:
        An :class:`ExecutionTrace` (``applied`` fills in as the simulation
        runs; query it after ``sim.run``).
    """
    sim = plane.sim
    if start_at is None:
        start_at = sim.now + lead_time
    if poll_interval is None:
        poll_interval = max(lead_time, time_unit) / 2 or 0.5
    trace = ExecutionTrace()
    xids: Dict[Node, int] = {}
    for node, step in schedule.items():
        when_true = start_at + (step - schedule.t0) * time_unit
        trace.planned[node] = when_true
        local = controller.managed(node).clock.local_time(when_true)
        message = _update_message(plane, instance, node, execute_at=local)
        xids[node] = message.xid
        controller.send_flow_mod(node, message)

    def harvest() -> None:
        # A switch whose delivery or execution runs past its planned time
        # (control-channel delay beyond the lead time, clock skew, a slow
        # pipeline) must not be dropped from the trace: keep polling until
        # every xid has resolved, then pin ``finished_at`` to the last
        # actual apply instead of the first harvest's wall clock.
        pending = False
        for node, xid in xids.items():
            if node in trace.applied:
                continue
            applied = controller.apply_time(node, xid)
            if applied is not None:
                trace.applied[node] = applied
                trace_event(
                    "apply",
                    switch=str(node),
                    planned=round(trace.planned[node], 6),
                    applied=round(applied, 6),
                )
                lateness = controller.lateness(node, xid)
                if lateness is not None:
                    trace.late[node] = lateness
                    trace_event(
                        "late", switch=str(node), seconds=round(lateness, 6)
                    )
            else:
                pending = True
        if pending:
            sim.schedule_after(poll_interval, harvest)
        else:
            trace.finished_at = max(trace.applied.values(), default=sim.now)

    last = max(trace.planned.values(), default=sim.now)
    sim.schedule_at(last + lead_time, harvest)
    return trace


def perform_round_update(
    controller: Controller,
    plane: DataPlane,
    instance: UpdateInstance,
    schedule: UpdateSchedule,
    time_unit: float = 1.0,
    on_finish: Optional[Callable[[ExecutionTrace], None]] = None,
) -> ExecutionTrace:
    """Algorithm 5: paced rounds with barriers and one-time-unit sleeps.

    For each schedule time step (in order): send the step's update messages,
    send a barrier request to each touched switch, wait for all barrier
    replies, sleep one time unit, continue.  Rule flips happen after the
    switches' random installation latencies, so consecutive steps stay
    ordered (barriers) but switches within a step are asynchronous.

    Returns:
        The (eventually filled) :class:`ExecutionTrace`.
    """
    sim = plane.sim
    trace = ExecutionTrace()
    rounds: List[Tuple[int, Tuple[Node, ...]]] = schedule.rounds()
    xids: Dict[Node, int] = {}

    def run_round(index: int) -> None:
        if index >= len(rounds):
            for node, xid in xids.items():
                applied = controller.apply_time(node, xid)
                if applied is not None:
                    trace.applied[node] = applied
                    trace_event(
                        "apply",
                        switch=str(node),
                        planned=round(trace.planned[node], 6),
                        applied=round(applied, 6),
                    )
            trace.finished_at = sim.now
            if on_finish is not None:
                on_finish(trace)
            return
        step, nodes = rounds[index]
        outstanding = {node: False for node in nodes}
        for node in nodes:
            trace.planned[node] = sim.now
            message = _update_message(plane, instance, node, execute_at=None)
            xids[node] = message.xid
            controller.send_flow_mod(node, message)

        def on_reply(reply, node=None) -> None:
            outstanding[reply.switch] = True
            if all(outstanding.values()):
                # Sleep one time unit, then the next round (line 9).
                sim.schedule_after(time_unit, lambda: run_round(index + 1))

        for node in nodes:
            controller.send_barrier(node, on_reply)

    run_round(0)
    return trace
