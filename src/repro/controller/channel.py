"""The asynchronous controller-to-switch channel.

Rule updates "traverse an asynchronous network and may arrive out-of-order"
*across switches*; each individual controller<->switch connection is a TCP
stream, so messages to (and from) one switch are delivered in the order
they were sent -- the in-order semantics OpenFlow barriers rely on.
Moreover, switches take wildly varying times to *apply* a FlowMod once it
arrives (Dionysus measured medians around 50 ms with tails beyond a
second).  The channel composes a per-message network latency with a
per-switch rule-installation latency, both drawn from pluggable delay
models, and enforces per-connection FIFO delivery: a message sampling a
short latency still arrives no earlier than the previously sent message on
the same connection.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Optional

from repro.simulator.engine import Simulator


class DelayModel:
    """Interface: draw one latency in seconds."""

    def sample(self, rng: random.Random) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantDelayModel(DelayModel):
    """Always ``value`` seconds."""

    value: float = 0.001

    def sample(self, rng: random.Random) -> float:
        return self.value


@dataclass(frozen=True)
class UniformDelayModel(DelayModel):
    """Uniform in ``[low, high]`` seconds."""

    low: float = 0.001
    high: float = 0.050

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


@dataclass(frozen=True)
class DionysusDelayModel(DelayModel):
    """Log-normal rule-installation latency fit to the Dionysus data.

    The paper simulates per-round switch asynchrony with "a random number
    from the data of [9]" (Jin et al., SIGCOMM'14), whose measurements show
    a ~50 ms median with a long tail reaching past one second.  A log-normal
    with ``median`` and ``sigma`` reproduces that shape; samples are capped
    to keep single outliers from dominating short experiments.
    """

    median: float = 0.050
    sigma: float = 1.0
    cap: float = 2.0

    def sample(self, rng: random.Random) -> float:
        value = self.median * math.exp(self.sigma * rng.gauss(0.0, 1.0))
        return min(value, self.cap)


@dataclass(frozen=True)
class StepDelayModel(DelayModel):
    """Latency of 0..``max_steps`` whole time steps of ``time_unit`` seconds.

    Keeps realised update times on the analytic integer grid, so a schedule
    can be read back exactly from an execution trace (the differential
    replay and the faults ablation both rely on this) while still
    exercising asynchronous within-round skew.
    """

    time_unit: float
    max_steps: int

    def sample(self, rng: random.Random) -> float:
        if self.max_steps <= 0:
            return 0.0
        return rng.randint(0, self.max_steps) * self.time_unit


class ControlChannel:
    """Delivers control messages with network + installation latency.

    Args:
        sim: The simulator.
        network_delay: Latency of the control network per message.
        install_delay: Per-FlowMod switch processing latency.
        rng: Random source (deterministic experiments pass a seeded one).
    """

    def __init__(
        self,
        sim: Simulator,
        network_delay: Optional[DelayModel] = None,
        install_delay: Optional[DelayModel] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self._sim = sim
        self.network_delay = network_delay or ConstantDelayModel(0.001)
        self.install_delay = install_delay or DionysusDelayModel()
        self._rng = rng if rng is not None else random.Random()
        self._last_delivery: Dict[Hashable, float] = {}

    def send(self, deliver: Callable[[], None], key: Optional[Hashable] = None) -> float:
        """Deliver a message after network latency; returns the delay until delivery.

        Args:
            deliver: Called when the message arrives.
            key: FIFO stream identity (one per TCP connection direction,
                e.g. ``("to", switch)``).  Messages sharing a key never
                overtake each other: each is delivered at
                ``max(sampled arrival, last delivery on that stream)``.
                ``None`` keeps the legacy independent-latency behaviour.
        """
        latency = self.network_delay.sample(self._rng)
        arrival = self._sim.now + latency
        if key is not None:
            self._prune()
            arrival = max(arrival, self._last_delivery.get(key, arrival))
            self._last_delivery[key] = arrival
        self._sim.schedule_at(arrival, deliver)
        return arrival - self._sim.now

    def _prune(self) -> None:
        """Forget streams whose FIFO floor lies in the simulator's past.

        A floor at or before ``now`` can never constrain a future message
        (every sampled arrival is already ``>= now``), so dropping those
        entries is behaviour-preserving.  Without this, a long-running
        service leaks one entry per stream ever used -- and a stream key
        reused after a quiet spell would be ordered behind traffic that
        drained ages ago.
        """
        now = self._sim.now
        stale = [key for key, floor in self._last_delivery.items() if floor <= now]
        for key in stale:
            del self._last_delivery[key]

    def reset(self) -> None:
        """Drop all per-stream FIFO floors (e.g. on a topology change).

        Pending deliveries already handed to the simulator are not
        recalled; only the ordering floors for *future* sends are
        cleared, as if every stream were a fresh connection.
        """
        self._last_delivery.clear()

    def draw_install_latency(self) -> float:
        """One switch-side rule-installation latency."""
        return self.install_delay.sample(self._rng)
