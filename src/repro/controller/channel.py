"""The asynchronous controller-to-switch channel.

Rule updates "traverse an asynchronous network and may arrive out-of-order";
moreover, switches take wildly varying times to *apply* a FlowMod once it
arrives (Dionysus measured medians around 50 ms with tails beyond a
second).  The channel composes a per-message network latency with a
per-switch rule-installation latency, both drawn from pluggable delay
models.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.simulator.engine import Simulator


class DelayModel:
    """Interface: draw one latency in seconds."""

    def sample(self, rng: random.Random) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantDelayModel(DelayModel):
    """Always ``value`` seconds."""

    value: float = 0.001

    def sample(self, rng: random.Random) -> float:
        return self.value


@dataclass(frozen=True)
class UniformDelayModel(DelayModel):
    """Uniform in ``[low, high]`` seconds."""

    low: float = 0.001
    high: float = 0.050

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


@dataclass(frozen=True)
class DionysusDelayModel(DelayModel):
    """Log-normal rule-installation latency fit to the Dionysus data.

    The paper simulates per-round switch asynchrony with "a random number
    from the data of [9]" (Jin et al., SIGCOMM'14), whose measurements show
    a ~50 ms median with a long tail reaching past one second.  A log-normal
    with ``median`` and ``sigma`` reproduces that shape; samples are capped
    to keep single outliers from dominating short experiments.
    """

    median: float = 0.050
    sigma: float = 1.0
    cap: float = 2.0

    def sample(self, rng: random.Random) -> float:
        value = self.median * math.exp(self.sigma * rng.gauss(0.0, 1.0))
        return min(value, self.cap)


class ControlChannel:
    """Delivers control messages with network + installation latency.

    Args:
        sim: The simulator.
        network_delay: Latency of the control network per message.
        install_delay: Per-FlowMod switch processing latency.
        rng: Random source (deterministic experiments pass a seeded one).
    """

    def __init__(
        self,
        sim: Simulator,
        network_delay: Optional[DelayModel] = None,
        install_delay: Optional[DelayModel] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self._sim = sim
        self.network_delay = network_delay or ConstantDelayModel(0.001)
        self.install_delay = install_delay or DionysusDelayModel()
        self._rng = rng if rng is not None else random.Random()

    def send(self, deliver: Callable[[], None]) -> float:
        """Deliver a message after network latency; returns the latency."""
        latency = self.network_delay.sample(self._rng)
        self._sim.schedule_after(latency, deliver)
        return latency

    def draw_install_latency(self) -> float:
        """One switch-side rule-installation latency."""
        return self.install_delay.sample(self._rng)
