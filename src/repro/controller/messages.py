"""OpenFlow-style control messages.

Only the slice of OpenFlow the paper exercises: the three FlowMod flavours
(add / modify-action / delete), barrier request/reply (``OFBarrierRequest``
and ``OFBarrierReply`` in Floodlight), and an optional *execution time* on
FlowMods -- the Time4-style scheduled-update extension that Chronus relies
on ("updates can be scheduled accurately on the order of one microsecond").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.simulator.flowtable import FlowRule

_xids = itertools.count(1)


def next_xid() -> int:
    """Fresh OpenFlow transaction id."""
    return next(_xids)


@dataclass(frozen=True)
class ControlMessage:
    """Base class: every message carries a transaction id."""

    xid: int


@dataclass(frozen=True)
class FlowModAdd(ControlMessage):
    """Install a new rule, optionally at a scheduled local time."""

    rule: FlowRule = None  # type: ignore[assignment]
    execute_at: Optional[float] = None  # switch-local time (Time4)


@dataclass(frozen=True)
class FlowModModify(ControlMessage):
    """Rewrite an existing rule's action in place."""

    rule_name: str = ""
    out_port: Optional[int] = None
    set_tag: Optional[int] = None
    execute_at: Optional[float] = None


@dataclass(frozen=True)
class FlowModDelete(ControlMessage):
    """Remove a rule."""

    rule_name: str = ""
    execute_at: Optional[float] = None


@dataclass(frozen=True)
class BarrierRequest(ControlMessage):
    """Flush marker: the switch replies once all prior messages finished.

    Per the OpenFlow spec, a barrier reply is sent only after every message
    received before the barrier has been fully processed -- including
    *scheduled* FlowMods, which complete at their execution time.
    """


@dataclass(frozen=True)
class BarrierReply(ControlMessage):
    """The switch's completion acknowledgement for a barrier request."""

    switch: str = ""
