"""SDN control plane: controller, asynchronous channel, clocks, executors.

The Floodlight-controller analogue.  The control channel delivers FlowMods
with per-switch random latencies (the source of the out-of-order arrivals
that motivate the paper); barrier request/reply pairs provide the
round-synchronisation primitive of Algorithm 5; per-switch clocks with
bounded offset model Time4-style scheduled updates, letting Chronus fire
rule changes at precise data-plane times.
"""

from repro.controller.messages import (
    BarrierReply,
    BarrierRequest,
    FlowModAdd,
    FlowModDelete,
    FlowModModify,
)
from repro.controller.channel import (
    ConstantDelayModel,
    ControlChannel,
    DionysusDelayModel,
    StepDelayModel,
    UniformDelayModel,
)
from repro.controller.clock import SwitchClock, synchronized_clocks
from repro.controller.controller import Controller, ManagedSwitch
from repro.controller.executor import (
    ExecutionTrace,
    perform_timed_update,
    perform_round_update,
)
from repro.controller.resilient import (
    ResilientTrace,
    perform_resilient_two_phase,
    perform_resilient_update,
)

__all__ = [
    "BarrierReply",
    "BarrierRequest",
    "FlowModAdd",
    "FlowModDelete",
    "FlowModModify",
    "ConstantDelayModel",
    "ControlChannel",
    "DionysusDelayModel",
    "UniformDelayModel",
    "SwitchClock",
    "synchronized_clocks",
    "Controller",
    "ManagedSwitch",
    "ExecutionTrace",
    "ResilientTrace",
    "perform_timed_update",
    "perform_round_update",
    "perform_resilient_update",
    "perform_resilient_two_phase",
]
