"""A control channel that loses and duplicates messages on plan.

:class:`FaultyChannel` is a drop-in :class:`~repro.controller.channel.ControlChannel`
whose ``send`` consults a :class:`~repro.faults.plan.FaultPlan` before
delivering.  Both directions run through it -- FlowMods and barrier
requests on the way down, barrier replies on the way up -- so reply loss
(the case that leaks ``Controller._barrier_waiters`` without the resilient
executor's expiry path) is exercised too.

Loss and duplication leave per-switch FIFO semantics intact: a dropped
message simply never arrives (it does not constrain later deliveries --
the model is the switch agent connection resetting, not a TCP segment
vanishing), and a duplicate is a second FIFO-ordered delivery.
"""

from __future__ import annotations

import random
from typing import Callable, Hashable, Optional

from repro.controller.channel import ControlChannel, DelayModel
from repro.faults.plan import FaultPlan
from repro.simulator.engine import Simulator


class FaultyChannel(ControlChannel):
    """Delivers control messages subject to a deterministic fault plan."""

    def __init__(
        self,
        sim: Simulator,
        plan: FaultPlan,
        network_delay: Optional[DelayModel] = None,
        install_delay: Optional[DelayModel] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(sim, network_delay=network_delay, install_delay=install_delay, rng=rng)
        self.plan = plan

    def send(self, deliver: Callable[[], None], key: Optional[Hashable] = None) -> float:
        if self.plan.drop_message():
            # The message vanishes; report the latency it would have had so
            # callers that budget on the return value stay well-behaved.
            return self.network_delay.sample(self._rng)
        latency = super().send(deliver, key)
        if self.plan.duplicate_message():
            # A second, independently delayed (but still FIFO) delivery.
            super().send(deliver, key)
        return latency
