"""Deterministic fault plans for the control plane.

Chronus's guarantees are proved over a perfect control network, but the
Time4 substrate it leans on only promises *bounded* inaccuracy (Mizrahi &
Moses, "Time4: Time for SDN"): clock sync has an error bound, switches have
latency tails, and the control channel is a real network.  A
:class:`FaultPlan` makes every one of those degradations injectable and --
crucially -- deterministic from a seed, so a run that violates consistency
reproduces bit-for-bit.

Fault axes (all off by default):

* **Message loss / duplication** -- control messages (both directions)
  vanish or are delivered twice; see :class:`repro.faults.FaultyChannel`.
* **Apply failure** -- a switch processes a FlowMod but the install fails
  (OpenFlow's ``OFPT_ERROR`` path): no table change, barriers proceed.
* **Crash-stop** -- a switch agent dies at a drawn instant and never
  processes another message (barriers go unanswered forever).
* **Stragglers** -- a subset of switches multiply their rule-installation
  latency, modelling the heavy tail beyond the Dionysus data.
* **Clock drift** -- per-switch clock offsets beyond the advertised sync
  bound, directly skewing Time4 scheduled execution.

Per-switch fates (crashed? straggler? drift offset?) hash the switch *name*
into the seed, so they do not depend on wiring order; message-level draws
consume a dedicated stream in send order, which the simulator makes
deterministic.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

#: Stream separators so the per-purpose RNGs never share a sequence.
_MESSAGE_STREAM = 0x6D65_7373
_SWITCH_STREAM = 0x7357_6974


@dataclass(frozen=True)
class FaultSpec:
    """The knobs of one fault model (all probabilities per message/switch).

    Attributes:
        drop_rate: Probability a control message is lost in transit.
        duplicate_rate: Probability a delivered message arrives twice.
        apply_failure_rate: Probability one FlowMod install fails on the
            switch (the message still counts as processed).
        crash_rate: Probability a switch crash-stops during the run.
        crash_window: True-time interval the crash instant is drawn from.
        straggler_rate: Probability a switch is a straggler.
        straggler_factor: Installation-latency multiplier of stragglers.
        drift_rate: Probability a switch's clock drifts beyond the sync
            bound.
        drift_bound: Magnitude bound (seconds) of the extra offset.
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    apply_failure_rate: float = 0.0
    crash_rate: float = 0.0
    crash_window: Tuple[float, float] = (0.0, 30.0)
    straggler_rate: float = 0.0
    straggler_factor: float = 8.0
    drift_rate: float = 0.0
    drift_bound: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "drop_rate",
            "duplicate_rate",
            "apply_failure_rate",
            "crash_rate",
            "straggler_rate",
            "drift_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")
        if self.crash_window[0] > self.crash_window[1]:
            raise ValueError("crash_window must be a (lo, hi) interval")

    @property
    def benign(self) -> bool:
        """True when no fault can ever fire."""
        return (
            self.drop_rate == 0.0
            and self.duplicate_rate == 0.0
            and self.apply_failure_rate == 0.0
            and self.crash_rate == 0.0
            and self.straggler_rate == 0.0
            and self.drift_rate == 0.0
        )

    def scaled(self, severity: float) -> "FaultSpec":
        """The same fault mix with every probability scaled by ``severity``.

        Magnitudes (straggler factor, drift bound, crash window) are left
        alone -- severity moves *how often* faults fire, not their size --
        and scaled probabilities are clamped to 1.
        """
        if severity < 0:
            raise ValueError("severity must be non-negative")

        def clamp(p: float) -> float:
            return min(1.0, p * severity)

        return replace(
            self,
            drop_rate=clamp(self.drop_rate),
            duplicate_rate=clamp(self.duplicate_rate),
            apply_failure_rate=clamp(self.apply_failure_rate),
            crash_rate=clamp(self.crash_rate),
            straggler_rate=clamp(self.straggler_rate),
            drift_rate=clamp(self.drift_rate),
        )


def severity_spec(
    severity: float,
    crash_window: Tuple[float, float] = (0.0, 30.0),
    drift_bound: float = 0.0,
) -> FaultSpec:
    """The canonical ablation axis: one scalar degrading every channel.

    At severity 1 roughly one in five messages is lost, one in ten
    duplicated, one in ten installs fails, and one in twenty switches
    straggles; crash-stop stays rarer (one in forty) because a single crash
    usually ends the run.  ``severity 0`` is the perfect network.
    """
    base = FaultSpec(
        drop_rate=0.20,
        duplicate_rate=0.10,
        apply_failure_rate=0.10,
        crash_rate=0.025,
        crash_window=crash_window,
        straggler_rate=0.05,
        straggler_factor=8.0,
        drift_rate=0.25 if drift_bound > 0 else 0.0,
        drift_bound=drift_bound,
    )
    return base.scaled(severity)


@dataclass
class FaultStats:
    """What the plan actually did to one run."""

    dropped: int = 0
    duplicated: int = 0
    apply_failures: int = 0
    crashed: List[str] = field(default_factory=list)
    stragglers: List[str] = field(default_factory=list)
    drifted: List[str] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"dropped={self.dropped} duplicated={self.duplicated} "
            f"apply_failures={self.apply_failures} "
            f"crashed={sorted(self.crashed)} stragglers={sorted(self.stragglers)} "
            f"drifted={sorted(self.drifted)}"
        )


class SwitchFaultState:
    """One switch's drawn fate plus its live fault draws.

    Duck-typed against :class:`repro.controller.controller.ManagedSwitch`'s
    ``faults`` hook: the switch asks ``crashed(now)`` before processing any
    message, ``apply_fails()`` at each install, and ``stretch_install``
    around each drawn latency.
    """

    def __init__(self, name: str, spec: FaultSpec, seed: int, stats: FaultStats) -> None:
        self.name = name
        self.spec = spec
        self._stats = stats
        rng = random.Random(seed)
        self.crashed_at: Optional[float] = None
        if rng.random() < spec.crash_rate:
            self.crashed_at = rng.uniform(*spec.crash_window)
            stats.crashed.append(name)
        self.install_factor = 1.0
        if rng.random() < spec.straggler_rate:
            self.install_factor = spec.straggler_factor
            stats.stragglers.append(name)
        self.drift = 0.0
        if rng.random() < spec.drift_rate and spec.drift_bound > 0:
            magnitude = rng.uniform(0.25, 1.0) * spec.drift_bound
            self.drift = magnitude if rng.random() < 0.5 else -magnitude
            stats.drifted.append(name)
        self._apply_rng = random.Random(seed ^ 0x5A5A5A5A)

    def crashed(self, now: float) -> bool:
        return self.crashed_at is not None and now >= self.crashed_at

    def apply_fails(self) -> bool:
        if self.spec.apply_failure_rate <= 0.0:
            return False
        failed = self._apply_rng.random() < self.spec.apply_failure_rate
        if failed:
            self._stats.apply_failures += 1
        return failed

    def stretch_install(self, latency: float) -> float:
        return latency * self.install_factor


class FaultPlan:
    """All fault state of one run, derived from ``(spec, seed)`` alone.

    Usage::

        plan = FaultPlan(severity_spec(0.5), seed=7)
        channel = FaultyChannel(sim, plan, ...)
        controller = Controller(sim, channel, clocks)
        ...controller.manage(every switch)...
        plan.wire(controller)   # attach per-switch fates + drifted clocks
    """

    def __init__(self, spec: FaultSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = seed
        self.stats = FaultStats()
        self._message_rng = random.Random(seed ^ _MESSAGE_STREAM)
        self._states: Dict[str, SwitchFaultState] = {}

    # ------------------------------------------------------------------
    # channel-level draws (consumed by FaultyChannel, in send order)
    # ------------------------------------------------------------------
    def drop_message(self) -> bool:
        if self.spec.drop_rate <= 0.0:
            return False
        dropped = self._message_rng.random() < self.spec.drop_rate
        if dropped:
            self.stats.dropped += 1
        return dropped

    def duplicate_message(self) -> bool:
        if self.spec.duplicate_rate <= 0.0:
            return False
        duplicated = self._message_rng.random() < self.spec.duplicate_rate
        if duplicated:
            self.stats.duplicated += 1
        return duplicated

    # ------------------------------------------------------------------
    # switch-level fates
    # ------------------------------------------------------------------
    def switch_state(self, name: str) -> SwitchFaultState:
        """The (memoised) fault state of one switch, stable in ``name``."""
        state = self._states.get(name)
        if state is None:
            per_switch = self.seed ^ _SWITCH_STREAM ^ zlib.crc32(name.encode())
            state = SwitchFaultState(name, self.spec, per_switch, self.stats)
            self._states[name] = state
        return state

    def wire(self, controller) -> None:
        """Attach fault state (and clock drift) to every managed switch."""
        from repro.controller.clock import SwitchClock

        for name in controller.switch_names:
            managed = controller.managed(name)
            state = self.switch_state(name)
            managed.faults = state
            if state.drift:
                managed.clock = SwitchClock(offset=managed.clock.offset + state.drift)
