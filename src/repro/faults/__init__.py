"""Fault injection for the control plane (the robustness testbed).

The paper's model assumes FlowMods arrive and fire on time; this package
makes every assumption breakable -- deterministically, from a seed -- so the
executors' resilience (retries, idempotence, deadline rollback; see
:mod:`repro.controller.resilient`) and the protocols' degradation curves
(:mod:`repro.experiments.faults_ablation`) become measurable.

* :class:`FaultSpec` / :func:`severity_spec` -- the fault mix and the
  one-scalar ablation axis;
* :class:`FaultPlan` -- all of one run's fault state, reproducible from
  ``(spec, seed)``;
* :class:`FaultyChannel` -- a control channel that loses/duplicates
  messages on plan;
* :class:`SwitchFaultState` -- one switch's drawn fate (crash-stop instant,
  straggler factor, clock drift, apply-failure stream).
"""

from repro.faults.channel import FaultyChannel
from repro.faults.plan import (
    FaultPlan,
    FaultSpec,
    FaultStats,
    SwitchFaultState,
    severity_spec,
)

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "FaultStats",
    "FaultyChannel",
    "SwitchFaultState",
    "severity_spec",
]
