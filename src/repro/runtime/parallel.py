"""Process-pool fan-out for instance sweeps.

The evaluation harness is embarrassingly parallel: every update instance
is generated from its own integer seed and evaluated independently, so a
sweep is a pure ``map`` over self-contained work items.  This module
provides the one primitive the experiments need -- :class:`ParallelRunner`
-- with the properties the harness relies on:

* **Determinism.**  The runner never re-seeds or re-orders anything: the
  caller derives each item's seed from ``(base_seed, instance_index)``
  before submission, workers receive the finished items, and results come
  back in submission order.  A parallel run is therefore byte-identical
  to the serial run, whatever the worker count or chunking.
* **Graceful degradation.**  ``max_workers=1`` (the default everywhere),
  a platform without ``fork``, or a work function the pool cannot pickle
  all fall back to plain in-process execution -- same results, no pool.
* **Chunking.**  Items are submitted in contiguous chunks, amortising
  process-pool IPC over many small instances.
* **Min-work threshold.**  The first item is always evaluated in-process
  and timed; when the projected total work cannot amortise the pool's
  startup cost the remaining items run serially too.  Tiny sweeps (the
  quick bench's 24 instances recorded a 0.83x "speedup" from pool
  overhead) thus never pay for a pool, and because fallback preserves
  item order the records stay byte-identical either way.  Workers are
  additionally capped at :func:`available_cpus` -- on a single-core (or
  affinity-restricted) box a pool only adds fork and IPC cost, so the
  runner stays in-process no matter how much work there is.

Work functions must be module-level (picklable) and must not rely on
mutable global state; per-item randomness must come from the item's seed.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

Item = TypeVar("Item")
Result = TypeVar("Result")


def available_cpus() -> int:
    """CPUs this process may use (affinity-aware where supported)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def fork_available() -> bool:
    """Whether the platform supports the ``fork`` start method.

    ``fork`` is what makes pool workers cheap enough for sub-second work
    items; without it (Windows, some macOS setups) the runner stays
    in-process rather than paying spawn-and-reimport per worker.
    """
    return "fork" in multiprocessing.get_all_start_methods()


def _run_chunk(fn: Callable[[Item], Result], chunk: Sequence[Item]) -> List[Result]:
    return [fn(item) for item in chunk]


def _run_chunk_collecting(
    fn: Callable[[Item], Result],
    chunk: Sequence[Item],
    prepare: Callable[[], None],
    collect: Callable[[], object],
):
    """Like :func:`_run_chunk`, bracketed by worker-state hooks.

    ``prepare`` drains fork-inherited profiling/trace state so the
    parent's data is never shipped back twice; ``collect`` returns the
    chunk's own contribution alongside its results.
    """
    prepare()
    results = [fn(item) for item in chunk]
    return results, collect()


def _collection_hooks():
    """(prepare, collect, merge) when perf/trace state must cross the pool.

    ``fork`` pool workers accumulate :mod:`repro.perf` spans and trace
    records in their own process globals; without collection they die
    with the worker and the parent's report only shows its in-process
    first-item probe.  The hooks live in :mod:`repro.trace.worker`; this
    returns ``None`` (zero overhead) when neither registry is live.
    """
    try:
        from repro.trace.worker import collection_hooks
    except ImportError:  # pragma: no cover - trace layer always ships
        return None
    return collection_hooks()


@dataclass
class ParallelRunner:
    """Ordered, deterministic ``map`` over a process pool.

    Args:
        max_workers: Worker processes; ``1`` (or fewer) runs in-process.
            The effective count is capped at :func:`available_cpus`.
        chunk_size: Items per pool task; default splits the items into
            about four chunks per worker so stragglers rebalance.
        serial_threshold_seconds: Minimum projected total work (first
            item's wall time times the remaining item count) below which
            the pool is skipped and everything runs in-process; ``0``
            disables the heuristic and always uses the pool.

    Example:
        >>> runner = ParallelRunner(max_workers=1)
        >>> runner.map(abs, [-2, -1, 3])
        [2, 1, 3]
    """

    max_workers: int = 1
    chunk_size: Optional[int] = None
    serial_threshold_seconds: float = 0.5

    def map(self, fn: Callable[[Item], Result], items: Iterable[Item]) -> List[Result]:
        """Apply ``fn`` to every item, returning results in item order.

        Falls back to in-process execution when the pool is pointless
        (``max_workers <= 1``, a single usable CPU, one item, projected
        work below the min-work threshold) or unavailable (no ``fork``,
        unpicklable work function).  Exceptions raised by ``fn`` itself
        propagate unchanged in both modes.
        """
        work = list(items)
        # A pool can only help with cores to spread over: on a single-core
        # box (or affinity-restricted container) extra workers just add
        # fork + IPC cost on top of the same serial compute.
        workers = min(self.max_workers, available_cpus())
        if workers <= 1 or len(work) <= 1 or not fork_available():
            return [fn(item) for item in work]
        if not _picklable(fn):
            return [fn(item) for item in work]
        # Min-work probe: run (and time) the first item here.  Per-item
        # cost is unknowable up front, and a pool under ~half a second of
        # total work costs more in fork + IPC than it buys.
        head: List[Result] = []
        rest: Sequence[Item] = work
        if self.serial_threshold_seconds > 0:
            started = time.perf_counter()
            head = [fn(work[0])]
            first_seconds = time.perf_counter() - started
            rest = work[1:]
            if first_seconds * len(rest) < self.serial_threshold_seconds:
                return head + [fn(item) for item in rest]
        chunks = self._chunks(rest, workers)
        hooks = _collection_hooks()
        try:
            context = multiprocessing.get_context("fork")
            with ProcessPoolExecutor(
                max_workers=min(workers, len(chunks)),
                mp_context=context,
            ) as pool:
                if hooks is None:
                    futures = [
                        pool.submit(_run_chunk, fn, chunk) for chunk in chunks
                    ]
                    results: List[Result] = list(head)
                    for future in futures:
                        results.extend(future.result())
                    return results
                prepare, collect, merge = hooks
                futures = [
                    pool.submit(_run_chunk_collecting, fn, chunk, prepare, collect)
                    for chunk in chunks
                ]
                results = list(head)
                payloads = []
                for future in futures:
                    chunk_results, payload = future.result()
                    results.extend(chunk_results)
                    payloads.append(payload)
                # Merge only once every chunk succeeded, in submission
                # order, so a broken pool never leaves half-merged state
                # behind before the in-process redo below.
                for payload in payloads:
                    merge(payload)
                return results
        except (BrokenProcessPool, pickle.PicklingError):
            # A worker died or a result would not round-trip; the items
            # themselves are still valid, so redo the map in-process.
            return list(head) + [fn(item) for item in rest]

    def _chunks(self, work: Sequence[Item], workers: Optional[int] = None) -> List[Sequence[Item]]:
        """Split ``work`` into chunks sized for the *effective* pool.

        ``workers`` is the cpu-capped worker count ``map()`` computed; it
        must be used instead of ``self.max_workers``, otherwise an
        affinity-restricted host (say 2 usable cpus under
        ``max_workers=16``) gets 64 tiny chunks for a 2-process pool --
        all IPC overhead and stragglers, no extra parallelism.
        """
        if workers is None:
            workers = min(self.max_workers, available_cpus())
        size = self.chunk_size
        if size is None or size < 1:
            size = max(1, len(work) // (max(1, workers) * 4))
        return [work[i : i + size] for i in range(0, len(work), size)]


def _picklable(fn: Callable) -> bool:
    try:
        pickle.dumps(fn)
        return True
    except Exception:
        return False
