"""Runtime layer: parallel execution of experiment sweeps.

See :mod:`repro.runtime.parallel` for the design notes; DESIGN.md §7 for
how the experiments use it.
"""

from repro.runtime.parallel import ParallelRunner, available_cpus, fork_available

__all__ = ["ParallelRunner", "available_cpus", "fork_available"]
