"""Render a :meth:`repro.perf.PerfRegistry.snapshot` as a text report.

The span section is a flame-style tree: children indent under their
parent path, each line showing total seconds, the share of its root
span, call count, and -- when a span has children -- its *self* time
(time not attributed to any child span).  The counter section pairs
``<name>.hit`` / ``<name>.miss`` counters into hit-rate lines.
"""

from __future__ import annotations

from typing import Dict, List

_BAR_WIDTH = 18


def _format_count(value: int) -> str:
    if value >= 10_000_000:
        return f"{value / 1_000_000:.0f}M"
    if value >= 10_000:
        return f"{value / 1000:.0f}k"
    return str(value)


def render_report(snapshot: Dict[str, Dict], min_seconds: float = 0.0) -> str:
    """Build the text report from a registry snapshot."""
    spans: Dict[str, Dict] = snapshot.get("spans", {})
    counters: Dict[str, int] = snapshot.get("counters", {})
    lines: List[str] = []

    if spans:
        lines.append("span tree (seconds, share of root, calls; self = minus child spans)")
        children: Dict[str, List[str]] = {}
        roots: List[str] = []
        for path in spans:
            parent = path.rsplit(".", 1)[0] if "." in path else None
            # Attach to the nearest recorded ancestor (intermediate paths
            # always exist because spans nest dynamically, but be safe).
            while parent is not None and parent not in spans:
                parent = parent.rsplit(".", 1)[0] if "." in parent else None
            if parent is None:
                roots.append(path)
            else:
                children.setdefault(parent, []).append(path)

        def emit(path: str, depth: int, root_seconds: float) -> None:
            stat = spans[path]
            seconds = stat["seconds"]
            if seconds < min_seconds and depth > 0:
                return
            share = 100.0 * seconds / root_seconds if root_seconds else 100.0
            bar = "#" * max(1, int(round(share / 100.0 * _BAR_WIDTH)))
            name = path.rsplit(".", 1)[-1] if depth else path
            kids = sorted(
                children.get(path, ()), key=lambda p: -spans[p]["seconds"]
            )
            self_seconds = seconds - sum(spans[k]["seconds"] for k in kids)
            self_note = f"  self={self_seconds:.3f}s" if kids else ""
            lines.append(
                f"  {'  ' * depth}{name:<{max(28 - 2 * depth, 8)}} "
                f"{seconds:9.3f}s {share:5.1f}% {stat['calls']:>8}x "
                f"{bar:<{_BAR_WIDTH}}{self_note}"
            )
            for kid in kids:
                emit(kid, depth + 1, root_seconds)

        for root in sorted(roots, key=lambda p: -spans[p]["seconds"]):
            emit(root, 0, spans[root]["seconds"])
    else:
        lines.append("span tree: (no spans recorded)")

    if counters:
        lines.append("")
        lines.append("counters")
        paired = set()
        for name in sorted(counters):
            if name in paired:
                continue
            if name.endswith(".hit") and name[:-4] + ".miss" in counters:
                base = name[:-4]
                hit = counters[name]
                miss = counters[base + ".miss"]
                paired.add(base + ".miss")
                total = hit + miss
                rate = 100.0 * hit / total if total else 0.0
                lines.append(
                    f"  {base:<34} {_format_count(hit):>8} hit "
                    f"{_format_count(miss):>8} miss  ({rate:.1f}% hit)"
                )
            elif name.endswith(".miss") and name[:-5] + ".hit" in counters:
                continue  # rendered with its .hit partner
            else:
                lines.append(f"  {name:<34} {_format_count(counters[name]):>8}")
    return "\n".join(lines)
