"""The profiling registry: hierarchical spans and hit/miss counters.

Design constraints (this code sits inside the scheduling hot paths):

* **Near-zero cost when disabled.**  ``perf.span(...)`` returns a shared
  no-op context manager and ``perf.count(...)`` is a single attribute
  check; neither allocates.  Hot loops that count per iteration hoist the
  check themselves (``if perf.enabled: perf.count(...)``).
* **Hierarchy from the dynamic span stack.**  A span entered while
  another is open records under the dotted path ``outer.inner``, so the
  tracker's ``preview`` time shows up under whichever scheduler invoked
  it (``greedy.select.tracker.preview`` vs ``opt.tracker.preview``)
  without any caller coordination.
* **Plain data out.**  :meth:`PerfRegistry.snapshot` returns JSON-ready
  dicts (what ``scripts/bench.py --profile`` embeds in the
  ``BENCH_sweep.json`` record); :mod:`repro.perf.report` renders the
  human text tree.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional


class _NullSpan:
    """Shared do-nothing context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """One live span; records wall clock under its dotted stack path."""

    __slots__ = ("_registry", "_name", "_path", "_started")

    def __init__(self, registry: "PerfRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._path = name
        self._started = 0.0

    def __enter__(self) -> "_Span":
        stack = self._registry._stack
        self._path = f"{stack[-1]}.{self._name}" if stack else self._name
        stack.append(self._path)
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        elapsed = time.perf_counter() - self._started
        registry = self._registry
        stack = registry._stack
        if stack and stack[-1] == self._path:
            stack.pop()
        stat = registry._spans.get(self._path)
        if stat is None:
            registry._spans[self._path] = [1, elapsed]
        else:
            stat[0] += 1
            stat[1] += elapsed
        return False


class PerfRegistry:
    """Hierarchical wall-clock timers and event counters.

    Usage::

        from repro.perf import perf

        with perf.span("greedy"):
            with perf.span("select"):          # records "greedy.select"
                ...
        perf.count("tracker.sweeps")
        print(perf.report())

    All state is process-local and non-thread-safe by design: the
    schedulers are single-threaded and the parallel sweep engine profiles
    per worker process.
    """

    __slots__ = ("enabled", "_stack", "_spans", "_counters")

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._stack: List[str] = []
        self._spans: Dict[str, List[float]] = {}  # path -> [calls, seconds]
        self._counters: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # control
    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded spans and counters (keeps the enabled flag)."""
        self._stack.clear()
        self._spans.clear()
        self._counters.clear()

    def drain(self) -> Dict[str, Dict]:
        """Hand over (and clear) spans/counters; keeps the span *stack*.

        This is the pool-worker transfer primitive: a forked worker
        inherits the parent's open-span stack (so its spans keep nesting
        under ``pipeline.<scenario>``) but must not re-ship the parent's
        already-recorded data.  Draining at chunk start discards the
        inherited copy; draining at chunk end yields exactly the chunk's
        own contribution (see :mod:`repro.trace.worker`).
        """
        snapshot = self.snapshot()
        self._spans.clear()
        self._counters.clear()
        return snapshot

    def merge(self, snapshot: Dict[str, Dict]) -> None:
        """Add a drained snapshot's spans and counters into this registry."""
        for path, stat in (snapshot.get("spans") or {}).items():
            current = self._spans.get(path)
            if current is None:
                self._spans[path] = [int(stat["calls"]), float(stat["seconds"])]
            else:
                current[0] += int(stat["calls"])
                current[1] += float(stat["seconds"])
        counters = self._counters
        for name, value in (snapshot.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + int(value)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def span(self, name: str):
        """A context manager timing ``name`` under the current span path."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name)

    def count(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n`` (no-op when disabled)."""
        if not self.enabled:
            return
        counters = self._counters
        counters[name] = counters.get(name, 0) + n

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def seconds(self, path: str) -> float:
        """Total recorded seconds under the exact span ``path``."""
        stat = self._spans.get(path)
        return 0.0 if stat is None else stat[1]

    def calls(self, path: str) -> int:
        stat = self._spans.get(path)
        return 0 if stat is None else int(stat[0])

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def snapshot(self) -> Dict[str, Dict]:
        """JSON-ready view: per-path calls/seconds plus raw counters."""
        return {
            "spans": {
                path: {"calls": int(calls), "seconds": round(seconds, 6)}
                for path, (calls, seconds) in sorted(self._spans.items())
            },
            "counters": dict(sorted(self._counters.items())),
        }

    def report(self, min_seconds: float = 0.0) -> str:
        """The flame-style text report (see :mod:`repro.perf.report`)."""
        from repro.perf.report import render_report

        return render_report(self.snapshot(), min_seconds=min_seconds)


def timed(name: str, registry: Optional[PerfRegistry] = None):
    """Decorator timing every call of the wrapped function as a span.

    When the registry is disabled the wrapper costs one attribute check
    and delegates straight to the function.
    """

    def decorate(fn):
        import functools

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            reg = registry if registry is not None else perf
            if not reg.enabled:
                return fn(*args, **kwargs)
            with reg.span(name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def _env_enabled(environ=os.environ) -> bool:
    """Whether the ``REPRO_PERF`` environment variable asks for profiling."""
    value = environ.get("REPRO_PERF", "").strip().lower()
    return value not in ("", "0", "false", "no", "off")


#: The process-wide default registry every instrumented module shares.
perf = PerfRegistry(enabled=_env_enabled())
