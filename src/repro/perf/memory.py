"""Peak-RSS measurement for bench stages.

``ru_maxrss`` is a per-process high-water mark that never resets, so
measuring one stage inside a long-lived bench process would only report
the largest stage seen so far.  :func:`measure_peak_rss` therefore forks
a child per measurement (sharing the parent's imports, so startup adds
nothing to the peak), runs the stage there and ships the child's counters
back over a pipe.  On platforms without ``fork`` it degrades to an
in-process measurement, flagged in the result.
"""

from __future__ import annotations

import multiprocessing
import sys
from typing import Any, Callable, Dict

try:
    import resource
except ImportError:  # pragma: no cover - Windows
    resource = None  # type: ignore[assignment]

from repro.runtime.parallel import fork_available


def peak_rss_mb() -> float:
    """This process's lifetime peak resident set size in MiB (0.0 if unknown)."""
    if resource is None:  # pragma: no cover - Windows
        return 0.0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes.
    if sys.platform == "darwin":  # pragma: no cover - macOS
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def _child(conn, fn: Callable[..., Any], args, kwargs) -> None:
    baseline = peak_rss_mb()
    try:
        fn(*args, **kwargs)
        conn.send({"baseline_rss_mb": baseline, "peak_rss_mb": peak_rss_mb()})
    except BaseException as exc:  # pragma: no cover - diagnostic path
        conn.send({"error": repr(exc)})
    finally:
        conn.close()


def measure_peak_rss(fn: Callable[..., Any], *args, **kwargs) -> Dict[str, float]:
    """Run ``fn(*args, **kwargs)`` and report its peak RSS in MiB.

    Returns ``{"baseline_rss_mb", "peak_rss_mb", "delta_mb"}``, rounded to
     0.1 MiB.  ``baseline_rss_mb`` is the RSS inherited at stage start (the
    process image plus imports), ``delta_mb`` the stage's own growth.  The
    function's return value is discarded -- this is a measurement harness,
    not a call wrapper.  Adds ``"in_process": True`` when ``fork`` is
    unavailable and the numbers describe the whole process instead.
    """
    if fork_available() and resource is not None:
        context = multiprocessing.get_context("fork")
        parent_conn, child_conn = context.Pipe(duplex=False)
        proc = context.Process(target=_child, args=(child_conn, fn, args, kwargs))
        proc.start()
        child_conn.close()
        try:
            payload = parent_conn.recv()
        except EOFError:  # pragma: no cover - child died before reporting
            payload = {"error": "measurement child exited without reporting"}
        finally:
            parent_conn.close()
            proc.join()
        if "error" in payload:
            raise RuntimeError(f"peak-RSS measurement failed: {payload['error']}")
        baseline = payload["baseline_rss_mb"]
        peak = payload["peak_rss_mb"]
        return {
            "baseline_rss_mb": round(baseline, 1),
            "peak_rss_mb": round(peak, 1),
            "delta_mb": round(peak - baseline, 1),
        }
    baseline = peak_rss_mb()
    fn(*args, **kwargs)
    peak = peak_rss_mb()
    return {
        "baseline_rss_mb": round(baseline, 1),
        "peak_rss_mb": round(peak, 1),
        "delta_mb": round(peak - baseline, 1),
        "in_process": True,
    }
