"""``repro.perf``: hierarchical wall-clock profiling for the hot paths.

The scheduling engines (greedy, OPT, OR) and the interval tracker are
instrumented with :class:`PerfRegistry` spans and counters.  Profiling is
**off by default** and costs a single attribute check per instrumented
call site when disabled; enable it with :func:`perf.enable`, the
``REPRO_PERF=1`` environment variable, ``scripts/bench.py --profile`` or
``make profile``.

Quick tour::

    from repro.perf import perf

    perf.enable()
    greedy_schedule(instance)
    print(perf.report())        # flame-style text tree + counters
    data = perf.snapshot()      # JSON-ready, for BENCH_sweep.json
    perf.reset()
"""

from repro.perf.memory import measure_peak_rss, peak_rss_mb
from repro.perf.registry import PerfRegistry, perf, timed
from repro.perf.report import render_report

__all__ = [
    "PerfRegistry",
    "measure_peak_rss",
    "peak_rss_mb",
    "perf",
    "timed",
    "render_report",
]
