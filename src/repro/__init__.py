"""Chronus: consistent data plane updates in timed SDNs.

A complete reproduction of *Chronus: Consistent Data Plane Updates in Timed
SDNs* (Zheng, Chen, Schmid, Dai, Wu -- ICDCS 2017): the congestion- and
loop-free timed update scheduling algorithms, the OR/TP/OPT baselines, and a
discrete-event SDN substrate (data plane, controller, clocks) standing in
for the paper's Mininet/Floodlight testbed.

Quick start::

    from repro import motivating_example, greedy_schedule, validate_schedule

    instance = motivating_example()          # the paper's Fig. 1 network
    result = greedy_schedule(instance)       # Algorithm 2
    print(result.schedule)                   # v2@t0, {v1,v3}@t1, v4@t2, v5@t3
    assert validate_schedule(instance, result.schedule).ok

Package map:

* :mod:`repro.core` -- the paper's algorithms (greedy, tree, OPT, MUTP ILP)
  and the dynamic-flow validators.
* :mod:`repro.network` -- graphs, paths, flows, topology generators.
* :mod:`repro.updates` -- protocols: Chronus, two-phase, order replacement.
* :mod:`repro.simulator` -- fluid discrete-event data plane.
* :mod:`repro.controller` -- controller, async channel, clocks, Algorithm 5.
* :mod:`repro.solver` -- ILP model + branch-and-bound.
* :mod:`repro.analysis` -- metrics and statistics.
* :mod:`repro.experiments` -- one module per table/figure of the paper.
"""

from repro.core import (
    FeasibilityResult,
    MultiFlowUpdate,
    greedy_multiflow,
    validate_multiflow,
    GreedyResult,
    IntervalTracker,
    ArrayIntervalTracker,
    NUMPY_AVAILABLE,
    OptimalResult,
    TimeExtendedNetwork,
    TraceResult,
    UpdateInstance,
    UpdateSchedule,
    check_update_feasibility,
    greedy_schedule,
    instance_from_paths,
    instance_from_topology,
    motivating_example,
    optimal_schedule,
    random_instance,
    replay_schedule,
    reversal_instance,
    solve_mutp,
    trace_schedule,
    validate_schedule,
)
from repro.network import Flow, Link, Network
from repro.updates import (
    ChronusProtocol,
    OptimalProtocol,
    OrderReplacementProtocol,
    TwoPhaseProtocol,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "UpdateInstance",
    "UpdateSchedule",
    "TimeExtendedNetwork",
    "TraceResult",
    "IntervalTracker",
    "ArrayIntervalTracker",
    "NUMPY_AVAILABLE",
    "GreedyResult",
    "FeasibilityResult",
    "OptimalResult",
    "greedy_schedule",
    "optimal_schedule",
    "check_update_feasibility",
    "solve_mutp",
    "trace_schedule",
    "validate_schedule",
    "replay_schedule",
    "motivating_example",
    "random_instance",
    "reversal_instance",
    "instance_from_paths",
    "instance_from_topology",
    "MultiFlowUpdate",
    "greedy_multiflow",
    "validate_multiflow",
    "Flow",
    "Link",
    "Network",
    "ChronusProtocol",
    "TwoPhaseProtocol",
    "OrderReplacementProtocol",
    "OptimalProtocol",
]
