"""Tests for the independent plan-conformance verifier (:mod:`repro.validate`).

Three layers:

* unit tests of :func:`verify_schedule` / :func:`verify_two_phase` against
  hand-checkable instances (Fig. 1, a loop trap, a new-path-only branch);
* property tests: on ~100 seeded instances the verifier must reproduce the
  interval tracker's consistency numbers exactly -- on clean Chronus
  schedules *and* on dirty realised-OR schedules;
* mutation tests: corrupting a correct schedule (swapping two update
  times, dropping a switch) must flip the verdict.
"""

import pytest

from repro.analysis.metrics import evaluate_schedule
from repro.core.greedy import greedy_schedule
from repro.core.instance import instance_from_paths
from repro.core.schedule import UpdateSchedule
from repro.experiments.sweep import mixed_instance
from repro.network.graph import Network
from repro.updates.chronus import ChronusProtocol
from repro.updates.order_replacement import (
    OrderReplacementProtocol,
    greedy_loop_free_rounds,
    realize_round_times,
)
from repro.updates.two_phase import TwoPhaseProtocol, two_phase_congestion_spans
from repro.validate import verify_plan, verify_schedule, verify_two_phase


def loop_trap_instance():
    """Old path a-b-c-d, new path a-c-b-d: updating c first loops b<->c."""
    net = Network()
    for src, dst in [
        ("a", "b"), ("b", "c"), ("c", "d"), ("a", "c"), ("c", "b"), ("b", "d"),
    ]:
        net.add_link(src, dst, capacity=1.0, delay=1)
    return instance_from_paths(net, ["a", "b", "c", "d"], ["a", "c", "b", "d"])


def branch_instance():
    """Old path a-b-d, new path a-c-d: c holds no rule before the update."""
    net = Network()
    for src, dst in [("a", "b"), ("b", "d"), ("a", "c"), ("c", "d")]:
        net.add_link(src, dst, capacity=1.0, delay=1)
    return instance_from_paths(net, ["a", "b", "d"], ["a", "c", "d"])


def assert_tracker_agreement(instance, schedule):
    """The verifier must reproduce the tracker's consistency numbers.

    Loop/black-hole *event counts* are representation dependent (the
    tracker records one event per surviving emission interval, the
    verifier one per emission), so only their emptiness is compared; the
    congested time-extended link count -- Fig. 8's unit -- must match
    exactly.
    """
    verdict = verify_schedule(instance, schedule)
    metrics = evaluate_schedule(instance, schedule)
    assert verdict.congestion_free == metrics.congestion_free
    assert verdict.congested_timed_links == metrics.congested_timed_links
    assert verdict.loop_free == metrics.loop_free
    assert verdict.drop_free == (metrics.blackhole_events == 0)


class TestVerifySchedule:
    def test_paper_schedule_is_consistent(self, fig1_instance, paper_schedule):
        verdict = verify_schedule(fig1_instance, paper_schedule)
        assert verdict.ok
        assert verdict.schedule_complete
        assert verdict.describe().startswith("verdict: consistent")

    def test_simultaneous_update_loops_on_fig1(self, fig1_instance, paper_schedule):
        """Flipping every switch at once is exactly what Fig. 1 warns against."""
        all_at_once = UpdateSchedule(
            {node: 0 for node in paper_schedule.times}, start_time=0
        )
        verdict = verify_schedule(fig1_instance, all_at_once)
        assert not verdict.ok
        assert not verdict.loop_free

    def test_wrong_order_creates_loop(self):
        instance = loop_trap_instance()
        # c flips to ->b at t=0 while b still forwards ->c until t=10.
        schedule = UpdateSchedule({"c": 0, "a": 10, "b": 10}, start_time=0)
        verdict = verify_schedule(instance, schedule)
        assert not verdict.loop_free
        assert "b" in verdict.loop_nodes
        assert "looped emission" in verdict.describe()

    def test_missing_switch_blackholes(self):
        instance = branch_instance()
        schedule = greedy_schedule(instance).schedule
        verdict = verify_schedule(instance, schedule.without("c"))
        assert not verdict.schedule_complete
        assert not verdict.drop_free
        assert verdict.blackhole_nodes == ("c",)

    def test_background_load_congests(self, tiny_instance):
        schedule = greedy_schedule(tiny_instance).schedule
        clean = verify_schedule(tiny_instance, schedule)
        assert clean.ok
        loaded = verify_schedule(
            tiny_instance, schedule, background={("a", "c"): [(None, None, 0.5)]}
        )
        assert not loaded.congestion_free
        assert [v.link for v in loaded.congestion] == [("a", "c")]

    def test_loads_cover_check_window(self, fig1_instance, paper_schedule):
        """The per-step load series must be complete over the check window."""
        verdict = verify_schedule(fig1_instance, paper_schedule)
        assert verdict.check_start == paper_schedule.t0
        assert verdict.check_end > paper_schedule.last_time
        assert verdict.loads  # every traversed link accumulated a series

    def test_infeasible_instance_never_verifies(self, shortcut_instance):
        """No complete schedule of the provably infeasible instance is clean."""
        result = greedy_schedule(shortcut_instance)
        assert not result.feasible
        verdict = verify_schedule(shortcut_instance, result.schedule)
        assert not verdict.ok


class TestVerifyTwoPhase:
    def test_matches_span_formula_on_overtaking(self, shortcut_instance):
        flip_time = 5
        spans = two_phase_congestion_spans(shortcut_instance, flip_time)
        verdict = verify_two_phase(shortcut_instance, flip_time)
        assert spans  # the shortcut overtakes in-flight old traffic
        assert not verdict.congestion_free
        assert verdict.congested_timed_links == sum(
            span.timed_link_count for span in spans
        )
        assert [v.link for v in verdict.congestion] == [span.link for span in spans]

    def test_clean_two_phase(self, tiny_instance):
        verdict = verify_two_phase(tiny_instance, 5)
        assert verdict.ok

    def test_per_packet_consistency_never_loops(self, fig1_instance):
        verdict = verify_two_phase(fig1_instance, 3)
        assert verdict.loop_free and verdict.drop_free


class TestVerifyPlan:
    def test_chronus_plan_carries_conformant_verdict(self, fig1_instance):
        plan = ChronusProtocol(verify=True).plan(fig1_instance)
        assert plan.instance is fig1_instance
        assert plan.verdict is not None
        assert plan.verdict.ok
        assert plan.conformant is True

    def test_plan_without_verify_has_no_verdict(self, fig1_instance):
        plan = ChronusProtocol().plan(fig1_instance)
        assert plan.verdict is None
        assert plan.conformant is None

    def test_two_phase_judged_under_versioned_semantics(self, shortcut_instance):
        plan = TwoPhaseProtocol(verify=True).plan(shortcut_instance)
        assert not plan.feasible  # the span formula predicts overtaking
        verdict = verify_plan(shortcut_instance, plan)
        assert not verdict.congestion_free
        # In-place verification of the same nominal schedule would also see
        # loops/drops -- versioned semantics must not.
        assert verdict.loop_free and verdict.drop_free

    def test_best_effort_plan_is_vacuously_conformant(self, shortcut_instance):
        plan = OrderReplacementProtocol(verify=True).plan(shortcut_instance)
        assert not plan.feasible
        assert plan.conformant is True  # no consistency claim to break


class TestTrackerAgreementProperty:
    """The verifier and the interval tracker agree on ~100 seeded instances."""

    SEEDS = range(50)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_agrees_on_chronus_schedules(self, seed):
        instance = mixed_instance(8, seed)
        schedule = greedy_schedule(instance).schedule
        assert_tracker_agreement(instance, schedule)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_agrees_on_realized_or_schedules(self, seed):
        """Dirty schedules too: realised OR rounds congest and may loop."""
        instance = mixed_instance(8, seed)
        realized = realize_round_times(
            greedy_loop_free_rounds(instance), seed=seed, max_skew=3
        )
        assert_tracker_agreement(instance, realized)


class TestMutationDetection:
    """Corrupting a correct schedule must flip the verdict."""

    def test_paper_schedule_swaps_detected(self, fig1_instance, paper_schedule):
        # Every cross-round swap involving v2 or v5 breaks Fig. 1's ordering.
        for a, b in [("v2", "v3"), ("v2", "v5"), ("v4", "v5"), ("v3", "v5")]:
            mutated = paper_schedule.swapped(a, b)
            assert not verify_schedule(fig1_instance, mutated).ok, (a, b)

    def test_paper_schedule_drops_detected(self, fig1_instance, paper_schedule):
        for node in paper_schedule.times:
            mutated = paper_schedule.without(node)
            assert not verify_schedule(fig1_instance, mutated).ok, node

    @pytest.mark.parametrize("seed", range(40))
    def test_seeded_mutations_detected(self, seed):
        """First<->last round swaps and drops are caught on every seed."""
        instance = mixed_instance(8, seed)
        result = greedy_schedule(instance)
        schedule = result.schedule
        if not result.feasible or len(set(schedule.times.values())) < 2:
            pytest.skip("no tight multi-round schedule to mutate")
        rounds = schedule.rounds()
        swapped = schedule.swapped(rounds[0][1][0], rounds[-1][1][0])
        assert not verify_schedule(instance, swapped).ok
        dropped = schedule.without(next(iter(schedule.times)))
        assert not verify_schedule(instance, dropped).ok
