"""Pinning subtle semantics at module boundaries."""

import random

import pytest

from repro.controller import ConstantDelayModel, ControlChannel, Controller
from repro.controller.messages import FlowModModify, next_xid
from repro.core.greedy import greedy_schedule
from repro.core.instance import motivating_example
from repro.core.schedule import UpdateSchedule
from repro.simulator import Simulator, build_dataplane
from repro.simulator.dataplane import install_config
from repro.simulator.flowtable import PacketContext
from repro.simulator.switch import HOST_PORT


def build_world():
    instance = motivating_example()
    sim = Simulator()
    plane = build_dataplane(sim, instance.network, delay_scale=1.0)
    install_config(plane, instance)
    channel = ControlChannel(
        sim, ConstantDelayModel(0.001), ConstantDelayModel(0.01),
        rng=random.Random(0),
    )
    controller = Controller(sim, channel)
    for switch in plane.switches.values():
        controller.manage(switch)
    return instance, sim, plane, controller


class TestBarrierWithScheduledFlowMods:
    def test_barrier_waits_for_scheduled_execution_time(self):
        """Per the OpenFlow spec reading in messages.py: a barrier reply
        covers *scheduled* FlowMods too -- it arrives only after the mod
        fired at its execution time."""
        instance, sim, plane, controller = build_world()
        xid = next_xid()
        controller.send_flow_mod(
            "v2",
            FlowModModify(
                xid=xid, rule_name="f",
                out_port=plane.port_of("v2", "v6"),
                execute_at=5.0,
            ),
        )
        replies = []
        controller.send_barrier("v2", lambda reply: replies.append(sim.now))
        sim.run(until=10.0)
        assert replies and replies[0] >= 5.0

    def test_barrier_does_not_wait_for_later_messages(self):
        instance, sim, plane, controller = build_world()
        replies = []
        controller.send_barrier("v2", lambda reply: replies.append(sim.now))
        sim.run(until=0.5)
        # A FlowMod sent *after* the barrier must not delay it.
        controller.send_flow_mod(
            "v2",
            FlowModModify(
                xid=next_xid(), rule_name="f",
                out_port=plane.port_of("v2", "v6"), execute_at=9.0,
            ),
        )
        sim.run(until=10.0)
        assert replies and replies[0] < 1.0


class TestLinkStreamClearing:
    def test_rerouting_zeroes_the_abandoned_link(self):
        instance, sim, plane, controller = build_world()
        plane.inject_flow("v1", "h1", "v6", rate=1.0)
        sim.run(until=8.0)
        old_link = plane.link("v2", "v3")
        assert old_link.utilization == pytest.approx(1.0)
        switch = plane.switch("v2")
        switch.table.modify("f", out_port=plane.port_of("v2", "v6"))
        switch.on_table_changed()
        sim.run(until=16.0)
        assert old_link.utilization == 0.0
        timeline = old_link.utilization_timeline()
        assert timeline[0].rate == 0.0 and timeline[-1].rate == 0.0
        assert any(sample.rate > 0 for sample in timeline)

    def test_distinct_streams_tracked_separately(self):
        instance, sim, plane, controller = build_world()
        plane.inject_flow("v1", "h1", "v6", rate=0.4)
        plane.switch("v1").inject(
            PacketContext(in_port=HOST_PORT, src_prefix="h2", dst_prefix="v6"), 0.6
        )
        sim.run(until=8.0)
        assert plane.link("v1", "v2").utilization == pytest.approx(1.0)
        # Stopping one stream leaves the other untouched.
        plane.switch("v1").inject(
            PacketContext(in_port=HOST_PORT, src_prefix="h2", dst_prefix="v6"), 0.0
        )
        sim.run(until=16.0)
        assert plane.link("v1", "v2").utilization == pytest.approx(0.4)


class TestGreedyGuards:
    def test_max_steps_forces_best_effort_completion(self):
        instance = motivating_example()
        result = greedy_schedule(instance, max_steps=1)
        # One step cannot finish the example; the result must still cover
        # every switch and be flagged truthfully.
        assert len(result.schedule) == len(instance.switches_to_update)
        assert not result.feasible

    def test_start_time_enforced_in_schedule_validation(self):
        with pytest.raises(ValueError):
            UpdateSchedule({"a": 0}, start_time=1)
