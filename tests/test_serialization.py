"""Round-trip tests for schedule JSON persistence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedule import UpdateSchedule
from repro.core.serialization import schedule_from_json, schedule_to_json


class TestRoundTrip:
    def test_simple(self, paper_schedule):
        text = schedule_to_json(paper_schedule)
        restored = schedule_from_json(text)
        assert restored.as_dict() == paper_schedule.as_dict()
        assert restored.start_time == paper_schedule.start_time
        assert restored.feasible == paper_schedule.feasible

    def test_best_effort_flag_survives(self):
        schedule = UpdateSchedule({"a": 3}, feasible=False)
        assert not schedule_from_json(schedule_to_json(schedule)).feasible

    def test_empty_schedule(self):
        schedule = UpdateSchedule({}, start_time=7)
        restored = schedule_from_json(schedule_to_json(schedule))
        assert len(restored) == 0
        assert restored.t0 == 7

    @given(
        times=st.dictionaries(
            st.text(alphabet="abcdefv123", min_size=1, max_size=6),
            st.integers(min_value=0, max_value=1000),
            max_size=8,
        ),
        feasible=st.booleans(),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, times, feasible):
        schedule = UpdateSchedule(times, feasible=feasible)
        restored = schedule_from_json(schedule_to_json(schedule))
        assert restored.as_dict() == schedule.as_dict()
        assert restored.feasible == feasible
        assert restored.makespan == schedule.makespan


class TestValidation:
    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="chronus-schedule"):
            schedule_from_json('{"format": "something-else"}')

    def test_rejects_non_object(self):
        with pytest.raises(ValueError):
            schedule_from_json("[1, 2, 3]")

    def test_rejects_missing_times(self):
        with pytest.raises(ValueError, match="times"):
            schedule_from_json('{"format": "chronus-schedule/1"}')
