"""Differential pins between the array and reference exact-search engines.

The ``engine="array"`` OPT/OR search core (``repro.core.search``) must be
*value-equal* to the original engines kept as ``engine="reference"``:
same feasibility verdict, same optimal makespan / round count, and the
same ``proven`` claim on every search that runs to completion.  These
pins are exact-value comparisons (the engines are free to explore
different node counts -- they count nodes at different granularities,
see DESIGN.md §13), exercised over hundreds of seeded instances plus the
Amiri-style adversarial families (path reversals and tight-capacity
segmented reroutes) that stress rescue pairs and transient loops.
"""

import pytest

from repro.core.instance import (
    random_instance,
    reversal_instance,
    segmented_instance,
)
from repro.core.optimal import optimal_schedule, exhaustive_schedule
from repro.updates.order_replacement import minimize_rounds


def _assert_opt_agree(instance, label, **kwargs):
    ref = optimal_schedule(instance, engine="reference", **kwargs)
    arr = optimal_schedule(instance, engine="array", **kwargs)
    assert arr.feasible == ref.feasible, f"{label}: feasibility diverged"
    assert arr.makespan == ref.makespan, f"{label}: makespan diverged"
    assert arr.proven == ref.proven, f"{label}: proven diverged"
    return ref, arr


class TestOptAgainstExhaustive:
    """The array engine against the brute-force oracle on tiny instances."""

    @pytest.mark.parametrize("seed", range(30))
    def test_matches_exhaustive(self, seed):
        instance = random_instance(4 + seed % 3, seed=9000 + seed)
        result = optimal_schedule(instance, engine="array")
        oracle = exhaustive_schedule(instance, max_makespan=8)
        if oracle is None:
            # No valid assignment within the oracle's makespan bound.
            assert result.schedule is None or result.makespan > 8
        else:
            assert result.schedule is not None
            assert result.makespan == oracle.makespan


class TestOptEnginesAgree:
    """Unbudgeted value parity: feasibility, makespan and proven."""

    @pytest.mark.parametrize("seed", range(60))
    def test_random_instances(self, seed):
        instance = random_instance(4 + seed % 6, seed=1700 + seed, max_delay=3)
        _assert_opt_agree(instance, f"random seed={seed}")

    @pytest.mark.parametrize("count", range(3, 10))
    def test_reversal_instances(self, count):
        # Full path reversal: the hardest rescue-pair workload (every
        # singleton update loops until a partner cuts the cycle).
        _assert_opt_agree(reversal_instance(count), f"reversal count={count}")

    @pytest.mark.parametrize("count", range(3, 9))
    def test_tight_capacity_reversals(self, count):
        # Capacity exactly one demand: any transient overlap congests, so
        # feasibility hinges on exact drain timing in both engines.
        instance = reversal_instance(count, demand=1.0, capacity=1.0)
        _assert_opt_agree(instance, f"tight reversal count={count}")

    @pytest.mark.parametrize("seed", range(12))
    def test_segmented_instances(self, seed):
        instance = segmented_instance(
            10, seed=400 + seed, segments=2, max_segment_length=4
        )
        _assert_opt_agree(instance, f"segmented seed={seed}")


class TestOrEnginesAgree:
    """Round minimisation: exact round-count and proven parity."""

    @pytest.mark.parametrize("seed", range(60))
    def test_random_instances(self, seed):
        instance = random_instance(4 + seed % 6, seed=3100 + seed, max_delay=3)
        ref = minimize_rounds(instance, engine="reference")
        arr = minimize_rounds(instance, engine="array")
        assert arr.round_count == ref.round_count, f"seed={seed}"
        assert arr.proven == ref.proven, f"seed={seed}"

    @pytest.mark.parametrize("count", range(3, 10))
    def test_reversal_instances(self, count):
        ref = minimize_rounds(reversal_instance(count), engine="reference")
        arr = minimize_rounds(reversal_instance(count), engine="array")
        assert arr.round_count == ref.round_count
        assert arr.proven == ref.proven


class TestNodeBudgets:
    """Budgeted runs: determinism, and no proven-power regression."""

    def test_node_budget_deterministic(self):
        instance = random_instance(14, seed=77)
        results = [
            optimal_schedule(instance, node_budget=400, engine="array")
            for _ in range(2)
        ]
        first, second = results
        assert first.explored == second.explored
        assert first.proven == second.proven
        assert first.makespan == second.makespan
        times_a = None if first.schedule is None else first.schedule.as_dict()
        times_b = None if second.schedule is None else second.schedule.as_dict()
        assert times_a == times_b

    def test_proven_at_least_reference_under_equal_budgets(self):
        # Aggregate proving power at a fixed deterministic budget: the new
        # engine must prove at least as many instances as the oracle.
        budget = 300
        ref_proven = arr_proven = 0
        for seed in range(20):
            instance = random_instance(12 + seed % 3, seed=500 + seed * 13)
            ref = optimal_schedule(
                instance, node_budget=budget, time_budget=10.0, engine="reference"
            )
            arr = optimal_schedule(
                instance, node_budget=budget, time_budget=10.0, engine="array"
            )
            ref_proven += ref.proven
            arr_proven += arr.proven
            if ref.proven and arr.proven:
                assert ref.makespan == arr.makespan, f"seed={seed}"
                assert ref.feasible == arr.feasible, f"seed={seed}"
        assert arr_proven >= ref_proven

    def test_or_node_budget_deterministic(self):
        instance = random_instance(12, seed=99)
        first = minimize_rounds(instance, node_budget=200, engine="array")
        second = minimize_rounds(instance, node_budget=200, engine="array")
        assert first.explored == second.explored
        assert first.rounds == second.rounds
        assert first.proven == second.proven


class TestWidthCut:
    """Truncated candidate sets must forfeit the optimality claim."""

    def test_opt_width_cut_forfeits_proven(self):
        # 10 pending switches, width 2: the candidate set truncates, so
        # neither engine may claim a proven optimum.
        instance = random_instance(10, seed=11)
        for engine in ("array", "reference"):
            result = optimal_schedule(instance, max_branch_width=2, engine=engine)
            if result.width_cut:
                assert not result.proven, engine

    def test_opt_width_cut_engines_agree(self):
        hit = 0
        for seed in range(12):
            instance = random_instance(9, seed=6000 + seed)
            ref = optimal_schedule(instance, max_branch_width=2, engine="reference")
            arr = optimal_schedule(instance, max_branch_width=2, engine="array")
            assert arr.proven == ref.proven, f"seed={seed}"
            assert arr.width_cut == ref.width_cut, f"seed={seed}"
            hit += arr.width_cut
        assert hit > 0, "no instance exercised the truncation path"

    def test_or_width_cut_forfeits_proven(self):
        hit = 0
        for seed in range(12):
            instance = random_instance(8, seed=7000 + seed)
            ref = minimize_rounds(instance, max_branch_width=1, engine="reference")
            arr = minimize_rounds(instance, max_branch_width=1, engine="array")
            assert arr.width_cut == ref.width_cut, f"seed={seed}"
            assert arr.proven == ref.proven, f"seed={seed}"
            if arr.width_cut:
                assert not arr.proven
                hit += 1
        assert hit > 0, "no instance exercised the truncation path"

    def test_untruncated_run_reports_no_cut(self):
        instance = random_instance(5, seed=3)
        result = optimal_schedule(instance, engine="array")
        assert not result.width_cut
        assert result.proven
