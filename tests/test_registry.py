"""Tests for the planner registry (DESIGN.md §15).

The load-bearing suite is the lockstep block: a frozen copy of the
pre-registry ``run_instance`` if-chain runs next to the registry dispatch
on pinned seeds, and the outcome records must be *byte-identical* (compared
as canonical JSON).  All schemes share one per-instance RNG stream, so any
drift in evaluation order, PRNG consumption or fallback handling shows up
here immediately.
"""

import json
import random
import subprocess
import sys
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional

import pytest

from repro.analysis.metrics import evaluate_schedule
from repro.core.greedy import greedy_schedule
from repro.core.instance import reversal_instance, segmented_instance
from repro.core.optimal import optimal_schedule
from repro.experiments.sweep import (
    InstanceOutcome,
    mixed_instance,
    run_instance,
    sweep_seed,
)
from repro.updates.order_replacement import (
    greedy_loop_free_rounds,
    minimize_rounds,
    realize_round_times,
)
from repro.updates.registry import (
    DEFAULT_SCHEMES,
    DuplicateSchemeError,
    Planner,
    PlanResult,
    UnknownSchemeError,
    available_schemes,
    find_planner,
    get_planner,
    planners_for,
    register_planner,
    sweep_planners,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Deterministic node budgets so the lockstep pins cannot flake on machine
#: load: both exact searches stop on explored nodes, never on wall clock.
#: The wall-clock budgets are set far above any plausible runtime for the
#: same reason -- the node budget must be the binding constraint.
NODE_BUDGET = 20_000
TIME_BUDGET = 600.0
BUDGETS = dict(
    opt_budget=TIME_BUDGET,
    or_budget=TIME_BUDGET,
    opt_node_budget=NODE_BUDGET,
    or_node_budget=NODE_BUDGET,
)


def legacy_run_instance(
    instance,
    seed: int,
    schemes=("chronus", "or", "opt"),
    opt_budget: float = 1.0,
    or_budget: float = 0.5,
    or_skew: int = 3,
    opt_node_budget: Optional[int] = None,
    or_node_budget: Optional[int] = None,
    verify: bool = False,
) -> Dict[str, InstanceOutcome]:
    """Frozen copy of the pre-registry if-chain (the byte-identity oracle).

    This is the dispatch code the registry replaced, kept verbatim minus
    the engine knobs (pinned to the ``"array"`` default).  Do not "fix" or
    modernise it -- its job is to stay exactly what shipped.
    """
    from repro.validate.verifier import verify_schedule

    rng = random.Random(seed ^ 0x5EED)
    outcomes: Dict[str, InstanceOutcome] = {}

    def conformance(schedule, metrics) -> Optional[bool]:
        if not verify:
            return None
        verdict = verify_schedule(instance, schedule)
        return (
            verdict.congestion_free == metrics.congestion_free
            and verdict.congested_timed_links == metrics.congested_timed_links
            and verdict.loop_free == metrics.loop_free
            and verdict.drop_free == (metrics.blackhole_events == 0)
        )

    if "chronus" in schemes:
        result = greedy_schedule(instance)
        metrics = evaluate_schedule(instance, result.schedule)
        outcomes["chronus"] = InstanceOutcome(
            scheme="chronus",
            congestion_free=metrics.congestion_free and result.feasible,
            congested_timed_links=metrics.congested_timed_links,
            makespan=metrics.makespan,
            verifier_agrees=conformance(result.schedule, metrics),
        )

    if "opt" in schemes:
        result = optimal_schedule(
            instance, time_budget=opt_budget, node_budget=opt_node_budget
        )
        if result.schedule is not None:
            metrics = evaluate_schedule(instance, result.schedule)
            outcomes["opt"] = InstanceOutcome(
                scheme="opt",
                congestion_free=metrics.congestion_free,
                congested_timed_links=metrics.congested_timed_links,
                makespan=metrics.makespan,
                verifier_agrees=conformance(result.schedule, metrics),
            )
        else:
            rounds = greedy_loop_free_rounds(instance)
            fallback = realize_round_times(rounds, rng=rng, max_skew=0)
            metrics = evaluate_schedule(instance, fallback)
            outcomes["opt"] = InstanceOutcome(
                scheme="opt",
                congestion_free=False,
                congested_timed_links=metrics.congested_timed_links,
                makespan=metrics.makespan,
                verifier_agrees=conformance(fallback, metrics),
            )

    if "or" in schemes:
        rounds = minimize_rounds(
            instance, time_budget=or_budget, node_budget=or_node_budget
        ).rounds
        realized = realize_round_times(rounds, rng=rng, max_skew=or_skew)
        metrics = evaluate_schedule(instance, realized)
        outcomes["or"] = InstanceOutcome(
            scheme="or",
            congestion_free=metrics.congestion_free,
            congested_timed_links=metrics.congested_timed_links,
            makespan=metrics.makespan,
            verifier_agrees=conformance(realized, metrics),
        )

    return outcomes


def canonical(outcomes: Dict[str, InstanceOutcome]) -> str:
    """Byte-stable JSON rendering of a full outcome record."""
    return json.dumps(
        {name: asdict(outcome) for name, outcome in sorted(outcomes.items())},
        sort_keys=True,
    )


class TestRegistryApi:
    def test_all_schemes_registered(self):
        assert set(available_schemes()) == {"chronus", "or", "tp", "opt", "aug"}

    def test_default_schemes_are_registered(self):
        assert set(DEFAULT_SCHEMES) <= set(available_schemes())
        assert DEFAULT_SCHEMES == ("chronus", "or", "opt")

    def test_get_planner_roundtrip(self):
        for name in available_schemes():
            planner = get_planner(name)
            assert planner.name == name

    def test_unknown_scheme_error(self):
        with pytest.raises(UnknownSchemeError) as info:
            get_planner("chrnous")
        assert info.value.name == "chrnous"
        assert "chronus" in info.value.valid
        # The message is what the CLI prints on exit 2.
        assert "registered planners" in str(info.value)
        assert isinstance(info.value, ValueError)

    def test_find_planner_is_total(self):
        assert find_planner("chronus") is get_planner("chronus")
        assert find_planner("chrnous") is None

    def test_planners_for_preserves_caller_order(self):
        names = [p.name for p in planners_for(("tp", "chronus"))]
        assert names == ["tp", "chronus"]

    def test_sweep_planners_uses_legacy_order(self):
        # The legacy if-chain evaluated chronus -> opt -> or on a shared
        # RNG stream; sweep_order pins that order forever.
        names = [p.name for p in sweep_planners(("or", "opt", "chronus"))]
        assert names == ["chronus", "opt", "or"]

    def test_duplicate_registration_rejected(self):
        class Impostor(Planner):
            name = "chronus"

            def _plan(self, instance, *, rng=None, background=None, t0=0, **options):
                raise NotImplementedError

        with pytest.raises(DuplicateSchemeError):
            register_planner(Impostor())

    def test_reregistration_of_same_class_allowed(self):
        # Module reloads re-execute register_planner calls; same
        # implementation class must not explode.
        register_planner(type(get_planner("chronus"))())

    def test_capability_flags(self):
        assert get_planner("tp").two_phase
        assert not get_planner("chronus").two_phase
        assert get_planner("opt").exact
        assert get_planner("or").exact
        assert not get_planner("aug").exact
        assert get_planner("aug").supports_engine


class TestLockstepByteIdentity:
    """Registry dispatch must reproduce the legacy if-chain bit for bit."""

    SEEDS = [sweep_seed(0, 12, index) for index in range(6)]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_default_trio_matches_legacy(self, seed):
        instance = mixed_instance(12, seed)
        new = run_instance(instance, seed, verify=True, **BUDGETS)
        old = legacy_run_instance(instance, seed, verify=True, **BUDGETS)
        assert canonical(new) == canonical(old)

    def test_opt_fallback_path_matches_legacy(self):
        # A congestion-infeasible instance: OPT falls back to best-effort
        # rounds, consuming PRNG draws *before* OR's skewed realisation --
        # the subtlest byte-identity hazard in the chain.
        found = False
        for index in range(40):
            seed = sweep_seed(3, 16, index)
            instance = mixed_instance(16, seed)
            new = run_instance(instance, seed, **BUDGETS)
            old = legacy_run_instance(instance, seed, **BUDGETS)
            assert canonical(new) == canonical(old)
            found = found or not new["opt"].congestion_free
        assert found, "no infeasible instance in the pinned seed range"

    def test_subset_dispatch_matches_legacy(self):
        seed = sweep_seed(1, 12, 0)
        instance = mixed_instance(12, seed)
        for schemes in [("chronus",), ("or",), ("opt",), ("chronus", "or")]:
            new = run_instance(instance, seed, schemes=schemes, **BUDGETS)
            old = legacy_run_instance(instance, seed, schemes=schemes, **BUDGETS)
            assert canonical(new) == canonical(old)


class TestVerifyAdapters:
    def test_tp_verify_routes_through_two_phase(self):
        from repro.validate.verifier import verify_two_phase

        instance = reversal_instance(6)
        planner = get_planner("tp")
        result = planner.plan(instance)
        verdict = planner.verify(instance, result.schedule)
        direct = verify_two_phase(
            instance,
            result.schedule.time_of(instance.source),
            t0=result.schedule.t0,
        )
        assert verdict.congested_timed_links == direct.congested_timed_links
        assert verdict.congestion_free == direct.congestion_free
        assert verdict.check_start == direct.check_start
        assert verdict.check_end == direct.check_end

    def test_timed_verify_routes_through_schedule(self):
        from repro.validate.verifier import verify_schedule

        instance = reversal_instance(6)
        planner = get_planner("chronus")
        result = planner.plan(instance)
        verdict = planner.verify(instance, result.schedule)
        direct = verify_schedule(instance, result.schedule)
        assert verdict.congested_timed_links == direct.congested_timed_links
        assert verdict.loop_free == direct.loop_free

    def test_gate_routes_tp_by_flag_not_name(self):
        # The gate's two-phase branch keys off planner.two_phase; a tp run
        # through the registry-built protocol list must come back clean.
        from repro.validate import run_gate

        report = run_gate(
            instance_count=2, switch_count=8, protocols=("tp",), replay=False
        )
        assert report.ok, report.describe()
        assert report.checked == 2


class TestAugPlanner:
    def test_epsilon_zero_matches_chronus_exactly(self):
        for index in range(4):
            seed = sweep_seed(2, 12, index)
            instance = mixed_instance(12, seed)
            outcomes = run_instance(
                instance, seed, schemes=("chronus", "aug"), verify=True
            )
            chronus, aug = outcomes["chronus"], outcomes["aug"]
            assert aug.congestion_free == chronus.congestion_free
            assert aug.congested_timed_links == chronus.congested_timed_links
            assert aug.makespan == chronus.makespan
            assert aug.verifier_agrees is True

    def test_epsilon_rescues_stalled_instances(self):
        # Unit-demand / unit-capacity workload: transient headroom only
        # binds at epsilon >= 1, and what it buys is plan *completeness* --
        # instances where the strict greedy stalls into best-effort now
        # plan end to end (the Henzinger & Pourdamghani trade: a complete,
        # faster update in exchange for bounded transient overload).
        chronus = get_planner("chronus")
        aug = get_planner("aug")
        rescued = 0
        for index in range(40):
            seed = sweep_seed(4, 14, index)
            instance = mixed_instance(14, seed)
            strict = chronus.plan(instance)
            relaxed = aug.plan(instance, epsilon=1.0)
            # Headroom never makes planning stall where strict planning
            # succeeded.
            if strict.feasible:
                assert relaxed.feasible
            else:
                rescued += int(relaxed.feasible)
        assert rescued > 0, "epsilon=1.0 never completed a stalled plan"

    def test_augmented_instance_preserves_true_capacities(self):
        from repro.updates.augmented import augmented_instance

        instance = segmented_instance(10, seed=7)
        relaxed = augmented_instance(instance, 0.5)
        assert relaxed is not instance
        for link in instance.network.links:
            assert relaxed.network.capacity(link.src, link.dst) == pytest.approx(
                link.capacity * 1.5
            )
        assert augmented_instance(instance, 0.0) is instance

    def test_negative_epsilon_rejected(self):
        from repro.updates.augmented import AugmentedProtocol

        with pytest.raises(ValueError):
            AugmentedProtocol(epsilon=-0.1)

    def test_aug_verifier_agrees_at_positive_epsilon(self):
        # The planner relaxes capacities for *planning* only; conformance
        # is judged on the true instance, so the flag must stay coherent.
        for index in range(6):
            seed = sweep_seed(5, 12, index)
            instance = mixed_instance(12, seed)
            outcome = run_instance(
                instance, seed, schemes=("aug",), aug_epsilon=1.0, verify=True
            )["aug"]
            assert outcome.verifier_agrees is True


class TestCliFailFast:
    def test_typo_exits_2_with_registered_names(self):
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.experiments",
                "run",
                "sweep",
                "--set",
                "schemes=chrnous",
            ],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 2
        assert "chrnous" in proc.stderr
        for name in ("chronus", "or", "tp", "opt", "aug"):
            assert name in proc.stderr
