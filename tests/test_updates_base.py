"""Unit tests for the shared protocol plumbing (rule accounting, plans)."""

import pytest

from repro.core.schedule import UpdateSchedule
from repro.updates.base import (
    RuleAccounting,
    UpdatePlan,
    count_baseline_rules,
    union_rule_switches,
)


class TestRuleAccounting:
    def test_operations_sum(self):
        rules = RuleAccounting(
            installs=3, modifies=2, deletes=1, baseline_rules=5, peak_rules=8
        )
        assert rules.operations == 6

    def test_headroom(self):
        rules = RuleAccounting(
            installs=5, modifies=0, deletes=0, baseline_rules=5, peak_rules=10
        )
        assert rules.headroom == 5

    def test_headroom_never_negative(self):
        rules = RuleAccounting(
            installs=0, modifies=5, deletes=2, baseline_rules=5, peak_rules=3
        )
        assert rules.headroom == 0


class TestUpdatePlan:
    def make_plan(self):
        schedule = UpdateSchedule({"a": 0, "b": 1, "c": 1})
        return UpdatePlan(
            protocol="x",
            schedule=schedule,
            rounds=schedule.rounds(),
            rules=RuleAccounting(0, 3, 0, 3, 3),
        )

    def test_round_count(self):
        assert self.make_plan().round_count == 2

    def test_makespan(self):
        assert self.make_plan().makespan == 2


class TestHelpers:
    def test_count_baseline_rules(self, fig1_instance):
        assert count_baseline_rules(fig1_instance) == 5  # v1..v5

    def test_union_rule_switches(self, fig1_instance):
        union = union_rule_switches(fig1_instance)
        assert sorted(union) == ["v1", "v2", "v3", "v4", "v5"]

    def test_union_includes_new_only_switches(self):
        from repro.core.instance import instance_from_paths
        from repro.network.graph import network_from_links

        net = network_from_links([("a", "b"), ("b", "d"), ("a", "c"), ("c", "d")])
        instance = instance_from_paths(net, ["a", "b", "d"], ["a", "c", "d"])
        assert sorted(union_rule_switches(instance)) == ["a", "b", "c"]
