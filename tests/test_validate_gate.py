"""Tests for the ``make validate`` plan-conformance gate."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.updates.chronus import ChronusProtocol
from repro.validate import check_plan, run_gate
from repro.validate.gate import Disagreement, GateReport

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestRunGate:
    def test_small_sweep_agrees(self):
        report = run_gate(instance_count=4, switch_count=8, replay=True)
        assert report.ok
        assert report.checked == 4 * 4  # four protocols per instance
        assert "all engines agree" in report.describe()

    def test_protocol_subset(self):
        report = run_gate(
            instance_count=3, switch_count=8, protocols=("chronus", "tp"), replay=False
        )
        assert report.ok
        assert report.checked == 6

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            run_gate(instance_count=1, protocols=("chronus", "bogus"))

    @pytest.mark.slow
    def test_acceptance_sweep(self):
        """The acceptance bar: 50 seeded instances x all four protocols."""
        report = run_gate(instance_count=50, switch_count=8, replay=True)
        assert report.ok, report.describe()
        assert report.checked == 50 * 4


class TestCheckPlanDetectsCorruption:
    def test_corrupted_schedule_reported(self, fig1_instance):
        plan = ChronusProtocol().plan(fig1_instance)
        rounds = plan.schedule.rounds()
        # Swap the first and last updates but keep the feasibility claim:
        # exactly the silent corruption the gate exists to catch.
        plan.schedule = plan.schedule.swapped(rounds[0][1][0], rounds[-1][1][0])
        plan.verdict = None
        disagreements = check_plan(
            fig1_instance, plan, seed=0, switch_count=6, replay=False
        )
        assert disagreements
        assert any(d.kind == "planner-verifier" for d in disagreements)
        rendered = disagreements[0].render()
        assert "planner-verifier" in rendered and "chronus" in rendered

    def test_report_renders_disagreements(self):
        report = GateReport(instances=1, switch_count=6, protocols=("chronus",))
        report.checked = 1
        report.disagreements.append(
            Disagreement(
                seed=3,
                switch_count=6,
                protocol="chronus",
                kind="verifier-simulator",
                detail="measured 2 Mbps, predicted 1 Mbps",
            )
        )
        text = report.describe()
        assert "DISAGREEMENT" in text
        assert "seed=3" in text
        assert "measured 2 Mbps" in text
        assert not report.ok


class TestValidateScript:
    def test_cli_passes_on_quick_sweep(self):
        proc = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "scripts" / "validate.py"),
                "--quick",
                "--quiet",
                "--no-replay",
            ],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "all engines agree" in proc.stdout
