"""Tests for the verifier <-> simulator differential replay.

Plus the regression tests for the two executor/simulator measurement bugs
this layer exists to catch: the timed executor's one-shot harvest dropping
late rule applies, and ``peak_utilization`` counting the open-ended final
sample outside its query window (the latter lives in
``tests/test_simulator.py`` next to the link tests).
"""

import random

import pytest

from repro.controller import (
    ConstantDelayModel,
    ControlChannel,
    Controller,
    perform_timed_update,
)
from repro.core.greedy import greedy_schedule
from repro.core.instance import motivating_example
from repro.simulator import Simulator, build_dataplane
from repro.simulator.dataplane import install_config
from repro.updates.chronus import ChronusProtocol
from repro.updates.optimal import OptimalProtocol
from repro.updates.order_replacement import OrderReplacementProtocol
from repro.updates.two_phase import TwoPhaseProtocol
from repro.validate import differential_replay


class TestDifferentialReplay:
    def test_chronus_timed_execution_agrees(self, fig1_instance):
        plan = ChronusProtocol().plan(fig1_instance)
        report = differential_replay(plan, instance=fig1_instance, seed=1)
        assert report.executor == "timed"
        assert report.ok, report.describe()
        assert not report.mismatches and not report.timing_errors
        # The realised schedule must be the planned one: zero-delay control
        # channel and pre-programmed execution times leave no skew.
        assert dict(report.realized.times) == dict(plan.schedule.times)

    def test_plan_carries_its_own_instance(self, fig1_instance):
        plan = ChronusProtocol().plan(fig1_instance)
        report = differential_replay(plan, seed=1)  # instance from the plan
        assert report.ok

    def test_missing_instance_rejected(self, fig1_instance):
        plan = ChronusProtocol().plan(fig1_instance)
        plan.instance = None
        with pytest.raises(ValueError):
            differential_replay(plan)

    def test_opt_agrees(self, fig1_instance):
        plan = OptimalProtocol(node_budget=20_000).plan(fig1_instance)
        report = differential_replay(plan, instance=fig1_instance, seed=2)
        assert report.ok, report.describe()

    def test_or_rounds_with_skew_agree(self, fig1_instance):
        """Asynchronous install latencies shift the realised schedule; the
        replay must verify what actually happened, not the nominal rounds."""
        plan = OrderReplacementProtocol(rng=random.Random(7)).plan(fig1_instance)
        report = differential_replay(
            plan, instance=fig1_instance, seed=7, install_skew=2
        )
        assert report.executor == "rounds"
        assert report.ok, report.describe()

    def test_two_phase_congestion_reproduced(self, shortcut_instance):
        plan = TwoPhaseProtocol().plan(shortcut_instance)
        assert not plan.feasible
        report = differential_replay(plan, instance=shortcut_instance, seed=3)
        assert report.executor == "two-phase"
        assert report.ok, report.describe()
        assert not report.verdict.congestion_free  # and the plane measured it

    def test_two_phase_clean_update(self, tiny_instance):
        plan = TwoPhaseProtocol().plan(tiny_instance)
        assert plan.feasible
        report = differential_replay(plan, instance=tiny_instance, seed=4)
        assert report.ok, report.describe()
        assert report.verdict.ok

    def test_loops_leave_fluid_evidence(self):
        """A loop-predicting verdict requires circulating excess in the plane."""
        instance = motivating_example()
        plan = ChronusProtocol().plan(instance)
        # Corrupt the plan: swap the first and last update to force loops.
        rounds = plan.schedule.rounds()
        plan.schedule = plan.schedule.swapped(rounds[0][1][0], rounds[-1][1][0])
        report = differential_replay(plan, instance=instance, seed=5)
        assert not report.verdict.loop_free
        assert report.loops_confirmed is True
        assert report.ok, report.describe()

    def test_describe_is_readable(self, fig1_instance):
        plan = ChronusProtocol().plan(fig1_instance)
        report = differential_replay(plan, instance=fig1_instance, seed=1)
        assert "differential replay" in report.describe()


class TestTimedHarvestRegression:
    """The timed executor must not drop applies that land after the first
    harvest (control delay beyond the lead time used to lose them)."""

    def build(self, network_delay: float):
        instance = motivating_example()
        sim = Simulator()
        plane = build_dataplane(sim, instance.network, delay_scale=1.0)
        install_config(plane, instance)
        channel = ControlChannel(
            sim,
            ConstantDelayModel(network_delay),
            ConstantDelayModel(0.0),
            rng=random.Random(0),
        )
        controller = Controller(sim, channel)
        for switch in plane.switches.values():
            controller.manage(switch)
        plane.inject_flow(instance.source, "h1", "v6", rate=1.0)
        return instance, sim, plane, controller

    def test_slow_channel_applies_still_harvested(self):
        # Messages arrive 10 s after sending -- far beyond the 0.5 s lead
        # time, so every rule flips after the planned harvest point.
        instance, sim, plane, controller = self.build(network_delay=10.0)
        schedule = greedy_schedule(instance).schedule
        trace = perform_timed_update(
            controller, plane, instance, schedule, time_unit=1.0, lead_time=0.5
        )
        sim.run(until=60.0)
        assert set(trace.applied) == set(schedule.times)
        assert trace.finished_at == pytest.approx(max(trace.applied.values()))
        # Every apply really was late: delivery happened after the plan.
        assert all(
            trace.applied[node] > trace.planned[node] for node in trace.planned
        )

    def test_fast_channel_unaffected(self):
        instance, sim, plane, controller = self.build(network_delay=0.001)
        schedule = greedy_schedule(instance).schedule
        trace = perform_timed_update(
            controller, plane, instance, schedule, time_unit=1.0, lead_time=0.5
        )
        sim.run(until=60.0)
        assert set(trace.applied) == set(schedule.times)
        assert trace.finished_at == pytest.approx(max(trace.applied.values()))
        assert trace.max_skew < 1e-6
