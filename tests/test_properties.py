"""Property-based tests (hypothesis) on the core invariants.

These are the heavy guns of the suite: random instances and random
schedules drive the scalable interval tracker against the unit-level
oracle, and the schedulers' guarantees are checked on whatever hypothesis
dreams up.
"""

import random as stdlib_random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.greedy import greedy_schedule
from repro.core.instance import (
    instance_from_topology,
    random_instance,
    segmented_instance,
)
from repro.core.intervals import replay_schedule
from repro.core.schedule import UpdateSchedule
from repro.core.trace import is_complete, trace_schedule
from repro.network.topology import two_path_topology

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


@st.composite
def instance_and_schedule(draw):
    """A random two-path instance plus an arbitrary complete schedule."""
    count = draw(st.integers(min_value=3, max_value=9))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    max_delay = draw(st.sampled_from([None, 2, 3]))
    instance = random_instance(count, seed=seed, max_delay=max_delay)
    nodes = list(instance.switches_to_update)
    times = {
        node: draw(st.integers(min_value=0, max_value=8)) for node in nodes
    }
    return instance, UpdateSchedule(times, start_time=0)


class TestTrackerOracleEquivalence:
    @given(data=instance_and_schedule())
    @settings(max_examples=120, **COMMON)
    def test_violation_flags_agree(self, data):
        """The interval tracker and the unit tracer agree on every verdict."""
        instance, schedule = data
        oracle = trace_schedule(instance, schedule)
        tracker = replay_schedule(instance, schedule)
        assert bool(oracle.loops) == bool(tracker.loops)
        assert bool(oracle.blackholes) == bool(tracker.blackholes)
        assert bool(oracle.congestion) == bool(tracker.congestion_spans())

    @given(data=instance_and_schedule())
    @settings(max_examples=60, **COMMON)
    def test_congested_link_counts_agree_when_loop_free(self, data):
        instance, schedule = data
        oracle = trace_schedule(instance, schedule)
        if oracle.loops or oracle.blackholes:
            return  # the oracle truncates loopy/dropped units' loads
        tracker = replay_schedule(instance, schedule)
        assert len(oracle.congested_timed_links) == tracker.congested_timed_link_count()


class TestGreedyGuarantees:
    @given(
        count=st.integers(min_value=3, max_value=12),
        seed=st.integers(min_value=0, max_value=50_000),
    )
    @settings(max_examples=80, **COMMON)
    def test_greedy_claim_is_truthful(self, count, seed):
        """Theorem 3: a feasible-flagged schedule is congestion- and loop-free,
        and the scheduler always produces a complete schedule."""
        instance = random_instance(count, seed=seed)
        result = greedy_schedule(instance)
        assert is_complete(instance, result.schedule)
        oracle = trace_schedule(instance, result.schedule)
        assert result.feasible == oracle.ok

    @given(
        count=st.integers(min_value=10, max_value=60),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, **COMMON)
    def test_segmented_reversals_always_schedulable(self, count, seed):
        """Slow detours satisfy Algorithm 1's condition, so the greedy must
        find a consistent schedule."""
        instance = segmented_instance(
            count, seed=seed, segments=2, max_segment_length=5
        )
        result = greedy_schedule(instance)
        assert result.feasible
        assert trace_schedule(instance, result.schedule).ok


class TestScheduleAlgebra:
    @given(
        times=st.dictionaries(
            st.sampled_from(["a", "b", "c", "d"]),
            st.integers(min_value=0, max_value=20),
            min_size=1,
        ),
        offset=st.integers(min_value=-5, max_value=5),
    )
    @settings(max_examples=60, **COMMON)
    def test_shift_preserves_structure(self, times, offset):
        schedule = UpdateSchedule(times)
        moved = schedule.shifted(offset)
        assert moved.makespan == schedule.makespan
        assert len(moved.rounds()) == len(schedule.rounds())

    @given(
        times=st.dictionaries(
            st.sampled_from(["a", "b", "c", "d", "e"]),
            st.integers(min_value=0, max_value=9),
            min_size=1,
        )
    )
    @settings(max_examples=60, **COMMON)
    def test_rounds_partition_the_schedule(self, times):
        schedule = UpdateSchedule(times)
        flat = [node for _, nodes in schedule.rounds() for node in nodes]
        assert sorted(flat) == sorted(times)
        round_times = [when for when, _ in schedule.rounds()]
        assert round_times == sorted(round_times)


class TestTraceInvariants:
    @given(
        count=st.integers(min_value=3, max_value=8),
        seed=st.integers(min_value=0, max_value=5_000),
    )
    @settings(max_examples=40, **COMMON)
    def test_empty_update_is_always_clean(self, count, seed):
        """Doing nothing never violates anything: the steady old path."""
        instance = random_instance(count, seed=seed)
        result = trace_schedule(instance, UpdateSchedule({}, start_time=0))
        assert result.ok

    @given(
        count=st.integers(min_value=3, max_value=8),
        seed=st.integers(min_value=0, max_value=5_000),
        when=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=40, **COMMON)
    def test_very_late_single_updates_are_order_free(self, count, seed, when):
        """A schedule translated far into the future behaves identically."""
        instance = random_instance(count, seed=seed)
        nodes = list(instance.switches_to_update)
        rng = stdlib_random.Random(seed)
        times = {node: when + rng.randint(0, 3) for node in nodes}
        base = UpdateSchedule(times, start_time=0)
        moved = base.shifted(100)
        assert trace_schedule(instance, base).ok == trace_schedule(instance, moved).ok
