"""Regression: per-switch FIFO delivery on the control channel.

Each controller<->switch connection is a TCP stream, so messages to one
switch must be delivered in send order.  The channel used to sample every
latency independently, letting a barrier request overtake its round's
FlowMod under a wide-variance delay model -- ``perform_round_update`` then
advanced to the next round (or declared the update finished) while the
overtaken FlowMod was still in flight.  The pinned seeds below reproduce
both observable symptoms against a keyless channel and must stay clean
under the real FIFO-keyed one.
"""

import random

import pytest

from repro.controller import (
    ConstantDelayModel,
    ControlChannel,
    Controller,
    UniformDelayModel,
    perform_round_update,
)
from repro.controller.channel import DelayModel
from repro.core.greedy import greedy_schedule
from repro.core.instance import motivating_example
from repro.simulator import Simulator, build_dataplane
from repro.simulator.dataplane import install_config

#: Wide latency spread so a late send can sample a shorter delay than an
#: earlier one; the inter-round sleep is 0.5 s, well below the spread.
WIDE_DELAY = (0.001, 2.0)
TIME_UNIT = 0.5

#: Seeds found by scanning 0..59 against the pre-fix (keyless) channel:
#: the first two finish a round while its FlowMod is still in flight, the
#: last two apply a later round's update before an earlier round's.
MISSING_AT_FINISH_SEEDS = (1, 50)
INVERTED_ROUND_SEEDS = (22, 26)


class KeylessChannel(ControlChannel):
    """The pre-fix behaviour: every latency independent, no FIFO streams."""

    def send(self, deliver, key=None):
        return super().send(deliver, key=None)


class ScriptedDelay(DelayModel):
    """Returns a scripted latency sequence (ignores the rng)."""

    def __init__(self, values):
        self.values = list(values)

    def sample(self, rng):
        return self.values.pop(0)


def run_rounds(seed, channel_cls):
    """One round-by-round update under wide latency variance.

    Returns ``(schedule, snapshot)`` where ``snapshot`` is the applied map
    at the instant the executor declared the update finished.
    """
    instance = motivating_example()
    sim = Simulator()
    plane = build_dataplane(sim, instance.network, delay_scale=1.0)
    install_config(plane, instance)
    channel = channel_cls(
        sim,
        network_delay=UniformDelayModel(*WIDE_DELAY),
        install_delay=ConstantDelayModel(0.01),
        rng=random.Random(seed),
    )
    controller = Controller(sim, channel)
    for switch in plane.switches.values():
        controller.manage(switch)

    schedule = greedy_schedule(instance).schedule
    snapshots = []
    perform_round_update(
        controller, plane, instance, schedule, time_unit=TIME_UNIT,
        on_finish=lambda trace: snapshots.append(dict(trace.applied)),
    )
    sim.run(until=200.0)
    assert snapshots, "round executor never finished"
    return schedule, snapshots[0]


def round_violations(schedule, snapshot):
    """FIFO symptoms visible in one finish-time snapshot."""
    problems = []
    for node in schedule.times:
        if node not in snapshot:
            problems.append(f"{node} missing at finish")
    rounds = schedule.rounds()
    for (_, earlier), (_, later) in zip(rounds, rounds[1:]):
        if not all(n in snapshot for n in (*earlier, *later)):
            continue
        if max(snapshot[n] for n in earlier) >= min(snapshot[n] for n in later):
            problems.append("rounds inverted")
    return problems


class TestChannelFifoUnit:
    def test_same_key_never_overtakes(self):
        sim = Simulator()
        channel = ControlChannel(
            sim, network_delay=ScriptedDelay([1.0, 0.1]), rng=random.Random(0)
        )
        order = []
        channel.send(lambda: order.append("first"), key=("to", "v1"))
        channel.send(lambda: order.append("second"), key=("to", "v1"))
        sim.run(until=5.0)
        assert order == ["first", "second"]

    def test_second_message_held_to_stream_front(self):
        sim = Simulator()
        channel = ControlChannel(
            sim, network_delay=ScriptedDelay([1.0, 0.1]), rng=random.Random(0)
        )
        times = {}
        channel.send(lambda: times.setdefault("a", sim.now), key=("to", "v1"))
        delay = channel.send(lambda: times.setdefault("b", sim.now), key=("to", "v1"))
        sim.run(until=5.0)
        # The 0.1 s sample is stretched to the stream front at t=1.0.
        assert delay == pytest.approx(1.0)
        assert times["b"] == pytest.approx(times["a"])

    def test_distinct_keys_stay_independent(self):
        sim = Simulator()
        channel = ControlChannel(
            sim, network_delay=ScriptedDelay([1.0, 0.1]), rng=random.Random(0)
        )
        order = []
        channel.send(lambda: order.append("v1"), key=("to", "v1"))
        channel.send(lambda: order.append("v2"), key=("to", "v2"))
        sim.run(until=5.0)
        assert order == ["v2", "v1"]

    def test_keyless_send_keeps_independent_latencies(self):
        sim = Simulator()
        channel = ControlChannel(
            sim, network_delay=ScriptedDelay([1.0, 0.1]), rng=random.Random(0)
        )
        order = []
        channel.send(lambda: order.append("first"))
        channel.send(lambda: order.append("second"))
        sim.run(until=5.0)
        assert order == ["second", "first"]


class TestStreamFloorPruning:
    """Regression: ``_last_delivery`` must not grow without bound.

    A long-running service sends on thousands of short-lived streams;
    before the fix every stream key lived in ``_last_delivery`` forever.
    Entries whose floor is in the simulator's past can never constrain a
    future arrival, so sends prune them -- and pruning must not change
    any delivery time.
    """

    def test_past_floors_are_pruned_as_clock_advances(self):
        sim = Simulator()
        channel = ControlChannel(
            sim, network_delay=ConstantDelayModel(0.5), rng=random.Random(0)
        )
        for i in range(100):
            channel.send(lambda: None, key=("to", f"v{i}"))
        assert len(channel._last_delivery) == 100
        sim.run(until=10.0)  # every floor (0.5) is now in the past
        channel.send(lambda: None, key=("to", "fresh"))
        assert set(channel._last_delivery) == {("to", "fresh")}

    def test_live_floors_survive_pruning(self):
        sim = Simulator()
        channel = ControlChannel(
            sim, network_delay=ScriptedDelay([5.0, 0.5, 0.5]), rng=random.Random(0)
        )
        channel.send(lambda: None, key=("to", "slow"))  # floor at t=5.0
        sim.run(until=1.0)
        channel.send(lambda: None, key=("to", "quick"))  # floor at t=1.5
        assert ("to", "slow") in channel._last_delivery
        sim.run(until=2.0)  # quick's floor passes, slow's does not
        channel.send(lambda: None, key=("to", "other"))
        assert ("to", "slow") in channel._last_delivery
        assert ("to", "quick") not in channel._last_delivery

    def test_pruning_preserves_fifo_semantics(self):
        """A stream pruned and reused behaves like a fresh connection."""
        sim = Simulator()
        channel = ControlChannel(
            sim, network_delay=ScriptedDelay([2.0, 0.1]), rng=random.Random(0)
        )
        times = {}
        channel.send(lambda: times.setdefault("a", sim.now), key=("to", "v1"))
        sim.run(until=10.0)
        # The old floor (t=2.0) is long past: the reused key must get its
        # sampled latency, not be dragged behind the dead stream.
        delay = channel.send(lambda: times.setdefault("b", sim.now), key=("to", "v1"))
        sim.run(until=20.0)
        assert delay == pytest.approx(0.1)
        assert times["b"] == pytest.approx(10.1)

    def test_reset_clears_all_floors(self):
        sim = Simulator()
        channel = ControlChannel(
            sim, network_delay=ScriptedDelay([3.0, 0.2]), rng=random.Random(0)
        )
        channel.send(lambda: None, key=("to", "v1"))
        assert channel._last_delivery
        channel.reset()
        assert channel._last_delivery == {}
        # Post-reset the stream is a fresh connection even though the old
        # floor (t=3.0) has not passed yet.
        delay = channel.send(lambda: None, key=("to", "v1"))
        assert delay == pytest.approx(0.2)


class TestRoundUpdateRegression:
    """The executor-level symptom the FIFO streams exist to prevent."""

    @pytest.mark.parametrize("seed", MISSING_AT_FINISH_SEEDS + INVERTED_ROUND_SEEDS)
    def test_fifo_channel_keeps_rounds_consistent(self, seed):
        schedule, snapshot = run_rounds(seed, ControlChannel)
        assert round_violations(schedule, snapshot) == []

    @pytest.mark.parametrize("seed", MISSING_AT_FINISH_SEEDS)
    def test_keyless_channel_finishes_with_flowmod_in_flight(self, seed):
        schedule, snapshot = run_rounds(seed, KeylessChannel)
        assert any("missing" in p for p in round_violations(schedule, snapshot))

    @pytest.mark.parametrize("seed", INVERTED_ROUND_SEEDS)
    def test_keyless_channel_inverts_round_order(self, seed):
        schedule, snapshot = run_rounds(seed, KeylessChannel)
        assert "rounds inverted" in round_violations(schedule, snapshot)
