"""Unit tests for the ``repro.perf`` profiling subsystem."""

import time

import pytest

from repro.perf import PerfRegistry, perf, render_report, timed
from repro.perf.registry import _NULL_SPAN, _env_enabled


class TestDisabledFastPath:
    def test_disabled_span_is_the_shared_null_span(self):
        reg = PerfRegistry()
        assert reg.span("anything") is _NULL_SPAN
        with reg.span("anything"):
            pass
        assert reg.snapshot()["spans"] == {}

    def test_disabled_count_records_nothing(self):
        reg = PerfRegistry()
        reg.count("x")
        assert reg.counter("x") == 0
        assert reg.snapshot()["counters"] == {}

    def test_global_registry_disabled_by_default(self):
        # The test environment must not set REPRO_PERF; the instrumented
        # hot paths rely on the disabled default.
        assert perf.enabled is False


class TestSpans:
    def test_span_records_calls_and_seconds(self):
        reg = PerfRegistry(enabled=True)
        for _ in range(3):
            with reg.span("work"):
                time.sleep(0.001)
        assert reg.calls("work") == 3
        assert reg.seconds("work") >= 0.003

    def test_nested_spans_record_dotted_paths(self):
        reg = PerfRegistry(enabled=True)
        with reg.span("outer"):
            with reg.span("inner"):
                pass
            with reg.span("inner"):
                pass
        assert reg.calls("outer") == 1
        assert reg.calls("outer.inner") == 2
        assert reg.calls("inner") == 0

    def test_cross_module_nesting_is_dynamic(self):
        reg = PerfRegistry(enabled=True)

        def tracker_op():
            with reg.span("tracker.preview"):
                pass

        with reg.span("greedy"):
            with reg.span("select"):
                tracker_op()
        assert reg.calls("greedy.select.tracker.preview") == 1

    def test_span_survives_exceptions(self):
        reg = PerfRegistry(enabled=True)
        with pytest.raises(RuntimeError):
            with reg.span("boom"):
                raise RuntimeError("x")
        assert reg.calls("boom") == 1
        # The stack unwound: the next span is a root again.
        with reg.span("after"):
            pass
        assert reg.calls("after") == 1

    def test_reset_clears_but_keeps_enabled(self):
        reg = PerfRegistry(enabled=True)
        with reg.span("a"):
            pass
        reg.count("c")
        reg.reset()
        assert reg.enabled
        assert reg.snapshot() == {"spans": {}, "counters": {}}


class TestCounters:
    def test_count_accumulates(self):
        reg = PerfRegistry(enabled=True)
        reg.count("sweeps")
        reg.count("sweeps", 41)
        assert reg.counter("sweeps") == 42


class TestTimedDecorator:
    def test_records_when_enabled_and_passes_through(self):
        reg = PerfRegistry(enabled=True)

        @timed("fn", registry=reg)
        def double(x):
            return 2 * x

        assert double(21) == 42
        assert reg.calls("fn") == 1

    def test_no_recording_when_disabled(self):
        reg = PerfRegistry()

        @timed("fn", registry=reg)
        def double(x):
            return 2 * x

        assert double(4) == 8
        assert reg.calls("fn") == 0


class TestReport:
    def test_report_contains_tree_and_counters(self):
        reg = PerfRegistry(enabled=True)
        with reg.span("greedy"):
            with reg.span("select"):
                pass
        reg.count("tracker.entry_memo.hit", 93)
        reg.count("tracker.entry_memo.miss", 7)
        reg.count("tracker.sweeps", 1234)
        text = reg.report()
        assert "greedy" in text
        assert "select" in text
        assert "tracker.entry_memo" in text
        assert "93.0% hit" in text
        assert "tracker.sweeps" in text

    def test_empty_report_renders(self):
        assert "no spans" in render_report({"spans": {}, "counters": {}})

    def test_snapshot_round_trips_into_report(self):
        reg = PerfRegistry(enabled=True)
        with reg.span("root"):
            with reg.span("leaf"):
                pass
        text = render_report(reg.snapshot())
        assert "root" in text and "leaf" in text


class TestEnvEnable:
    @pytest.mark.parametrize(
        "value,expected",
        [("1", True), ("true", True), ("0", False), ("", False), ("off", False)],
    )
    def test_env_values(self, value, expected):
        assert _env_enabled({"REPRO_PERF": value}) is expected

    def test_absent(self):
        assert _env_enabled({}) is False
