"""Property tests for flow-table lookup semantics (OpenFlow behaviour)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.simulator.flowtable import ANY, FlowRule, FlowTable, Match, PacketContext

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])

prefixes = st.sampled_from(["a", "b", "c", ANY])
ports = st.one_of(st.none(), st.integers(min_value=0, max_value=3))
tags = st.one_of(st.none(), st.integers(min_value=1, max_value=3))


@st.composite
def tables(draw):
    table = FlowTable()
    for index in range(draw(st.integers(min_value=0, max_value=6))):
        table.add(
            FlowRule(
                name=f"r{index}",
                match=Match(
                    in_port=draw(ports),
                    src_prefix=draw(prefixes),
                    dst_prefix=draw(prefixes),
                    tag=draw(tags),
                ),
                out_port=draw(st.integers(min_value=0, max_value=3)),
                priority=draw(st.integers(min_value=0, max_value=3)),
            )
        )
    return table


@st.composite
def contexts(draw):
    return PacketContext(
        in_port=draw(st.integers(min_value=0, max_value=3)),
        src_prefix=draw(st.sampled_from(["a", "b", "c"])),
        dst_prefix=draw(st.sampled_from(["a", "b", "c"])),
        tag=draw(tags),
    )


class TestLookupSemantics:
    @given(table=tables(), context=contexts())
    @settings(max_examples=150, **COMMON)
    def test_result_actually_matches(self, table, context):
        rule = table.lookup(context)
        if rule is not None:
            assert rule.match.covers(context)

    @given(table=tables(), context=contexts())
    @settings(max_examples=150, **COMMON)
    def test_no_higher_priority_match_exists(self, table, context):
        rule = table.lookup(context)
        matching = [r for r in table.rules if r.match.covers(context)]
        if rule is None:
            assert not matching
        else:
            assert rule.priority == max(r.priority for r in matching)

    @given(table=tables(), context=contexts())
    @settings(max_examples=100, **COMMON)
    def test_ties_break_by_insertion_order(self, table, context):
        rule = table.lookup(context)
        if rule is None:
            return
        same_priority = [
            r
            for r in table.rules
            if r.match.covers(context) and r.priority == rule.priority
        ]
        assert same_priority[0].name == rule.name

    @given(context=contexts())
    @settings(max_examples=30, **COMMON)
    def test_wildcard_rule_matches_everything(self, context):
        table = FlowTable()
        table.add(FlowRule("any", Match(), out_port=1))
        assert table.lookup(context).name == "any"

    @given(table=tables())
    @settings(max_examples=50, **COMMON)
    def test_occupancy_equals_rule_count(self, table):
        assert table.occupancy == len(table.rules)
        rendered = table.render()
        assert len(rendered) == table.occupancy + 1  # header row
