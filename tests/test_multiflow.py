"""Unit tests for multi-flow update scheduling."""

import pytest

from repro.core.instance import instance_from_paths
from repro.core.multiflow import (
    MultiFlowUpdate,
    flow_link_intervals,
    greedy_multiflow,
    validate_multiflow,
)
from repro.core.intervals import IntervalTracker
from repro.core.schedule import UpdateSchedule
from repro.network.graph import Network


def shared_link_network(capacity: float) -> Network:
    """Two flows funnelled through one shared middle link."""
    net = Network()
    for src, dst, cap in [
        ("a1", "m1", 2.0), ("b1", "m1", 2.0),
        ("m1", "m2", capacity),
        ("m2", "a2", 2.0), ("m2", "b2", 2.0),
        ("a1", "x", 2.0), ("x", "m1", 2.0),
    ]:
        net.add_link(src, dst, capacity=cap, delay=1)
    return net


def two_flow_update(capacity: float) -> MultiFlowUpdate:
    net = shared_link_network(capacity)
    flow_a = instance_from_paths(
        net, ["a1", "m1", "m2", "a2"], ["a1", "x", "m1", "m2", "a2"],
        demand=1.0, flow_name="A",
    )
    flow_b = instance_from_paths(
        net, ["b1", "m1", "m2", "b2"], ["b1", "m1", "m2", "b2"],
        demand=1.0, flow_name="B",
    )
    return MultiFlowUpdate(network=net, instances=[flow_a, flow_b])


class TestConstruction:
    def test_duplicate_flow_names_rejected(self):
        net = shared_link_network(2.0)
        inst = instance_from_paths(
            net, ["a1", "m1", "m2", "a2"], ["a1", "m1", "m2", "a2"], flow_name="A"
        )
        with pytest.raises(ValueError, match="unique"):
            MultiFlowUpdate(network=net, instances=[inst, inst])

    def test_foreign_network_rejected(self):
        net = shared_link_network(2.0)
        other = shared_link_network(2.0)
        inst = instance_from_paths(
            other, ["a1", "m1", "m2", "a2"], ["a1", "m1", "m2", "a2"], flow_name="A"
        )
        with pytest.raises(ValueError, match="share the network"):
            MultiFlowUpdate(network=net, instances=[inst])

    def test_instance_lookup(self):
        update = two_flow_update(2.0)
        assert update.instance("A").flow.name == "A"
        with pytest.raises(KeyError):
            update.instance("Z")


class TestValidation:
    def test_joint_steady_state_within_capacity_is_clean(self):
        update = two_flow_update(2.0)
        schedules = {
            "A": UpdateSchedule({"x": 0, "a1": 1}, start_time=0),
            "B": UpdateSchedule({}, start_time=0),
        }
        report = validate_multiflow(update, schedules)
        assert report.ok

    def test_undersized_shared_link_is_flagged(self):
        # Capacity 1 cannot hold both steady flows on (m1, m2).
        update = two_flow_update(1.0)
        schedules = {
            "A": UpdateSchedule({"x": 0, "a1": 1}, start_time=0),
            "B": UpdateSchedule({}, start_time=0),
        }
        report = validate_multiflow(update, schedules)
        assert not report.ok
        assert any(span.link == ("m1", "m2") for span in report.congestion)

    def test_missing_schedule_raises(self):
        update = two_flow_update(2.0)
        with pytest.raises(KeyError):
            validate_multiflow(update, {"A": UpdateSchedule({})})

    def test_flow_link_intervals_cover_paths(self):
        update = two_flow_update(2.0)
        tracker = IntervalTracker(update.instance("B"))
        intervals = flow_link_intervals(tracker)
        assert ("m1", "m2") in intervals
        assert intervals[("m1", "m2")][0][2] == 1.0  # demand


class TestSequentialGreedy:
    def test_two_flows_scheduled_jointly(self):
        update = two_flow_update(2.0)
        result = greedy_multiflow(update)
        assert result.feasible
        assert result.report.ok

    def test_background_blocks_overloading_detour(self):
        # Flow A's detour crosses x -> m1 -> m2; with the shared link at
        # capacity 1 the networks' steady state is already joint-infeasible
        # for both flows, which the final report must flag.
        update = two_flow_update(1.0)
        result = greedy_multiflow(update)
        assert not result.feasible

    def test_order_parameter(self):
        update = two_flow_update(2.0)
        result = greedy_multiflow(update, order=["B", "A"])
        assert set(result.schedules) == {"A", "B"}
        assert result.feasible

    def test_makespan_is_max_over_flows(self):
        update = two_flow_update(2.0)
        result = greedy_multiflow(update)
        spans = [r.schedule.makespan for r in result.results.values()]
        assert result.makespan == max(spans)
