"""Unit tests for the ILP model and branch-and-bound solver."""

import pytest

from repro.solver.ilp import EQ, GEQ, LEQ, ILPModel
from repro.solver.branch_and_bound import (
    FEASIBLE,
    INFEASIBLE,
    OPTIMAL,
    solve_ilp,
)


def knapsack_model():
    """max 10a + 6b + 4c s.t. a+b+c<=2 (binary) == min of the negation."""
    model = ILPModel()
    for name in "abc":
        model.add_binary(name)
    model.add_constraint({"a": 1, "b": 1, "c": 1}, LEQ, 2)
    model.set_objective({"a": -10, "b": -6, "c": -4})
    return model


class TestModel:
    def test_duplicate_variable_rejected(self):
        model = ILPModel()
        model.add_variable("x")
        with pytest.raises(ValueError):
            model.add_variable("x")

    def test_unknown_variable_in_constraint(self):
        model = ILPModel()
        with pytest.raises(KeyError):
            model.add_constraint({"x": 1}, LEQ, 1)

    def test_unknown_variable_in_objective(self):
        model = ILPModel()
        with pytest.raises(KeyError):
            model.set_objective({"x": 1})

    def test_bad_sense_rejected(self):
        model = ILPModel()
        model.add_variable("x")
        with pytest.raises(ValueError):
            model.add_constraint({"x": 1}, "<", 1)

    def test_standard_form_shapes(self):
        model = knapsack_model()
        c, a_ub, b_ub, a_eq, b_eq, bounds, order = model.to_standard_form()
        assert list(c) == [-10, -6, -4]
        assert a_ub.shape == (1, 3)
        assert a_eq is None
        assert bounds == [(0.0, 1.0)] * 3
        assert order == ["a", "b", "c"]

    def test_geq_becomes_negated_leq(self):
        model = ILPModel()
        model.add_variable("x", upper=10)
        model.add_constraint({"x": 1}, GEQ, 3)
        _, a_ub, b_ub, *_ = model.to_standard_form()
        assert a_ub[0][0] == -1 and b_ub[0] == -3


class TestBranchAndBound:
    def test_knapsack_optimum(self):
        result = solve_ilp(knapsack_model())
        assert result.status == OPTIMAL
        assert result.objective == pytest.approx(-16)
        assert result.solution == {"a": 1, "b": 1, "c": 0}

    def test_pure_lp_solves_in_one_node(self):
        model = ILPModel()
        model.add_variable("x", upper=4)
        model.set_objective({"x": -1})
        result = solve_ilp(model)
        assert result.status == OPTIMAL
        assert result.objective == pytest.approx(-4)
        assert result.nodes == 1

    def test_infeasible(self):
        model = ILPModel()
        model.add_binary("x")
        model.add_constraint({"x": 1}, GEQ, 2)
        result = solve_ilp(model)
        assert result.status == INFEASIBLE
        assert result.solution is None

    def test_equality_constraints(self):
        model = ILPModel()
        model.add_binary("x")
        model.add_binary("y")
        model.add_constraint({"x": 1, "y": 1}, EQ, 1)
        model.set_objective({"x": 2, "y": 1})
        result = solve_ilp(model)
        assert result.status == OPTIMAL
        assert result.solution == {"x": 0, "y": 1}

    def test_integrality_enforced(self):
        # LP relaxation would pick x = 1.5.
        model = ILPModel()
        model.add_variable("x", upper=3, integer=True)
        model.add_constraint({"x": 2}, LEQ, 3)
        model.set_objective({"x": -1})
        result = solve_ilp(model)
        assert result.status == OPTIMAL
        assert result.solution["x"] == 1

    def test_node_budget_caps_search(self):
        # Root LP is fractional (x = 1.5); one node cannot finish the job.
        model = ILPModel()
        model.add_variable("x", upper=3, integer=True)
        model.add_constraint({"x": 2}, LEQ, 3)
        model.set_objective({"x": -1})
        result = solve_ilp(model, node_budget=1)
        assert result.status == "unknown"
        assert result.nodes == 1

    def test_bigger_assignment_problem(self):
        # 3x3 assignment, minimise cost; optimum is 1+2+1 = 4.
        costs = {("a", 0): 1, ("a", 1): 5, ("a", 2): 9,
                 ("b", 0): 4, ("b", 1): 2, ("b", 2): 6,
                 ("c", 0): 1, ("c", 1): 7, ("c", 2): 3}
        model = ILPModel()
        for key in costs:
            model.add_binary(f"x{key}")
        for row in "abc":
            model.add_constraint({f"x{(row, j)}": 1 for j in range(3)}, EQ, 1)
        for j in range(3):
            model.add_constraint({f"x{(row, j)}": 1 for row in "abc"}, EQ, 1)
        model.set_objective({f"x{key}": cost for key, cost in costs.items()})
        result = solve_ilp(model)
        assert result.status == OPTIMAL
        assert result.objective == pytest.approx(6)  # 5? compute: a->0(1), b->1(2), c->2(3) = 6
